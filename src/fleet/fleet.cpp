#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <queue>
#include <sstream>

#include "exec/pool.hpp"
#include "prof/profiler.hpp"
#include "trace/recorder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::fleet {

const char* toString(ArrivalProcess arrival) noexcept {
  switch (arrival) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kFixedRate: return "fixed-rate";
    case ArrivalProcess::kTrace: return "trace";
  }
  return "?";
}

const char* toString(RoutingPolicy routing) noexcept {
  switch (routing) {
    case RoutingPolicy::kLeastLoaded: return "least-loaded";
    case RoutingPolicy::kPowerOfTwoChoices: return "p2c";
    case RoutingPolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

namespace {

/// Interned ids for every fleet.* series. One bundle per run, shared
/// read-only by all cells (ids are just indices).
struct Ids {
  obs::CounterId offered, admitted, shedBreaker, shedDeadline, shedQueue;
  obs::CounterId shedRateLimit;
  obs::CounterId completedOk, completedFailed, retries, retriesDenied;
  obs::CounterId hedges, hedgeWins, hedgeCancelled;
  obs::CounterId breakerOpens, breakerCloses, breakerHalfOpens;
  obs::CounterId configLoads, configFaults, linkStalls;
  obs::CounterId escalations, deescalations, bladeBusyPs;
  obs::CounterId traceRecorded, traceTailEligible, traceKeptTail;
  obs::CounterId traceKeptSampled, traceDroppedCap;
  obs::CounterId sloGood, sloBad;
  obs::HistogramId latencyPs, queueWaitPs, servicePs, attempts;
};

Ids internIds() {
  auto& t = obs::MetricTable::global();
  Ids ids;
  ids.offered = t.counter("fleet.offered");
  ids.admitted = t.counter("fleet.admitted");
  ids.shedBreaker = t.counter("fleet.shed.breaker");
  ids.shedDeadline = t.counter("fleet.shed.deadline");
  ids.shedQueue = t.counter("fleet.shed.queue");
  ids.shedRateLimit = t.counter("fleet.shed.ratelimit");
  ids.completedOk = t.counter("fleet.completed.ok");
  ids.completedFailed = t.counter("fleet.completed.failed");
  ids.retries = t.counter("fleet.retries");
  ids.retriesDenied = t.counter("fleet.retries_denied");
  ids.hedges = t.counter("fleet.hedges");
  ids.hedgeWins = t.counter("fleet.hedge_wins");
  ids.hedgeCancelled = t.counter("fleet.hedge_cancelled");
  ids.breakerOpens = t.counter("fleet.breaker.opens");
  ids.breakerCloses = t.counter("fleet.breaker.closes");
  ids.breakerHalfOpens = t.counter("fleet.breaker.half_opens");
  ids.configLoads = t.counter("fleet.config.loads");
  ids.configFaults = t.counter("fleet.config.faults");
  ids.linkStalls = t.counter("fleet.link.stalls");
  ids.escalations = t.counter("fleet.blade.escalations");
  ids.deescalations = t.counter("fleet.blade.deescalations");
  ids.bladeBusyPs = t.counter("fleet.blade.busy_ps");
  ids.traceRecorded = t.counter("fleet.trace.recorded");
  ids.traceTailEligible = t.counter("fleet.trace.tail_eligible");
  ids.traceKeptTail = t.counter("fleet.trace.kept_tail");
  ids.traceKeptSampled = t.counter("fleet.trace.kept_sampled");
  ids.traceDroppedCap = t.counter("fleet.trace.dropped_cap");
  ids.sloGood = t.counter("fleet.slo.good");
  ids.sloBad = t.counter("fleet.slo.bad");
  ids.latencyPs = t.histogram("fleet.latency_ps");
  ids.queueWaitPs = t.histogram("fleet.queue_wait_ps");
  ids.servicePs = t.histogram("fleet.service_ps");
  ids.attempts = t.histogram("fleet.attempts");
  return ids;
}

enum class EventKind : std::uint8_t { kArrival, kCompletion, kRetry, kHedge };

struct Event {
  std::int64_t timePs = 0;
  std::uint64_t seq = 0;  ///< tie-break: events at equal times fire in
                          ///< schedule order, making the heap a total order
  EventKind kind = EventKind::kArrival;
  std::uint32_t arg = 0;  ///< blade index (completion) or request index
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.timePs != b.timePs) return a.timePs > b.timePs;
    return a.seq > b.seq;
  }
};

struct Request {
  std::int64_t arrivalPs = 0;
  std::uint32_t task = 0;
  std::uint32_t user = 0;  ///< owning simulated user (rate-limit bucket)
  std::uint64_t bytes = 0;
  std::uint8_t attempts = 0;  ///< dispatches so far (fresh + retries)
  bool done = false;
  bool failed = false;
  bool hedged = false;
  std::int32_t primaryBlade = -1;
  std::uint32_t inFlight = 0;  ///< copies currently queued or in service
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

struct Job {
  std::uint32_t req = 0;
  std::int64_t enqueuePs = 0;
  std::uint8_t attempt = 0;  ///< the request's attempt number at dispatch
  bool probe = false;  ///< dispatched while the blade was half-open
  bool hedge = false;  ///< the hedged copy, not the primary dispatch
};

/// Degradation multiplier on the calibrated persona-reload cost, indexed
/// by RecoveryRung: heavier rungs re-verify and rewrite more frames
/// (difference retry, module partial, occupancy-1.0 PRR rewrite, full
/// device), mirroring the stream-size ratios of the PR-4 recovery ladder.
constexpr double kRungConfigFactor[config::kRecoveryRungCount] = {
    1.0, 1.25, 1.6, 2.5, 8.0};

struct Blade {
  std::deque<Job> queue;
  Job current{};
  bool busy = false;
  bool currentFails = false;  ///< decided at service start
  std::int32_t resident = -1;
  std::size_t rung = 0;  ///< index into config::RecoveryRung
  std::uint32_t consecFail = 0;
  std::uint32_t consecOk = 0;
  BreakerState state = BreakerState::kClosed;
  std::int64_t reopenAtPs = 0;
  std::uint32_t probesInFlight = 0;
  std::uint32_t probeOk = 0;
  fault::Plan plan{};
  util::Rng rng{0};
  std::uint64_t loadTick = 0;   ///< kFixedPeriod schedule over persona loads
  std::uint64_t stallTick = 0;  ///< kFixedPeriod schedule over transfers
  std::int64_t busyPs = 0;
};

struct CellResult {
  obs::MetricsSnapshot metrics;
  std::vector<double> utilization;
  std::int64_t endPs = 0;
  trace::CellTrace trace{};   ///< kept request traces (tracing enabled)
  obs::TimeSeries series{};   ///< windowed series (tracing or SLO enabled)
};

/// Registry::observe's bucket logic for a cell-local summary (the hedge
/// delay reads its own cell's latency quantile without a snapshot).
void observeLocal(obs::HistogramSummary& h, std::int64_t value) {
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[obs::HistogramSummary::bucketIndex(value)];
}

/// One fault draw: Poisson plans draw a Bernoulli from the blade's RNG;
/// kFixedPeriod plans fire deterministically every fixedPeriod-th
/// eligible event, with `rate` only gating eligibility.
bool drawFault(Blade& blade, double rate, std::uint64_t& tick) {
  if (rate <= 0.0) return false;
  if (blade.plan.arrival == fault::Arrival::kFixedPeriod) {
    return ++tick % std::max<std::uint64_t>(1, blade.plan.fixedPeriod) == 0;
  }
  return blade.rng.chance(std::min(rate, 0.95));
}

/// The whole state of one cell's simulation.
struct Cell {
  const FleetOptions& options;
  const BladeProfile& profile;
  const Ids& ids;
  obs::Registry reg;
  std::vector<Blade> blades;
  std::vector<Request> requests;
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
  util::Rng rng;
  std::uint64_t seq = 0;
  std::uint64_t quota = 0;      ///< fresh requests this cell generates
  std::uint64_t generated = 0;
  std::uint64_t traceIdx = 0;
  std::uint64_t rrCounter = 0;
  double retryTokens = 0.0;
  double hedgeTokens = 0.0;
  std::int64_t meanServicePs = 1;
  std::int64_t deadlineWaitPs = 0;
  std::int64_t interarrivalPs = 1;
  std::int64_t nowPs = 0;
  std::int64_t endPs = 0;
  obs::HistogramSummary localLatency;
  std::vector<std::uint32_t> eligible;  ///< routing scratch

  // Observers. The recorder and series are driven from the same event
  // callbacks the counters come from; neither consumes an RNG draw, so
  // the simulated bytes are identical with them on or off.
  std::unique_ptr<trace::CellRecorder> recorder;
  trace::CellRecorder* rec = nullptr;  ///< nullptr when tracing is off
  bool recordSeries = false;
  obs::TimeSeries series;
  std::int64_t sloTargetPs = 0;
  // Per-user token buckets (rate limiter); refilled lazily in sim time.
  std::vector<double> rlTokens;
  std::vector<std::int64_t> rlLastPs;

  Cell(const FleetOptions& opt, const BladeProfile& prof, const Ids& i,
       std::size_t cellIdx)
      : options(opt),
        profile(prof),
        ids(i),
        rng(opt.seed ^ (0x9e3779b97f4a7c15ULL * (cellIdx + 1))) {}

  void schedule(std::int64_t atPs, EventKind kind, std::uint32_t arg) {
    heap.push(Event{atPs, seq++, kind, arg});
  }

  std::size_t taskCount() const { return profile.tasks.size(); }

  /// Lazy time-based breaker transition: Open cools down into HalfOpen
  /// the first time routing looks at the blade past its reopen time.
  void refreshBreaker(std::uint32_t bladeIdx) {
    Blade& blade = blades[bladeIdx];
    if (blade.state == BreakerState::kOpen && nowPs >= blade.reopenAtPs) {
      blade.state = BreakerState::kHalfOpen;
      blade.probesInFlight = 0;
      blade.probeOk = 0;
      reg.add(ids.breakerHalfOpens);
      if (rec) {
        rec->bladeMark(bladeIdx, trace::BladeMarkKind::kBreakerHalfOpen,
                       nowPs);
      }
    }
  }

  bool bladeEligible(std::uint32_t bladeIdx) {
    if (!options.breaker.enabled) return true;
    refreshBreaker(bladeIdx);
    const Blade& blade = blades[bladeIdx];
    if (blade.state == BreakerState::kClosed) return true;
    return blade.state == BreakerState::kHalfOpen &&
           blade.probesInFlight < options.breaker.halfOpenProbes;
  }

  std::size_t depth(const Blade& blade) const {
    return blade.queue.size() + (blade.busy ? 1u : 0u);
  }

  /// Routes among currently eligible blades, optionally excluding one
  /// (retries avoid the blade that just failed; hedges avoid the
  /// primary). Returns -1 when no blade is eligible.
  std::int32_t route(std::int32_t exclude) {
    eligible.clear();
    for (std::uint32_t b = 0; b < blades.size(); ++b) {
      if (static_cast<std::int32_t>(b) == exclude) continue;
      if (bladeEligible(b)) eligible.push_back(b);
    }
    if (eligible.empty() && exclude >= 0 &&
        bladeEligible(static_cast<std::uint32_t>(exclude))) {
      eligible.push_back(static_cast<std::uint32_t>(exclude));
    }
    if (eligible.empty()) return -1;
    switch (options.routing) {
      case RoutingPolicy::kRoundRobin:
        return static_cast<std::int32_t>(
            eligible[rrCounter++ % eligible.size()]);
      case RoutingPolicy::kLeastLoaded: {
        std::uint32_t best = eligible[0];
        for (std::uint32_t b : eligible) {
          if (depth(blades[b]) < depth(blades[best])) best = b;
        }
        return static_cast<std::int32_t>(best);
      }
      case RoutingPolicy::kPowerOfTwoChoices: {
        const std::uint32_t a = eligible[rng.below(eligible.size())];
        const std::uint32_t b = eligible[rng.below(eligible.size())];
        const std::uint32_t lo = std::min(a, b);
        const std::uint32_t hi = std::max(a, b);
        return static_cast<std::int32_t>(
            depth(blades[hi]) < depth(blades[lo]) ? hi : lo);
      }
    }
    return -1;
  }

  void startService(std::uint32_t bladeIdx, Job job) {
    Blade& blade = blades[bladeIdx];
    Request& r = requests[job.req];
    const TaskProfile& t = profile.tasks[r.task];
    reg.observe(ids.queueWaitPs, nowPs - job.enqueuePs);

    std::int64_t stallPs = 0;
    std::int64_t configPs = 0;
    std::int64_t execPs = 0;
    bool willFail = false;
    if (drawFault(blade, blade.plan.linkStallRate, blade.stallTick)) {
      stallPs = blade.plan.stallDuration.ps();
      reg.add(ids.linkStalls);
    }
    // A blade degraded to the full-PRR rung or beyond has lost confidence
    // in its resident persona: it reloads on every dispatch.
    const bool needsConfig =
        blade.resident != static_cast<std::int32_t>(r.task) ||
        blade.rung >= static_cast<std::size_t>(
                          config::RecoveryRung::kFullPrrReload);
    if (needsConfig) {
      reg.add(ids.configLoads);
      configPs = static_cast<std::int64_t>(
          static_cast<double>(t.configPs) * kRungConfigFactor[blade.rung]);
      const double loadRate =
          blade.plan.transferTimeoutRate + blade.plan.icapAbortRate +
          blade.plan.apiRejectRate +
          blade.plan.wordFlipRate * static_cast<double>(t.configWords);
      if (drawFault(blade, loadRate, blade.loadTick)) {
        // The load aborts: the config attempt is wasted and the request
        // never reaches the fabric.
        willFail = true;
        reg.add(ids.configFaults);
      }
    }
    if (!willFail) execPs = t.execPs(r.bytes);
    const std::int64_t servicePs =
        std::max<std::int64_t>(1, stallPs + configPs + execPs);

    blade.busy = true;
    blade.current = job;
    blade.currentFails = willFail;
    blade.busyPs += servicePs;
    reg.observe(ids.servicePs, servicePs);
    schedule(nowPs + servicePs, EventKind::kCompletion, bladeIdx);
    if (rec) {
      rec->onServiceStart(job.req, job.attempt, bladeIdx, nowPs, stallPs,
                          configPs, execPs, nowPs + servicePs);
    }
  }

  void dispatch(std::uint32_t bladeIdx, std::uint32_t reqIdx, bool hedge) {
    Blade& blade = blades[bladeIdx];
    Request& r = requests[reqIdx];
    Job job;
    job.req = reqIdx;
    job.enqueuePs = nowPs;
    job.hedge = hedge;
    if (options.breaker.enabled && blade.state == BreakerState::kHalfOpen) {
      job.probe = true;
      ++blade.probesInFlight;
    }
    ++r.attempts;
    ++r.inFlight;
    job.attempt = r.attempts;
    if (!hedge) r.primaryBlade = static_cast<std::int32_t>(bladeIdx);
    if (rec) rec->onDispatch(reqIdx, job.attempt, hedge, bladeIdx, nowPs);
    if (blade.busy) {
      blade.queue.push_back(job);
    } else {
      startService(bladeIdx, job);
    }
  }

  /// Admission -> routing -> dispatch for one fresh arrival. Sheds (and
  /// returns) when no breaker admits traffic, the queue is over depth,
  /// or the estimated wait blows the SLO-derived deadline.
  /// Sheds one fresh request: counter, terminal trace, series window.
  void shedFresh(std::uint32_t reqIdx, obs::CounterId counter,
                 trace::Outcome outcome) {
    reg.add(counter);
    requests[reqIdx].failed = true;
    if (recordSeries) {
      obs::TimeSeries::Window& w = series.at(nowPs);
      ++w.shed;
      ++w.bad;
    }
    if (rec) rec->onShed(reqIdx, outcome, nowPs);
  }

  void admitFresh(std::uint32_t reqIdx) {
    Request& r = requests[reqIdx];
    reg.add(ids.offered);
    if (rec) rec->onArrival(reqIdx, nowPs);
    // Per-user token bucket ahead of routing: a rate-limited user's
    // request never consumes a routing decision or queue estimate.
    if (options.rateLimit.enabled) {
      double& tokens = rlTokens[r.user];
      std::int64_t& lastPs = rlLastPs[r.user];
      tokens = std::min(options.rateLimit.burst,
                        tokens + options.rateLimit.ratePerSecond *
                                     static_cast<double>(nowPs - lastPs) *
                                     1e-12);
      lastPs = nowPs;
      if (tokens < 1.0) {
        shedFresh(reqIdx, ids.shedRateLimit, trace::Outcome::kShedRateLimit);
        return;
      }
      tokens -= 1.0;
    }
    const std::int32_t choice = route(/*exclude=*/-1);
    if (choice < 0) {
      shedFresh(reqIdx, ids.shedBreaker, trace::Outcome::kShedBreaker);
      return;
    }
    const auto bladeIdx = static_cast<std::uint32_t>(choice);
    const std::size_t d = depth(blades[bladeIdx]);
    if (d >= options.admission.maxQueueDepth) {
      shedFresh(reqIdx, ids.shedQueue, trace::Outcome::kShedQueue);
      return;
    }
    if (static_cast<std::int64_t>(d) * meanServicePs > deadlineWaitPs) {
      shedFresh(reqIdx, ids.shedDeadline, trace::Outcome::kShedDeadline);
      return;
    }
    reg.add(ids.admitted);
    retryTokens = std::min(options.retry.burstTokens,
                           retryTokens + options.retry.budgetFraction);
    if (options.hedge.enabled) {
      hedgeTokens = std::min(options.hedge.burstTokens,
                             hedgeTokens + options.hedge.budgetFraction);
    }
    dispatch(bladeIdx, reqIdx, /*hedge=*/false);
    if (options.hedge.enabled &&
        localLatency.count >= options.hedge.minSamples) {
      const auto delayPs = static_cast<std::int64_t>(
          localLatency.quantile(options.hedge.quantile));
      schedule(nowPs + std::max<std::int64_t>(1, delayPs), EventKind::kHedge,
               reqIdx);
    }
  }

  void generateArrival() {
    Request r;
    r.arrivalPs = nowPs;
    if (options.arrival == ArrivalProcess::kTrace) {
      const TraceArrival& ta =
          options.trace[traceIdx++ % options.trace.size()];
      if (ta.task >= 0) {
        r.task = static_cast<std::uint32_t>(ta.task) %
                 static_cast<std::uint32_t>(taskCount());
        // No RNG draw for an explicit task: attribute it to the user the
        // affinity mapping would prefer it.
        r.user = static_cast<std::uint32_t>(r.task % options.users);
      } else {
        r.task = drawTask(r.user);
      }
      r.bytes = ta.bytes > 0 ? ta.bytes : drawBytes();
    } else {
      r.task = drawTask(r.user);
      r.bytes = drawBytes();
    }
    const auto reqIdx = static_cast<std::uint32_t>(requests.size());
    requests.push_back(r);
    admitFresh(reqIdx);
    ++generated;
    if (generated < quota) scheduleNextArrival();
  }

  /// Draws the owning user and the task; the draw order (user, affinity,
  /// optional uniform task) is part of the determinism contract.
  std::uint32_t drawTask(std::uint32_t& user) {
    const std::uint64_t drawn = rng.below(options.users);
    user = static_cast<std::uint32_t>(drawn);
    if (rng.chance(options.taskAffinity)) {
      return static_cast<std::uint32_t>(drawn % taskCount());
    }
    return static_cast<std::uint32_t>(rng.below(taskCount()));
  }

  std::uint64_t drawBytes() {
    const double base = static_cast<double>(options.payloadBytes.count());
    const double lo = base * (1.0 - options.payloadSpread);
    const double hi = base * (1.0 + options.payloadSpread);
    return static_cast<std::uint64_t>(
        std::max(1.0, options.payloadSpread > 0.0 ? rng.uniform(lo, hi)
                                                  : base));
  }

  void scheduleNextArrival() {
    std::int64_t gapPs = interarrivalPs;
    switch (options.arrival) {
      case ArrivalProcess::kPoisson:
        gapPs = static_cast<std::int64_t>(
            rng.exponential(static_cast<double>(interarrivalPs)));
        break;
      case ArrivalProcess::kFixedRate:
        break;
      case ArrivalProcess::kTrace:
        gapPs = options.trace[traceIdx % options.trace.size()].deltaPs;
        break;
    }
    schedule(nowPs + std::max<std::int64_t>(1, gapPs), EventKind::kArrival, 0);
  }

  /// A request reached a terminal failure (attempts exhausted or retry
  /// budget empty) with no copy left in flight.
  void finishFailed(std::uint32_t reqIdx) {
    Request& r = requests[reqIdx];
    r.failed = true;
    reg.add(ids.completedFailed);
    reg.observe(ids.attempts, r.attempts);
    if (recordSeries) {
      obs::TimeSeries::Window& w = series.at(nowPs);
      ++w.failed;
      ++w.bad;
    }
    if (rec) rec->onFailed(reqIdx, nowPs);
  }

  void onCompletion(std::uint32_t bladeIdx) {
    Blade& blade = blades[bladeIdx];
    const Job job = blade.current;
    const bool fail = blade.currentFails;
    blade.busy = false;
    Request& r = requests[job.req];
    --r.inFlight;

    // Blade health: the recovery ladder slides on failure streaks and
    // climbs back on success streaks.
    if (fail) {
      blade.consecOk = 0;
      ++blade.consecFail;
      if (blade.consecFail % options.escalateAfter == 0 &&
          blade.rung + 1 < config::kRecoveryRungCount) {
        ++blade.rung;
        reg.add(ids.escalations);
        if (rec) {
          rec->bladeMark(bladeIdx, trace::BladeMarkKind::kLadderEscalate,
                         nowPs);
        }
      }
    } else {
      blade.consecFail = 0;
      ++blade.consecOk;
      blade.resident = static_cast<std::int32_t>(r.task);
      if (blade.consecOk >= options.recoverAfter && blade.rung > 0) {
        --blade.rung;
        blade.consecOk = 0;
        reg.add(ids.deescalations);
        if (rec) {
          rec->bladeMark(bladeIdx, trace::BladeMarkKind::kLadderDeescalate,
                         nowPs);
        }
      }
    }

    // Breaker transitions. Probe jobs settle the half-open state; closed
    // blades open on failure streaks or a degraded-enough ladder rung.
    if (options.breaker.enabled) {
      if (job.probe && blade.state == BreakerState::kHalfOpen) {
        if (blade.probesInFlight > 0) --blade.probesInFlight;
        if (fail) {
          blade.state = BreakerState::kOpen;
          blade.reopenAtPs = nowPs + options.breaker.openDuration.ps();
          reg.add(ids.breakerOpens);
          if (recordSeries) ++series.at(nowPs).breakerOpens;
          if (rec) {
            rec->bladeMark(bladeIdx, trace::BladeMarkKind::kBreakerOpen,
                           nowPs);
          }
        } else {
          ++blade.probeOk;
          if (blade.probeOk >= options.breaker.probeSuccesses) {
            blade.state = BreakerState::kClosed;
            blade.consecFail = 0;
            reg.add(ids.breakerCloses);
            if (rec) {
              rec->bladeMark(bladeIdx, trace::BladeMarkKind::kBreakerClose,
                             nowPs);
            }
          }
        }
      } else if (blade.state == BreakerState::kClosed && fail &&
                 (blade.consecFail >= options.breaker.consecutiveFailures ||
                  blade.rung >= static_cast<std::size_t>(
                                    options.breaker.openRung))) {
        blade.state = BreakerState::kOpen;
        blade.reopenAtPs = nowPs + options.breaker.openDuration.ps();
        reg.add(ids.breakerOpens);
        if (recordSeries) ++series.at(nowPs).breakerOpens;
        if (rec) {
          rec->bladeMark(bladeIdx, trace::BladeMarkKind::kBreakerOpen, nowPs);
        }
      }
    }

    // Request outcome. A copy finishing after the request is already done
    // is the losing side of a hedge; it only updated blade health.
    if (!r.done) {
      if (!fail) {
        r.done = true;
        reg.add(ids.completedOk);
        const std::int64_t latencyPs = nowPs - r.arrivalPs;
        reg.observe(ids.latencyPs, latencyPs);
        // The slow-tail threshold is the quantile *before* this sample:
        // a request cannot make itself look fast by shifting the bar.
        std::int64_t slowThresholdPs = -1;
        if (rec && localLatency.count >=
                       static_cast<std::uint64_t>(
                           options.tracing.slowMinSamples)) {
          slowThresholdPs = static_cast<std::int64_t>(
              localLatency.quantile(options.tracing.slowQuantile));
        }
        observeLocal(localLatency, latencyPs);
        reg.observe(ids.attempts, r.attempts);
        if (job.hedge) reg.add(ids.hedgeWins);
        if (recordSeries) {
          obs::TimeSeries::Window& w = series.at(nowPs);
          ++w.completed;
          observeLocal(w.latency, latencyPs);
          if (latencyPs <= sloTargetPs) {
            ++w.good;
          } else {
            ++w.bad;
          }
        }
        if (rec) {
          rec->onDone(job.req, job.hedge, nowPs, slowThresholdPs,
                      sloTargetPs);
        }
      } else if (r.inFlight == 0) {
        if (r.attempts < options.retry.maxAttempts) {
          if (retryTokens >= 1.0) {
            retryTokens -= 1.0;
            reg.add(ids.retries);
            if (recordSeries) ++series.at(nowPs).retries;
            const double backoff =
                static_cast<double>(options.retry.backoffBase.ps()) *
                std::pow(options.retry.backoffFactor, r.attempts - 1);
            schedule(nowPs + std::max<std::int64_t>(
                                 1, static_cast<std::int64_t>(backoff)),
                     EventKind::kRetry, job.req);
          } else {
            reg.add(ids.retriesDenied);
            if (rec) rec->onRetryDenied(job.req, nowPs);
            finishFailed(job.req);
          }
        } else {
          finishFailed(job.req);
        }
      }
    }

    pumpQueue(bladeIdx);
  }

  /// Starts the next queued job, discarding copies whose request already
  /// finished (hedge losers cancelled at dequeue — they cost nothing).
  void pumpQueue(std::uint32_t bladeIdx) {
    Blade& blade = blades[bladeIdx];
    while (!blade.busy && !blade.queue.empty()) {
      const Job job = blade.queue.front();
      blade.queue.pop_front();
      Request& r = requests[job.req];
      if (r.done) {
        --r.inFlight;
        reg.add(ids.hedgeCancelled);
        if (rec) rec->onCancelled(job.req, job.attempt, nowPs);
        if (job.probe && blade.state == BreakerState::kHalfOpen &&
            blade.probesInFlight > 0) {
          --blade.probesInFlight;
        }
        continue;
      }
      startService(bladeIdx, job);
    }
  }

  void onRetry(std::uint32_t reqIdx) {
    Request& r = requests[reqIdx];
    if (r.done || r.failed) return;
    const std::int32_t choice = route(r.primaryBlade);
    if (choice < 0) {
      finishFailed(reqIdx);
      return;
    }
    dispatch(static_cast<std::uint32_t>(choice), reqIdx, /*hedge=*/false);
  }

  void onHedge(std::uint32_t reqIdx) {
    Request& r = requests[reqIdx];
    // Hedge only a request whose primary is still grinding: not done, not
    // already hedged, not sitting between retries.
    if (r.done || r.failed || r.hedged || r.inFlight == 0) return;
    if (hedgeTokens < 1.0) return;
    const std::int32_t choice = route(r.primaryBlade);
    if (choice < 0 ||
        choice == r.primaryBlade) {
      return;
    }
    hedgeTokens -= 1.0;
    r.hedged = true;
    reg.add(ids.hedges);
    if (rec) rec->onHedgeLaunch(reqIdx, nowPs);
    dispatch(static_cast<std::uint32_t>(choice), reqIdx, /*hedge=*/true);
  }

  CellResult run(std::size_t cellIdx) {
    if (options.tracing.enabled) {
      recorder = std::make_unique<trace::CellRecorder>(options.tracing,
                                                       options.seed, cellIdx);
      rec = recorder.get();
    }
    recordSeries = options.slo.enabled || rec != nullptr;
    series = obs::TimeSeries{options.slo.windowPs > 0
                                 ? options.slo.windowPs
                                 : obs::SloSpec{}.windowPs};
    if (options.rateLimit.enabled) {
      rlTokens.assign(options.users, options.rateLimit.burst);
      rlLastPs.assign(options.users, 0);
    }
    const std::size_t totalBlades = options.cells * options.bladesPerCell;
    const std::uint64_t degradedCount = static_cast<std::uint64_t>(
        std::llround(options.degradedFraction *
                     static_cast<double>(totalBlades)));
    blades.resize(options.bladesPerCell);
    for (std::size_t b = 0; b < blades.size(); ++b) {
      const std::uint64_t g = cellIdx * options.bladesPerCell + b;
      // Bresenham spread: blade g is degraded iff the running quota
      // (g+1)*count/total advances past g*count/total — every cell gets
      // its proportional share of hostile blades.
      const bool degraded =
          ((g + 1) * degradedCount) / totalBlades >
          (g * degradedCount) / totalBlades;
      blades[b].plan =
          (degraded ? options.degradedFaults : options.faults).forNode(g);
      blades[b].rng = util::Rng{blades[b].plan.seed};
    }

    const std::uint64_t base = options.requests / options.cells;
    const std::uint64_t rem = options.requests % options.cells;
    quota = base + (cellIdx < rem ? 1 : 0);

    // Arrival rate from the calibrated service model: a uniform task mix
    // misses the resident persona with probability (1 - 1/tasks), so the
    // expected service is exec plus that fraction of a persona reload.
    const double missFraction =
        taskCount() > 1
            ? 1.0 - 1.0 / static_cast<double>(taskCount())
            : 0.0;
    meanServicePs = std::max<std::int64_t>(
        1, profile.meanExecPs(options.payloadBytes.count()) +
               static_cast<std::int64_t>(
                   missFraction *
                   static_cast<double>(profile.meanConfigPs())));
    deadlineWaitPs = static_cast<std::int64_t>(
        options.admission.sloFactor * static_cast<double>(meanServicePs));
    sloTargetPs = options.slo.latencyTargetPs > 0 ? options.slo.latencyTargetPs
                                                  : deadlineWaitPs;
    interarrivalPs = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(meanServicePs) /
               (options.offeredLoad *
                static_cast<double>(options.bladesPerCell))));

    requests.reserve(quota);
    if (quota > 0) scheduleNextArrival();
    while (!heap.empty()) {
      const Event e = heap.top();
      heap.pop();
      nowPs = e.timePs;
      endPs = std::max(endPs, nowPs);
      switch (e.kind) {
        case EventKind::kArrival: generateArrival(); break;
        case EventKind::kCompletion: onCompletion(e.arg); break;
        case EventKind::kRetry: onRetry(e.arg); break;
        case EventKind::kHedge: onHedge(e.arg); break;
      }
    }

    CellResult result;
    result.endPs = endPs;
    result.utilization.reserve(blades.size());
    for (const Blade& blade : blades) {
      reg.add(ids.bladeBusyPs, static_cast<std::uint64_t>(blade.busyPs));
      result.utilization.push_back(
          endPs > 0 ? static_cast<double>(blade.busyPs) /
                          static_cast<double>(endPs)
                    : 0.0);
    }
    if (rec) {
      result.trace = rec->take();
      reg.add(ids.traceRecorded, result.trace.recorded);
      reg.add(ids.traceTailEligible, result.trace.tailEligible);
      reg.add(ids.traceKeptTail, result.trace.keptTail);
      reg.add(ids.traceKeptSampled, result.trace.keptSampled);
      reg.add(ids.traceDroppedCap, result.trace.droppedCap);
    }
    if (recordSeries) {
      reg.add(ids.sloGood, series.totalGood());
      reg.add(ids.sloBad, series.totalBad());
      result.series = std::move(series);
    }
    result.metrics = reg.snapshot();
    return result;
  }
};

void validate(const FleetOptions& options) {
  util::require(options.cells >= 1, "runFleet: need at least one cell");
  util::require(options.bladesPerCell >= 1 && options.bladesPerCell <= 6,
                "runFleet: an XD1 chassis holds 1..6 blades");
  util::require(options.requests >= 1, "runFleet: need at least one request");
  util::require(options.offeredLoad > 0.0,
                "runFleet: offeredLoad must be positive");
  util::require(options.users >= 1, "runFleet: need at least one user");
  util::require(options.taskAffinity >= 0.0 && options.taskAffinity <= 1.0,
                "runFleet: taskAffinity must be within [0, 1]");
  util::require(options.payloadSpread >= 0.0 && options.payloadSpread < 1.0,
                "runFleet: payloadSpread must be within [0, 1)");
  util::require(options.payloadBytes.count() >= 2,
                "runFleet: payload too small");
  util::require(options.retry.maxAttempts >= 1,
                "runFleet: retry.maxAttempts must be at least 1");
  util::require(options.retry.budgetFraction >= 0.0,
                "runFleet: retry.budgetFraction must be non-negative");
  util::require(!options.hedge.enabled ||
                    (options.hedge.quantile > 0.0 &&
                     options.hedge.quantile < 1.0),
                "runFleet: hedge.quantile must be within (0, 1)");
  util::require(options.arrival != ArrivalProcess::kTrace ||
                    !options.trace.empty(),
                "runFleet: trace arrivals need a non-empty trace");
  util::require(
      options.degradedFraction >= 0.0 && options.degradedFraction <= 1.0,
      "runFleet: degradedFraction must be within [0, 1]");
  util::require(options.escalateAfter >= 1 && options.recoverAfter >= 1,
                "runFleet: escalate/recover streaks must be at least 1");
  util::require(!options.rateLimit.enabled ||
                    (options.rateLimit.ratePerSecond > 0.0 &&
                     options.rateLimit.burst > 0.0),
                "runFleet: rate limiter needs positive rate and burst");
  util::require(!options.tracing.enabled ||
                    (options.tracing.sampleRate >= 0.0 &&
                     options.tracing.sampleRate <= 1.0),
                "runFleet: tracing.sampleRate must be within [0, 1]");
  util::require(!options.tracing.enabled ||
                    (options.tracing.slowQuantile > 0.0 &&
                     options.tracing.slowQuantile < 1.0),
                "runFleet: tracing.slowQuantile must be within (0, 1)");
  util::require(!options.slo.enabled ||
                    (options.slo.objective > 0.0 &&
                     options.slo.objective < 1.0),
                "runFleet: slo.objective must be within (0, 1)");
  util::require(!options.slo.enabled || options.slo.windowPs > 0,
                "runFleet: slo.windowPs must be positive");
}

}  // namespace

std::string FleetReport::toString() const {
  std::ostringstream os;
  os << "fleet: " << offered << " offered, " << admitted << " admitted, "
     << shed << " shed (" << shedRate() << "), " << completed << " ok, "
     << failed << " failed\n";
  os << "  latency p50/p95/p99 " << latency.p50() << '/' << latency.p95()
     << '/' << latency.p99() << " ps over " << latency.count << " requests\n";
  os << "  retries " << retries << " (budget consumption "
     << retryBudgetConsumption() << ", denied " << retriesDenied
     << "), hedges " << hedges << " (won " << hedgeWins << ")\n";
  os << "  breaker opens " << breakerOpens << ", closes " << breakerCloses
     << "; utilization " << utilizationMin << '/' << utilizationMean << '/'
     << utilizationMax << " over makespan " << makespan.toString() << '\n';
  return os.str();
}

FleetReport runFleet(const tasks::FunctionRegistry& registry,
                     const BladeProfile& profile,
                     const FleetOptions& options) {
  validate(options);
  util::require(profile.tasks.size() == registry.size(),
                "runFleet: profile does not match the function registry");
  util::require(!profile.tasks.empty(), "runFleet: empty blade profile");
  const prof::Scope runScope{options.hooks.profiler, "fleet.run"};
  const Ids ids = internIds();

  std::vector<std::size_t> cellIndices(options.cells);
  for (std::size_t c = 0; c < cellIndices.size(); ++c) cellIndices[c] = c;
  std::vector<CellResult> cells = exec::parallelMap(
      cellIndices,
      [&](const std::size_t cell) {
        Cell state{options, profile, ids, cell};
        return state.run(cell);
      },
      exec::ForOptions{.threads = options.threads});

  // Per-cell snapshots are additive (counters and histograms only), so the
  // ordered tree reduction folds them without prefixes — byte-identical to
  // a left-to-right merge at any thread count.
  FleetReport report;
  std::vector<obs::MetricsSnapshot> leaves;
  leaves.reserve(cells.size());
  for (CellResult& cell : cells) {
    report.makespan =
        std::max(report.makespan, util::Time::picoseconds(cell.endPs));
    leaves.push_back(std::move(cell.metrics));
  }
  report.metrics = obs::reduceSnapshots(std::move(leaves));

  const obs::MetricsSnapshot& m = report.metrics;
  report.offered = m.counterOr("fleet.offered");
  report.admitted = m.counterOr("fleet.admitted");
  report.shedRateLimited = m.counterOr("fleet.shed.ratelimit");
  report.shed = m.counterOr("fleet.shed.breaker") +
                m.counterOr("fleet.shed.deadline") +
                m.counterOr("fleet.shed.queue") + report.shedRateLimited;
  report.completed = m.counterOr("fleet.completed.ok");
  report.failed = m.counterOr("fleet.completed.failed");
  report.retries = m.counterOr("fleet.retries");
  report.retriesDenied = m.counterOr("fleet.retries_denied");
  report.hedges = m.counterOr("fleet.hedges");
  report.hedgeWins = m.counterOr("fleet.hedge_wins");
  report.breakerOpens = m.counterOr("fleet.breaker.opens");
  report.breakerCloses = m.counterOr("fleet.breaker.closes");
  report.tracesRecorded = m.counterOr("fleet.trace.recorded");
  report.tailEligible = m.counterOr("fleet.trace.tail_eligible");
  report.tracesKeptTail = m.counterOr("fleet.trace.kept_tail");
  report.tracesKeptSampled = m.counterOr("fleet.trace.kept_sampled");
  report.tracesDroppedCap = m.counterOr("fleet.trace.dropped_cap");
  report.tracesKept = report.tracesKeptTail + report.tracesKeptSampled;
  if (const auto it = m.histograms.find("fleet.latency_ps");
      it != m.histograms.end()) {
    report.latency = it->second;
  }

  double utilSum = 0.0;
  std::size_t utilCount = 0;
  for (const CellResult& cell : cells) {
    for (const double u : cell.utilization) {
      if (utilCount == 0) {
        report.utilizationMin = u;
        report.utilizationMax = u;
      } else {
        report.utilizationMin = std::min(report.utilizationMin, u);
        report.utilizationMax = std::max(report.utilizationMax, u);
      }
      utilSum += u;
      ++utilCount;
    }
  }
  report.utilizationMean =
      utilCount ? utilSum / static_cast<double>(utilCount) : 0.0;

  report.metrics.counters["fleet.cells"] = options.cells;
  report.metrics.counters["fleet.blades"] =
      options.cells * options.bladesPerCell;
  report.metrics.counters["fleet.makespan_ps"] =
      static_cast<std::uint64_t>(report.makespan.ps());
  report.metrics.gauges["fleet.utilization.min"] = report.utilizationMin;
  report.metrics.gauges["fleet.utilization.mean"] = report.utilizationMean;
  report.metrics.gauges["fleet.utilization.max"] = report.utilizationMax;
  report.metrics.gauges["fleet.retry.budget_consumption"] =
      report.retryBudgetConsumption();
  report.metrics.gauges["fleet.shed.rate"] = report.shedRate();

  // Fold the windowed series across cells (window widths match: every
  // cell derives the width from the same SLO spec), then gate on it.
  if (options.slo.enabled || options.tracing.enabled) {
    report.series = obs::TimeSeries{options.slo.windowPs > 0
                                        ? options.slo.windowPs
                                        : obs::SloSpec{}.windowPs};
    for (const CellResult& cell : cells) report.series.fold(cell.series);
  }
  if (options.tracing.enabled) {
    report.traces.cells.reserve(cells.size());
    for (CellResult& cell : cells) {
      report.traces.cells.push_back(std::move(cell.trace));
    }
  }
  if (options.slo.enabled) {
    report.slo = obs::evaluateSlo(report.series, options.slo);
    report.metrics.gauges["fleet.slo.good_fraction"] =
        report.slo.goodFraction;
    report.metrics.gauges["fleet.slo.fast_burn_max"] = report.slo.fastBurnMax;
    report.metrics.gauges["fleet.slo.slow_burn_max"] = report.slo.slowBurnMax;
    report.metrics.counters["fleet.slo.breach_windows"] =
        report.slo.breachWindows;
    report.metrics.counters["fleet.slo.pass"] = report.slo.pass ? 1 : 0;
  }
  if (options.hooks.trace && options.tracing.enabled) {
    trace::exportFleetTrace(report.traces, *options.hooks.trace);
    options.hooks.trace->addCounters("fleet/series",
                                     report.series.counterTracks("fleet"));
  }

  if (options.hooks.metrics) options.hooks.metrics->absorb(report.metrics);
  if (options.hooks.shardedMetrics) {
    options.hooks.shardedMetrics->local().absorbAdditive(report.metrics);
  }
  return report;
}

FleetReport runFleet(const tasks::FunctionRegistry& registry,
                     const FleetOptions& options) {
  const BladeProfile profile =
      calibrateBladeProfile(registry, options.calibration,
                            options.payloadBytes);
  return runFleet(registry, profile, options);
}

}  // namespace prtr::fleet
