#pragma once
/// \file fleet.hpp
/// prtr::fleet — an open-loop simulated serving fleet of XD1 chassis with
/// an Envoy-style resilience front end.
///
/// The paper bounds what one node gains from partial run-time
/// reconfiguration; a deployment question immediately follows: what do
/// those bounds look like for a *service* — N chassis of blades behind a
/// load balancer, each request picking a hardware function whose persona
/// may or may not be resident? This layer answers with a discrete-event
/// fleet simulator whose per-request service times come from the real
/// blade simulator (see calibrate.hpp), fronted by the resilience
/// mechanisms production fleets actually run:
///
///   - routing: least-loaded, power-of-two-choices, or round-robin over
///     the blades of a cell;
///   - admission control: deadline-based load shedding (estimated queue
///     wait vs an SLO derived from the calibrated mean service time) and
///     a hard queue-depth bound;
///   - retries: bounded attempts governed by a fleet-wide retry *budget*
///     (token bucket fed by fresh traffic), so retries can never exceed a
///     configured fraction of admitted load — the classic retry-storm
///     guard;
///   - circuit breakers: a blade whose configuration path keeps faulting
///     degrades down the PR-4 recovery ladder; enough consecutive
///     failures (or landing on a heavy-enough rung) opens its breaker,
///     which half-opens after a cooldown and closes again once probe
///     requests succeed;
///   - hedged requests: after a cell-local p95-derived delay, a copy of a
///     straggling request is dispatched to a second blade; first
///     completion wins, the loser is cancelled at dequeue.
///
/// Decision order per fresh request: admission (shed?) -> routing (which
/// breaker-eligible blade?) -> dispatch. Retries re-route; hedges route
/// away from the original blade.
///
/// Determinism: a cell (one chassis) is an independent simulation with its
/// own event heap, its own arrival/routing RNG, and one RNG per blade
/// (fault::Plan::forNode of the global blade index). Cells run through
/// exec::parallelMap and their per-cell Registry snapshots fold in cell
/// order via obs::reduceSnapshots, so output is byte-identical at any
/// --threads, same contract as hprc::runChassis and the sweep harness.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "config/recovery.hpp"
#include "fault/fault.hpp"
#include "fleet/calibrate.hpp"
#include "obs/hooks.hpp"
#include "obs/timeseries.hpp"
#include "runtime/scenario.hpp"
#include "tasks/hwfunction.hpp"
#include "trace/policy.hpp"
#include "trace/request.hpp"

namespace prtr::fleet {

/// How fresh requests arrive at each cell (open loop: arrivals never wait
/// for completions).
enum class ArrivalProcess : std::uint8_t {
  kPoisson,    ///< exponential interarrivals at the derived rate
  kFixedRate,  ///< deterministic interarrivals at the derived rate
  kTrace,      ///< replay FleetOptions::trace deltas (cyclically)
};

[[nodiscard]] const char* toString(ArrivalProcess arrival) noexcept;

/// Which blade of a cell a request is routed to.
enum class RoutingPolicy : std::uint8_t {
  kLeastLoaded,       ///< scan all eligible blades, pick the shortest queue
  kPowerOfTwoChoices, ///< sample two eligible blades, pick the shorter queue
  kRoundRobin,        ///< rotate over eligible blades
};

[[nodiscard]] const char* toString(RoutingPolicy routing) noexcept;

/// One replayed arrival of a trace-driven fleet (deltas, not absolutes,
/// so a trace can repeat cyclically).
struct TraceArrival {
  std::int64_t deltaPs = 0;   ///< gap since the previous arrival
  std::int32_t task = -1;     ///< function index; -1 = draw from the mix
  std::uint64_t bytes = 0;    ///< payload; 0 = the configured payload
};

/// Bounded retries under a fleet-wide budget. Tokens accrue at
/// `budgetFraction` per admitted fresh request and every retry consumes
/// one, so retry traffic can never exceed that fraction of fresh traffic
/// (plus a small burst allowance) no matter how hostile the fault plan.
struct RetryPolicy {
  std::uint32_t maxAttempts = 3;  ///< total attempts (1 = never retry)
  double budgetFraction = 0.2;    ///< retry tokens accrued per admission
  double burstTokens = 10.0;      ///< token-bucket cap (burst allowance)
  util::Time backoffBase = util::Time::microseconds(200);
  double backoffFactor = 2.0;     ///< backoff = base * factor^(attempt-1)
};

/// Per-blade circuit breaker. Opens on consecutive failures or when the
/// blade's recovery ladder degrades to `openRung` or beyond; half-opens
/// after `openDuration` of simulated time; `probeSuccesses` successful
/// probes (of at most `halfOpenProbes` in flight) close it again.
struct BreakerPolicy {
  bool enabled = true;
  std::uint32_t consecutiveFailures = 5;
  config::RecoveryRung openRung = config::RecoveryRung::kFullDevice;
  util::Time openDuration = util::Time::milliseconds(5);
  std::uint32_t halfOpenProbes = 3;
  std::uint32_t probeSuccesses = 2;
};

/// Deadline-based load shedding at admission. The deadline is
/// `sloFactor` x the calibrated mean service time; a request whose
/// estimated queue wait already exceeds it is shed rather than queued,
/// and a queue deeper than `maxQueueDepth` sheds unconditionally.
struct AdmissionPolicy {
  double sloFactor = 16.0;
  std::uint32_t maxQueueDepth = 64;
};

/// Per-user token-bucket rate limiting at admission. Each simulated user
/// owns a bucket that refills at `ratePerSecond` tokens per simulated
/// second up to `burst`; a fresh arrival whose bucket is empty is shed
/// before routing (it never consumes queue space or a routing decision).
struct RateLimitPolicy {
  bool enabled = false;
  double ratePerSecond = 0.0;
  double burst = 10.0;
};

/// Hedged requests: once a cell has observed `minSamples` completions, a
/// fresh request still unfinished after the cell-local `quantile` latency
/// gets a second copy on another blade. Hedges draw from their own token
/// budget (accrued like the retry budget) so tail-chasing cannot double
/// the offered load.
struct HedgePolicy {
  bool enabled = false;
  double quantile = 0.95;
  std::uint64_t minSamples = 100;
  double budgetFraction = 0.05;
  double burstTokens = 5.0;
};

/// Everything a fleet run needs besides the function registry itself.
struct FleetOptions {
  std::size_t cells = 4;          ///< chassis count
  std::size_t bladesPerCell = 6;  ///< 1..6 (XD1 chassis bound)
  std::uint64_t requests = 100'000;  ///< fresh requests across the fleet
  std::uint64_t seed = 0xF1EE7u;

  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Target per-blade utilization the arrival rate is derived from: the
  /// mean interarrival per cell is E[S] / (offeredLoad * bladesPerCell)
  /// with E[S] the calibrated mean service time at `payloadBytes`.
  double offeredLoad = 0.7;
  std::vector<TraceArrival> trace;  ///< kTrace replay source

  /// Task mix: each request belongs to one of `users` simulated users;
  /// with probability `taskAffinity` it calls the user's preferred
  /// function (user modulo function count), otherwise a uniform draw.
  std::uint64_t users = 64;
  double taskAffinity = 0.75;
  util::Bytes payloadBytes = util::Bytes::mebi(1);
  /// Payload jitter: actual bytes drawn uniformly within +/- this
  /// fraction of `payloadBytes`.
  double payloadSpread = 0.25;

  RoutingPolicy routing = RoutingPolicy::kPowerOfTwoChoices;
  RetryPolicy retry{};
  BreakerPolicy breaker{};
  AdmissionPolicy admission{};
  RateLimitPolicy rateLimit{};
  HedgePolicy hedge{};

  /// Request-scoped tracing (tail-based sampling; see trace/policy.hpp).
  /// A pure observer: enabling it changes no simulated byte.
  trace::TracePolicy tracing{};
  /// SLO objective + burn-rate windows evaluated over the run's
  /// time-series; slo.enabled also turns the series on.
  obs::SloSpec slo{};

  /// Fault plan for healthy blades (re-seeded per blade via forNode).
  fault::Plan faults{};
  /// Chaos split: this fraction of blades (spread evenly across cells)
  /// runs `degradedFaults` instead of `faults`.
  double degradedFraction = 0.0;
  fault::Plan degradedFaults{};
  /// Consecutive config-path failures before a blade slides one rung down
  /// the recovery ladder; `recoverAfter` consecutive successes climb one
  /// rung back up.
  std::uint32_t escalateAfter = 3;
  std::uint32_t recoverAfter = 16;

  /// Blade semantics for calibration (layout, basis, compression...);
  /// passed through hprc::bladeScenarioOptions exactly like a chassis
  /// blade. Fault/recovery knobs here are ignored — calibration measures
  /// the healthy platform.
  runtime::ScenarioOptions calibration{};

  std::size_t threads = 0;  ///< host threads across cells (0 = auto)
  obs::Hooks hooks{};       ///< metrics/shardedMetrics sinks (timelines n/a)
};

/// Aggregate result of a fleet run.
struct FleetReport {
  std::uint64_t offered = 0;    ///< fresh arrivals
  std::uint64_t admitted = 0;   ///< fresh arrivals that were queued
  std::uint64_t shed = 0;       ///< fresh arrivals rejected at admission
  std::uint64_t completed = 0;  ///< requests that finished successfully
  std::uint64_t failed = 0;     ///< requests that exhausted their attempts
  std::uint64_t retries = 0;    ///< retry dispatches (budget-approved)
  std::uint64_t retriesDenied = 0;  ///< retries blocked by the budget
  std::uint64_t hedges = 0;         ///< hedge copies dispatched
  std::uint64_t hedgeWins = 0;      ///< requests completed by the hedge copy
  std::uint64_t breakerOpens = 0;
  std::uint64_t breakerCloses = 0;
  std::uint64_t shedRateLimited = 0;  ///< subset of `shed` (token bucket)

  /// Tracing tallies (all zero when FleetOptions::tracing is disabled).
  std::uint64_t tracesRecorded = 0;     ///< requests reaching terminal state
  std::uint64_t tracesKept = 0;         ///< kept by the tail-based sampler
  std::uint64_t tracesKeptTail = 0;     ///< kept because tail (never capped)
  std::uint64_t tracesKeptSampled = 0;  ///< kept by the hash sampler
  std::uint64_t tracesDroppedCap = 0;   ///< rate-sampled keeps over the cap
  std::uint64_t tailEligible = 0;       ///< requests classified as tail

  /// End-to-end latency of successful requests (arrival -> completion).
  obs::HistogramSummary latency;
  util::Time makespan;  ///< slowest cell's last event

  double utilizationMin = 0.0;   ///< per-blade busy / makespan, fleet-wide
  double utilizationMean = 0.0;
  double utilizationMax = 0.0;

  /// fleet.* counters/histograms merged across cells (reduceSnapshots).
  obs::MetricsSnapshot metrics;

  /// Windowed time-series folded across cells in cell order. Populated
  /// when tracing or the SLO gate is enabled; empty otherwise.
  obs::TimeSeries series{};
  /// Burn-rate verdict; `slo.pass` stays true when the gate is disabled.
  obs::SloResult slo{};
  /// Kept request traces per cell (empty unless tracing is enabled).
  trace::FleetTrace traces{};

  /// Fraction of tail-eligible requests the sampler kept — 1.0 by
  /// construction whenever any request qualified as tail.
  [[nodiscard]] double tailRetention() const noexcept {
    return tailEligible ? static_cast<double>(tracesKeptTail) /
                              static_cast<double>(tailEligible)
                        : 1.0;
  }

  /// Retry dispatches as a fraction of admitted fresh traffic — bounded
  /// by RetryPolicy::budgetFraction (plus the burst allowance) by
  /// construction.
  [[nodiscard]] double retryBudgetConsumption() const noexcept {
    return admitted ? static_cast<double>(retries) /
                          static_cast<double>(admitted)
                    : 0.0;
  }
  [[nodiscard]] double shedRate() const noexcept {
    return offered ? static_cast<double>(shed) / static_cast<double>(offered)
                   : 0.0;
  }
  [[nodiscard]] double failureRate() const noexcept {
    return admitted ? static_cast<double>(failed) /
                          static_cast<double>(admitted)
                    : 0.0;
  }

  [[nodiscard]] std::string toString() const;
};

/// Runs the fleet against an already calibrated blade profile.
[[nodiscard]] FleetReport runFleet(const tasks::FunctionRegistry& registry,
                                   const BladeProfile& profile,
                                   const FleetOptions& options);

/// Calibrates the blade profile from `options.calibration`, then runs.
[[nodiscard]] FleetReport runFleet(const tasks::FunctionRegistry& registry,
                                   const FleetOptions& options);

}  // namespace prtr::fleet
