#pragma once
/// \file figures.hpp
/// Emitters that regenerate every table and figure of the paper's
/// evaluation (see DESIGN.md experiment index). Each returns structured
/// data (util::Table / util::Series) that the bench binaries print and can
/// dump as CSV.

#include <string>
#include <vector>

#include "model/calibration.hpp"
#include "prof/profiler.hpp"
#include "runtime/scenario.hpp"
#include "util/plot.hpp"
#include "util/table.hpp"

namespace prtr::exec {
class ArtifactCache;
}  // namespace prtr::exec

namespace prtr::analysis {

/// Table 1: hardware functions and their resource requirements on the
/// XC2VP50 (percentages against the usable device fabric).
[[nodiscard]] util::Table makeTable1();

/// Table 2: bitstream sizes and configuration times (estimated vs measured,
/// absolute and normalized) for the full / single-PRR / dual-PRR layouts,
/// with the paper's values side by side.
[[nodiscard]] util::Table makeTable2();

/// One sweep point of Figure 9.
struct Fig9Point {
  double xTask = 0.0;        ///< normalized task time requirement
  util::Bytes dataBytes{};   ///< payload that realizes it
  double simSpeedup = 0.0;   ///< measured on the simulator (finite calls)
  double modelSpeedup = 0.0; ///< eq. (6) at the same finite call count
  double modelAsymptote = 0.0;  ///< eq. (7)
};

/// Figure 9 reproduction: speedup vs task time requirement on the dual-PRR
/// layout, H = 0 (always reconfigure), T_control = 10 us — simulated and
/// analytic, at the chosen configuration-time basis (9a = estimated,
/// 9b = measured).
struct Fig9Options {
  model::ConfigTimeBasis basis = model::ConfigTimeBasis::kMeasured;
  std::size_t points = 21;
  double xTaskLo = 1e-3;
  double xTaskHi = 50.0;
  std::uint64_t nCalls = 400;
  std::size_t threads = 0;  ///< participants on the exec pool (0 = pool width)
  /// Shares floorplans/bitstreams across sweep points (every Fig-9 point
  /// uses the same dual-PRR layout, so the repeated-layout hit rate is
  /// high). Null = each point rebuilds its artifacts.
  exec::ArtifactCache* artifacts = nullptr;
  /// Wall-clock profiler: the whole sweep is timed under "fig9.sweep",
  /// every point under "fig9.point", and the profiler propagates into each
  /// point's scenario run (obs::Hooks::profiler). Null = off.
  prof::Profiler* profiler = nullptr;
  /// Trace collector: each sweep point's PRTR timeline is added as one
  /// process ("fig9[i] x=...") with sampled counter tracks (link occupancy,
  /// ICAP busy, PRR residency) attached. Null = no trace capture.
  obs::ChromeTrace* trace = nullptr;
  /// Per-worker metric shards: every sweep point records its scenario's
  /// additive metrics (and a fig9.points_computed counter) into the
  /// recording thread's shard, contention-free; the caller tree-merges at
  /// the barrier (ShardedRegistry::takeMerged) — byte-identical at any
  /// --threads width. Null = off.
  obs::ShardedRegistry* metrics = nullptr;
};
[[nodiscard]] std::vector<Fig9Point> makeFig9(const Fig9Options& options);

/// Renders Figure-9 points as a table and an ASCII plot.
[[nodiscard]] util::Table fig9Table(const std::vector<Fig9Point>& points);
[[nodiscard]] std::string fig9Plot(const std::vector<Fig9Point>& points,
                                   const std::string& title);

/// Figure 5 reproduction: asymptotic speedup (eq. 7, ideal overheads) vs
/// X_task for a set of hit ratios at one X_PRTR. One hit-ratio series per
/// exec-pool participant (`threads` as in ForOptions; series order is
/// deterministic regardless).
[[nodiscard]] std::vector<util::Series> makeFig5Series(
    double xPrtr, const std::vector<double>& hitRatios, std::size_t points = 121,
    double xTaskLo = 1e-3, double xTaskHi = 100.0, std::size_t threads = 0,
    obs::ShardedRegistry* metrics = nullptr);

/// Logarithmically spaced grid in [lo, hi].
[[nodiscard]] std::vector<double> logGrid(double lo, double hi,
                                          std::size_t points);

}  // namespace prtr::analysis
