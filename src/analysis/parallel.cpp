#include "analysis/parallel.hpp"

#include <mutex>
#include <set>
#include <string>

#include "util/log.hpp"

// The shims are [[deprecated]] in the header; defining them here must not
// warn under -Werror.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace prtr::analysis {

namespace detail {

void warnDeprecatedOnce(const char* shim, const char* replacement,
                        const std::source_location& where) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  const std::string site = std::string(where.file_name()) + ":" +
                           std::to_string(where.line()) + ":" + shim;
  {
    const std::lock_guard<std::mutex> lock{mutex};
    if (!warned.insert(site).second) return;
  }
  util::logWarn(shim, " is deprecated (called from ", where.file_name(), ":",
                where.line(), "); use ", replacement, " instead");
}

}  // namespace detail

std::size_t defaultThreadCount() noexcept {
  return exec::hardwareConcurrency();
}

void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                 std::size_t threads, const std::source_location& where) {
  detail::warnDeprecatedOnce("analysis::parallelFor", "exec::parallelFor",
                             where);
  exec::parallelFor(count, fn, exec::ForOptions{.threads = threads});
}

}  // namespace prtr::analysis

#pragma GCC diagnostic pop
