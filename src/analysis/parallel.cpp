#include "analysis/parallel.hpp"

// The shims are [[deprecated]] in the header; defining them here must not
// warn under -Werror.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace prtr::analysis {

std::size_t defaultThreadCount() noexcept {
  return exec::hardwareConcurrency();
}

void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                 std::size_t threads) {
  exec::parallelFor(count, fn, exec::ForOptions{.threads = threads});
}

}  // namespace prtr::analysis

#pragma GCC diagnostic pop
