#include "analysis/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>

namespace prtr::analysis {

std::size_t defaultThreadCount() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                 std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = defaultThreadCount();
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failureMutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock{failureMutex};
        if (!failure) failure = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace prtr::analysis
