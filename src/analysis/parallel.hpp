#pragma once
/// \file parallel.hpp
/// Deprecated shims over exec::Pool, kept for source compatibility. The
/// old helpers spawned and joined a fresh std::thread pool per call; the
/// replacements run on the persistent work-stealing pool (exec/pool.hpp).
/// New code should call exec::parallelFor / exec::parallelMap directly.

#include <cstddef>
#include <functional>
#include <source_location>

#include "exec/pool.hpp"

namespace prtr::analysis {

namespace detail {
/// Logs one deprecation warning per distinct call site (file:line) of a
/// shim, pointing at its exec:: replacement. Thread-safe; repeated calls
/// from the same site stay silent so hot loops don't flood the log.
void warnDeprecatedOnce(const char* shim, const char* replacement,
                        const std::source_location& where);
}  // namespace detail

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
[[deprecated("use exec::hardwareConcurrency")]] [[nodiscard]] std::size_t
defaultThreadCount() noexcept;

/// Applies `fn(index)` for every index in [0, count) across `threads`
/// workers of the global exec::Pool. Exceptions propagate with the pool's
/// contract: the first one (in completion order) is rethrown, identically
/// on the serial (`threads == 1`, `count < threads`) and pooled paths.
[[deprecated("use exec::parallelFor")]] void parallelFor(
    std::size_t count, const std::function<void(std::size_t)>& fn,
    std::size_t threads = 0,
    const std::source_location& where = std::source_location::current());

/// Maps `fn` over `inputs` in parallel, preserving order. Results need not
/// be default-constructible (they are emplaced into optional slots).
template <typename T, typename Fn>
[[deprecated("use exec::parallelMap")]] auto parallelMap(
    const std::vector<T>& inputs, Fn&& fn, std::size_t threads = 0,
    const std::source_location& where = std::source_location::current())
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  detail::warnDeprecatedOnce("analysis::parallelMap", "exec::parallelMap",
                             where);
  return exec::parallelMap(inputs, std::forward<Fn>(fn),
                           exec::ForOptions{.threads = threads});
}

}  // namespace prtr::analysis
