#pragma once
/// \file parallel.hpp
/// Deprecated shims over exec::Pool, kept for source compatibility. The
/// old helpers spawned and joined a fresh std::thread pool per call; the
/// replacements run on the persistent work-stealing pool (exec/pool.hpp).
/// New code should call exec::parallelFor / exec::parallelMap directly.

#include <cstddef>
#include <functional>

#include "exec/pool.hpp"

namespace prtr::analysis {

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
[[deprecated("use exec::hardwareConcurrency")]] [[nodiscard]] std::size_t
defaultThreadCount() noexcept;

/// Applies `fn(index)` for every index in [0, count) across `threads`
/// workers of the global exec::Pool. Exceptions propagate with the pool's
/// contract: the first one (in completion order) is rethrown, identically
/// on the serial (`threads == 1`, `count < threads`) and pooled paths.
[[deprecated("use exec::parallelFor")]] void parallelFor(
    std::size_t count, const std::function<void(std::size_t)>& fn,
    std::size_t threads = 0);

/// Maps `fn` over `inputs` in parallel, preserving order. Results need not
/// be default-constructible (they are emplaced into optional slots).
template <typename T, typename Fn>
[[deprecated("use exec::parallelMap")]] auto parallelMap(
    const std::vector<T>& inputs, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  return exec::parallelMap(inputs, std::forward<Fn>(fn),
                           exec::ForOptions{.threads = threads});
}

}  // namespace prtr::analysis
