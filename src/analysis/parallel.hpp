#pragma once
/// \file parallel.hpp
/// Thread-pooled helpers for parameter sweeps. Each sweep point runs a
/// fully independent Simulator instance, so points parallelize perfectly
/// across hardware threads.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace prtr::analysis {

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
[[nodiscard]] std::size_t defaultThreadCount() noexcept;

/// Applies `fn(index)` for every index in [0, count) across `threads`
/// workers. Exceptions from workers are rethrown (first one wins).
void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                 std::size_t threads = 0);

/// Maps `fn` over `inputs` in parallel, preserving order.
template <typename T, typename Fn>
auto parallelMap(const std::vector<T>& inputs, Fn&& fn, std::size_t threads = 0)
    -> std::vector<decltype(fn(inputs.front()))> {
  using R = decltype(fn(inputs.front()));
  std::vector<R> results(inputs.size());
  parallelFor(
      inputs.size(),
      [&](std::size_t i) { results[i] = fn(inputs[i]); }, threads);
  return results;
}

}  // namespace prtr::analysis
