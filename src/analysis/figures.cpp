#include "analysis/figures.hpp"

#include <cmath>

#include "config/icap_controller.hpp"
#include "exec/pool.hpp"
#include "model/bounds.hpp"
#include "prof/counters.hpp"
#include "model/model.hpp"
#include "tasks/hwfunction.hpp"
#include "xd1/rtcore.hpp"

namespace prtr::analysis {
namespace {

std::string percentOf(std::uint32_t used, std::uint32_t capacity) {
  if (capacity == 0) return "-";
  const double pct = 100.0 * static_cast<double>(used) /
                     static_cast<double>(capacity);
  return util::formatDouble(pct, 2) + "%";
}

std::string resourceCell(std::uint32_t used, std::uint32_t capacity) {
  if (used == 0) return "NA";
  return std::to_string(used) + " (" + percentOf(used, capacity) + ")";
}

}  // namespace

std::vector<double> logGrid(double lo, double hi, std::size_t points) {
  std::vector<double> grid;
  grid.reserve(points);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac =
        points > 1 ? static_cast<double>(i) / static_cast<double>(points - 1)
                   : 0.0;
    grid.push_back(std::pow(10.0, llo + (lhi - llo) * frac));
  }
  return grid;
}

util::Table makeTable1() {
  const auto device = fabric::makeXc2vp50();
  const fabric::ResourceVec cap = device.usableResources();
  util::Table table{{"Hardware Function", "LUTs", "FFs", "BRAM", "Freq (MHz)"}};

  const fabric::ResourceVec staticRegion = xd1::StaticDesign::staticRegionFootprint();
  table.row()
      .cell("Static Region")
      .cell(resourceCell(staticRegion.luts, cap.luts))
      .cell(resourceCell(staticRegion.ffs, cap.ffs))
      .cell(resourceCell(staticRegion.bram18, cap.bram18))
      .cell(util::formatDouble(xd1::StaticDesign::fabricClock().toMegahertz(), 3));

  const fabric::ResourceVec prc = config::IcapController::resourceFootprint();
  table.row()
      .cell("PR Controller")
      .cell(resourceCell(prc.luts, cap.luts))
      .cell(resourceCell(prc.ffs, cap.ffs))
      .cell(resourceCell(prc.bram18, cap.bram18))
      .cell(util::formatDouble(config::IcapController::fabricClock().toMegahertz(), 3));

  const auto registry = tasks::makePaperFunctions();
  for (const tasks::HwFunction& fn : registry.all()) {
    std::string label = fn.name;
    label[0] = static_cast<char>(std::toupper(label[0]));
    table.row()
        .cell(label + " Filter")
        .cell(resourceCell(fn.resources.luts, cap.luts))
        .cell(resourceCell(fn.resources.ffs, cap.ffs))
        .cell(resourceCell(fn.resources.bram18, cap.bram18))
        .cell(util::formatDouble(fn.fabricClock.toMegahertz(), 3));
  }
  return table;
}

util::Table makeTable2() {
  util::Table table{{"Configuration", "Bitstream (B)", "Paper (B)",
                     "Est. (ms)", "Paper est.", "Meas. (ms)", "Paper meas.",
                     "X_PRTR est.", "X_PRTR meas."}};

  struct Row {
    const char* name;
    xd1::Layout layout;
    bool full;
    double paperBytes;
    double paperEstMs;
    double paperMeasMs;
  };
  const Row rows[] = {
      {"Full Configuration", xd1::Layout::kSinglePrr, true, 2381764, 36.09,
       1678.04, },
      {"Single PRR", xd1::Layout::kSinglePrr, false, 887784, 13.45, 43.48},
      {"Dual PRR", xd1::Layout::kDualPrr, false, 404168, 6.12, 19.77},
  };

  // Reference full-configuration times for the normalization columns.
  sim::Simulator refSim;
  const xd1::Node refNode{refSim};
  const model::ConfigTimes refTimes = model::configTimes(refNode);

  for (const Row& row : rows) {
    sim::Simulator sim;
    xd1::NodeConfig cfg;
    cfg.layout = row.layout;
    const xd1::Node node{sim, cfg};
    const model::ConfigTimes times = model::configTimes(node);

    const util::Bytes bytes = row.full ? times.fullBytes : times.partialBytes;
    const util::Time est = row.full ? times.fullEstimated : times.partialEstimated;
    const util::Time meas = row.full ? times.fullMeasured : times.partialMeasured;
    const double xEst = est.toSeconds() / refTimes.fullEstimated.toSeconds();
    const double xMeas = meas.toSeconds() / refTimes.fullMeasured.toSeconds();

    table.row()
        .cell(row.name)
        .cell(bytes.count())
        .cell(util::formatDouble(row.paperBytes, 8))
        .cell(util::formatDouble(est.toMilliseconds(), 4))
        .cell(util::formatDouble(row.paperEstMs, 4))
        .cell(util::formatDouble(meas.toMilliseconds(), 6))
        .cell(util::formatDouble(row.paperMeasMs, 6))
        .cell(util::formatDouble(xEst, 3))
        .cell(util::formatDouble(xMeas, 3));
  }
  return table;
}

std::vector<Fig9Point> makeFig9(const Fig9Options& options) {
  const prof::Scope sweepScope{options.profiler, "fig9.sweep"};
  const auto grid = logGrid(options.xTaskLo, options.xTaskHi, options.points);
  const auto registry = tasks::makePaperFunctions();

  // Per-point PRTR timelines, collected only when a trace is requested.
  // parallelMap stores by index, so the vector fills deterministically.
  std::vector<sim::Timeline> pointTimelines(
      options.trace != nullptr ? grid.size() : 0);

  // Reference node for calibration queries (no simulation happens on it).
  sim::Simulator refSim;
  xd1::NodeConfig refCfg;
  refCfg.layout = xd1::Layout::kDualPrr;
  const xd1::Node refNode{refSim, refCfg};
  const model::ConfigTimes times = model::configTimes(refNode);
  const util::Time tFrtr = times.full(options.basis);
  const tasks::HwFunction& fn = registry.byName("median");

  auto points = exec::parallelMap(
      grid,
      [&](const double& xTask) {
        const prof::Scope pointScope{options.profiler, "fig9.point"};
        // parallelMap passes a reference into `grid`, so the element address
        // recovers this point's index for the by-index timeline slot.
        const std::size_t index =
            static_cast<std::size_t>(&xTask - grid.data());
        Fig9Point point;
        point.xTask = xTask;
        point.dataBytes = model::bytesForTaskTime(
            refNode, fn, util::Time::seconds(xTask * tFrtr.toSeconds()));

        // The paper's experimental setting: dual PRR, always reconfigure
        // (H = 0), queue look-ahead so configurations overlap execution.
        runtime::ScenarioOptions so;
        so.layout = xd1::Layout::kDualPrr;
        so.basis = options.basis;
        so.tControl = util::Time::microseconds(10);
        so.forceMiss = true;
        so.prepare = runtime::PrepareSource::kQueue;
        so.artifacts = options.artifacts;
        so.hooks.profiler = options.profiler;
        so.hooks.shardedMetrics = options.metrics;
        if (options.trace != nullptr) {
          so.hooks.timeline = &pointTimelines[index];
        }
        const auto workload = tasks::makeRoundRobinWorkload(
            registry, options.nCalls, point.dataBytes);
        const runtime::ScenarioResult result =
            runtime::runScenario(registry, workload, so);
        if (options.metrics != nullptr) {
          static const obs::CounterId kPoints =
              obs::MetricTable::global().counter("fig9.points_computed");
          options.metrics->local().add(kPoints);
        }

        point.simSpeedup = result.speedup;
        point.modelSpeedup = result.modelSpeedup;
        model::Params asymptotic = result.modelParams;
        point.modelAsymptote = model::asymptoticSpeedup(asymptotic);
        return point;
      },
      exec::ForOptions{.threads = options.threads});

  if (options.trace != nullptr) {
    for (std::size_t i = 0; i < pointTimelines.size(); ++i) {
      if (pointTimelines[i].empty()) continue;
      const std::string process =
          "fig9[" + std::to_string(i) + "] x=" +
          util::formatDouble(points[i].xTask, 4);
      options.trace->add(process, pointTimelines[i]);
      options.trace->addCounters(
          process, prof::sampleTimelineCounters(pointTimelines[i]));
    }
  }
  return points;
}

util::Table fig9Table(const std::vector<Fig9Point>& points) {
  util::Table table{{"X_task", "data", "S (simulated)", "S (model, eq.6)",
                     "S_inf (eq.7)"}};
  for (const Fig9Point& p : points) {
    table.row()
        .cell(util::formatDouble(p.xTask, 4))
        .cell(p.dataBytes.toString())
        .cell(util::formatDouble(p.simSpeedup, 4))
        .cell(util::formatDouble(p.modelSpeedup, 4))
        .cell(util::formatDouble(p.modelAsymptote, 4));
  }
  return table;
}

std::string fig9Plot(const std::vector<Fig9Point>& points,
                     const std::string& title) {
  util::Series sim{"simulated", {}, {}};
  util::Series modelSeries{"model eq.6", {}, {}};
  util::Series asymptote{"model eq.7 (n->inf)", {}, {}};
  for (const Fig9Point& p : points) {
    sim.x.push_back(p.xTask);
    sim.y.push_back(p.simSpeedup);
    modelSeries.x.push_back(p.xTask);
    modelSeries.y.push_back(p.modelSpeedup);
    asymptote.x.push_back(p.xTask);
    asymptote.y.push_back(p.modelAsymptote);
  }
  util::PlotOptions po;
  po.logX = true;
  po.logY = true;
  po.xLabel = "X_task (task time / full configuration time)";
  po.yLabel = "speedup S over FRTR";
  po.title = title;
  return util::renderAsciiPlot({sim, modelSeries, asymptote}, po);
}

std::vector<util::Series> makeFig5Series(double xPrtr,
                                         const std::vector<double>& hitRatios,
                                         std::size_t points, double xTaskLo,
                                         double xTaskHi, std::size_t threads,
                                         obs::ShardedRegistry* metrics) {
  const auto grid = logGrid(xTaskLo, xTaskHi, points);
  return exec::parallelMap(
      hitRatios,
      [&](double h) {
        util::Series s{"H=" + util::formatDouble(h, 3), {}, {}};
        for (const double xTask : grid) {
          s.x.push_back(xTask);
          s.y.push_back(model::idealAsymptote(xTask, xPrtr, h));
        }
        if (metrics != nullptr) {
          static const struct {
            obs::CounterId series, points;
          } kIds{obs::MetricTable::global().counter("fig5.series_computed"),
                 obs::MetricTable::global().counter("fig5.points_computed")};
          obs::Registry& shard = metrics->local();
          shard.add(kIds.series);
          shard.add(kIds.points, s.y.size());
        }
        return s;
      },
      exec::ForOptions{.threads = threads});
}

}  // namespace prtr::analysis
