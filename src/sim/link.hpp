#pragma once
/// \file link.hpp
/// A simplex communication link with finite bandwidth, modelled as a
/// serially-reusable resource: one transfer occupies the link for
/// latency + size/rate. Used for the XD1 RapidArray/HyperTransport channels
/// (one instance per direction — the "dual channel link" of paper §4.1).

#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "util/units.hpp"

namespace prtr::sim {

class SimplexLink;

/// Fault imposed on a single transfer by an attached hook (see src/fault):
/// an extra stall served while holding the link, and/or an abort that burns
/// wire time for `completedBytes` and then rethrows `abort`.
struct TransferFault {
  util::Time stall = util::Time::zero();
  util::Bytes completedBytes{};  ///< only meaningful when `abort` is set
  std::exception_ptr abort{};
};

/// Consulted once per transfer, after the link is acquired. Returning
/// nullopt leaves the transfer untouched.
using TransferFaultHook =
    std::function<std::optional<TransferFault>(const SimplexLink&, util::Bytes)>;

/// One-direction link; transfers serialize FIFO.
class SimplexLink {
 public:
  SimplexLink(Simulator& sim, std::string name, util::DataRate rate,
              util::Time latency = util::Time::zero())
      : sim_(&sim),
        name_(std::move(name)),
        rate_(rate),
        latency_(latency),
        busy_(sim, 1) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] util::DataRate rate() const noexcept { return rate_; }
  [[nodiscard]] util::Time latency() const noexcept { return latency_; }

  /// Time the wire is occupied by a `size`-byte transfer.
  [[nodiscard]] util::Time occupancy(util::Bytes size) const noexcept {
    return latency_ + rate_.transferTime(size);
  }

  /// Coroutine: waits for the link, holds it for `occupancy(size)`.
  [[nodiscard]] Process transfer(util::Bytes size) {
    co_await busy_.acquire();
    ScopedPermit permit{busy_};
    if (faultHook_) {
      if (auto fault = faultHook_(*this, size)) {
        if (fault->stall > util::Time::zero()) {
          co_await sim_->delay(fault->stall);
        }
        if (fault->abort) {
          co_await sim_->delay(occupancy(fault->completedBytes));
          totalBytes_ += fault->completedBytes;
          std::rethrow_exception(fault->abort);
        }
      }
    }
    co_await sim_->delay(occupancy(size));
    totalBytes_ += size;
    ++totalTransfers_;
  }

  /// Installs (or clears, with nullptr) the per-transfer fault hook.
  void setFaultHook(TransferFaultHook hook) { faultHook_ = std::move(hook); }

  [[nodiscard]] util::Bytes totalBytes() const noexcept { return totalBytes_; }
  [[nodiscard]] std::uint64_t totalTransfers() const noexcept {
    return totalTransfers_;
  }

 private:
  Simulator* sim_;
  std::string name_;
  util::DataRate rate_;
  util::Time latency_;
  Semaphore busy_;
  TransferFaultHook faultHook_{};
  util::Bytes totalBytes_{};
  std::uint64_t totalTransfers_ = 0;
};

}  // namespace prtr::sim
