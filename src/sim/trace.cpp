#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace prtr::sim {

void Timeline::record(Span span) {
  util::require(span.end >= span.start, "Timeline: span ends before it starts");
  spans_.push_back(std::move(span));
}

void Timeline::record(const std::string& lane, const std::string& label,
                      char glyph, util::Time start, util::Time end) {
  record(Span{lane, label, glyph, start, end});
}

util::Time Timeline::laneBusy(const std::string& lane) const noexcept {
  util::Time total;
  for (const Span& s : spans_) {
    if (s.lane == lane) total += s.end - s.start;
  }
  return total;
}

util::Time Timeline::horizon() const noexcept {
  util::Time latest;
  for (const Span& s : spans_) latest = std::max(latest, s.end);
  return latest;
}

std::string Timeline::renderGantt(int width) const {
  util::require(width >= 20, "Timeline: Gantt width too small");
  if (spans_.empty()) return "(empty timeline)\n";

  std::vector<std::string> laneOrder;
  for (const Span& s : spans_) {
    if (std::find(laneOrder.begin(), laneOrder.end(), s.lane) == laneOrder.end()) {
      laneOrder.push_back(s.lane);
    }
  }
  std::size_t laneWidth = 0;
  for (const auto& lane : laneOrder) laneWidth = std::max(laneWidth, lane.size());

  const util::Time end = horizon();
  const double endSec = std::max(end.toSeconds(), 1e-15);
  const auto cols = static_cast<std::size_t>(width);
  auto column = [&](util::Time t) {
    const double frac = t.toSeconds() / endSec;
    return std::min(cols - 1,
                    static_cast<std::size_t>(frac * static_cast<double>(cols)));
  };

  std::ostringstream os;
  std::map<char, std::set<std::string>> legend;
  for (const auto& lane : laneOrder) {
    std::string row(cols, '.');
    for (const Span& s : spans_) {
      if (s.lane != lane) continue;
      const std::size_t a = column(s.start);
      const std::size_t b = std::max(a, column(s.end));
      for (std::size_t c = a; c <= b && c < cols; ++c) row[c] = s.glyph;
      legend[s.glyph].insert(s.label);
    }
    os << lane << std::string(laneWidth - lane.size(), ' ') << " |" << row << "|\n";
  }
  os << std::string(laneWidth, ' ') << " 0" << std::string(cols - 1, ' ')
     << end.toString() << '\n';
  for (const auto& [glyph, labels] : legend) {
    os << "  [" << glyph << "]";
    for (const auto& label : labels) os << ' ' << label;
    os << '\n';
  }
  return os.str();
}

}  // namespace prtr::sim
