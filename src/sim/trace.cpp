#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace prtr::sim {

LaneId Timeline::lane(std::string_view name) {
  const LaneId id = symbols_.lane(name);
  if (laneBusyPs_.size() < symbols_.laneCount()) {
    laneBusyPs_.resize(symbols_.laneCount(), 0);
  }
  return id;
}

LabelId Timeline::label(std::string_view name) { return symbols_.label(name); }

void Timeline::record(LaneId lane, LabelId label, char glyph, util::Time start,
                      util::Time end) {
  util::require(end >= start, "Timeline: span ends before it starts");
  util::require(lane.index() < laneBusyPs_.size() &&
                    label.index() < symbols_.labelCount(),
                "Timeline: id from a foreign symbol table");
  if (spans_.size() == spans_.capacity()) {
    spans_.reserve(std::max(kGrowthBatch, spans_.capacity() * 2));
  }
  spans_.push_back(Span{lane, label, glyph, start, end});
  laneBusyPs_[lane.index()] += (end - start).ps();
  horizonPs_ = std::max(horizonPs_, end.ps());
}

void Timeline::clear() noexcept {
  spans_.clear();
  std::fill(laneBusyPs_.begin(), laneBusyPs_.end(), 0);
  horizonPs_ = 0;
}

util::Time Timeline::laneBusy(LaneId lane) const noexcept {
  if (!lane.valid() || lane.index() >= laneBusyPs_.size()) {
    return util::Time::zero();
  }
  return util::Time::picoseconds(laneBusyPs_[lane.index()]);
}

util::Time Timeline::laneBusy(std::string_view lane) const noexcept {
  return laneBusy(symbols_.findLane(lane));
}

std::vector<NamedSpan> Timeline::materialize() const {
  std::vector<NamedSpan> out;
  out.reserve(spans_.size());
  for (const Span& s : spans_) {
    out.push_back(NamedSpan{symbols_.laneName(s.lane),
                            symbols_.labelName(s.label), s.glyph, s.start,
                            s.end});
  }
  return out;
}

std::string Timeline::renderGantt(int width) const {
  util::require(width >= 20, "Timeline: Gantt width too small");
  if (spans_.empty()) return "(empty timeline)\n";

  std::vector<LaneId> laneOrder;
  for (const Span& s : spans_) {
    if (std::find(laneOrder.begin(), laneOrder.end(), s.lane) ==
        laneOrder.end()) {
      laneOrder.push_back(s.lane);
    }
  }
  std::size_t laneWidth = 0;
  for (const LaneId lane : laneOrder) {
    laneWidth = std::max(laneWidth, symbols_.laneName(lane).size());
  }

  const util::Time end = horizon();
  const double endSec = std::max(end.toSeconds(), 1e-15);
  const auto cols = static_cast<std::size_t>(width);
  auto column = [&](util::Time t) {
    const double frac = t.toSeconds() / endSec;
    return std::min(cols - 1,
                    static_cast<std::size_t>(frac * static_cast<double>(cols)));
  };

  std::ostringstream os;
  std::map<char, std::set<std::string>> legend;
  for (const LaneId lane : laneOrder) {
    const std::string& laneName = symbols_.laneName(lane);
    std::string row(cols, '.');
    for (const Span& s : spans_) {
      if (!(s.lane == lane)) continue;
      const std::size_t a = column(s.start);
      const std::size_t b = std::max(a, column(s.end));
      for (std::size_t c = a; c <= b && c < cols; ++c) row[c] = s.glyph;
      legend[s.glyph].insert(symbols_.labelName(s.label));
    }
    os << laneName << std::string(laneWidth - laneName.size(), ' ') << " |"
       << row << "|\n";
  }
  os << std::string(laneWidth, ' ') << " 0" << std::string(cols - 1, ' ')
     << end.toString() << '\n';
  for (const auto& [glyph, labels] : legend) {
    os << "  [" << glyph << "]";
    for (const auto& label : labels) os << ' ' << label;
    os << '\n';
  }
  return os.str();
}

}  // namespace prtr::sim
