#pragma once
/// \file sync.hpp
/// Synchronization primitives for simulator processes: Condition (broadcast
/// event), Semaphore (counting resource), and WaitGroup (join N processes).
/// All wake-ups are scheduled through the simulator at the current time, so
/// notifiers never run waiter code inline.

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/fifo.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace prtr::sim {

/// Broadcast condition: processes wait; notifyAll wakes every current waiter.
/// There is no predicate — callers re-check state after waking, as with a
/// condition variable.
class Condition {
 public:
  explicit Condition(Simulator& sim) noexcept : sim_(&sim) {}

  /// Awaitable that suspends until the next notifyAll().
  [[nodiscard]] auto wait() noexcept {
    struct Awaiter {
      Condition* cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cond->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Wakes all current waiters (scheduled at the current simulation time).
  void notifyAll() {
    for (auto handle : waiters_) sim_->scheduleAfter(util::Time::zero(), handle);
    waiters_.clear();
  }

  [[nodiscard]] std::size_t waiterCount() const noexcept { return waiters_.size(); }

  /// Registers an already-suspended coroutine as a waiter (used by
  /// composite primitives such as WaitGroup).
  void addWaiter(std::coroutine_handle<> handle) { waiters_.push_back(handle); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore; acquire suspends when no permits are available.
/// Permits released while waiters exist transfer directly (FIFO fairness).
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial) : sim_(&sim), count_(initial) {
    util::require(initial >= 0, "Semaphore: negative initial count");
  }

  [[nodiscard]] auto acquire() noexcept {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      sim_->scheduleAfter(util::Time::zero(), waiters_.pop());
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::int64_t available() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiterCount() const noexcept { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::int64_t count_;
  detail::SmallFifo<std::coroutine_handle<>> waiters_;
};

/// RAII permit holder for Semaphore within one coroutine scope.
class ScopedPermit {
 public:
  explicit ScopedPermit(Semaphore& sem) noexcept : sem_(&sem) {}
  ScopedPermit(const ScopedPermit&) = delete;
  ScopedPermit& operator=(const ScopedPermit&) = delete;
  ~ScopedPermit() { sem_->release(); }

 private:
  Semaphore* sem_;
};

/// Join-counter: `add` before spawning work, workers call `done`, a waiter
/// suspends in `wait` until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) noexcept : cond_(sim) {}

  void add(std::int64_t n = 1) noexcept { pending_ += n; }

  void done() {
    util::require(pending_ > 0, "WaitGroup: done() without matching add()");
    if (--pending_ == 0) cond_.notifyAll();
  }

  /// Process-side: co_await wg.wait() until all added work completes.
  [[nodiscard]] auto wait() noexcept {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->pending_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { wg->cond_.addWaiter(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  [[nodiscard]] std::int64_t pending() const noexcept { return pending_; }

 private:
  Condition cond_;
  std::int64_t pending_ = 0;
};

}  // namespace prtr::sim
