#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::sim {
namespace {

/// std::push_heap-style comparator that yields a MIN-heap on Event::before.
struct After {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return b.before(a);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// BinaryHeapQueue
// ---------------------------------------------------------------------------

void BinaryHeapQueue::push(Event event) {
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), After{});
}

Event BinaryHeapQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), After{});
  const Event event = heap_.back();
  heap_.pop_back();
  return event;
}

std::int64_t BinaryHeapQueue::peekTimePs() const { return heap_.front().timePs; }

// ---------------------------------------------------------------------------
// CalendarQueue
// ---------------------------------------------------------------------------

CalendarQueue::CalendarQueue() = default;

void CalendarQueue::push(Event event) {
  // The simulator never schedules into the past, and windowStartPs_ never
  // passes the time of the event being executed, so event.timePs >=
  // windowStartPs_ holds here and the ring mapping below is unique.
  if (event.timePs < windowEndPs()) {
    const std::size_t bucket = bucketOf(event.timePs);
    buckets_[bucket].push_back(event);
    if (bucket == cursor_ && cursorActive_) {
      std::push_heap(buckets_[bucket].begin(), buckets_[bucket].end(), After{});
    }
    ++inRing_;
  } else {
    ladder_.push_back(event);
    std::push_heap(ladder_.begin(), ladder_.end(), After{});
  }
  ++size_;
}

void CalendarQueue::advanceToPending() const {
  if (inRing_ == 0) {
    // Ring drained: jump the window to the ladder's minimum.
    const std::int64_t minPs = ladder_.front().timePs;
    windowStartPs_ = (minPs >> kBucketWidthShift) << kBucketWidthShift;
    cursor_ = bucketOf(minPs);
    cursorActive_ = false;
    while (!ladder_.empty() && ladder_.front().timePs < windowEndPs()) {
      std::pop_heap(ladder_.begin(), ladder_.end(), After{});
      const Event event = ladder_.back();
      ladder_.pop_back();
      buckets_[bucketOf(event.timePs)].push_back(event);
      ++inRing_;
    }
  }
  while (buckets_[cursor_].empty()) {
    // Step one bucket: the vacated slot becomes the farthest-future slot of
    // the advanced window, so ladder events that just entered the window
    // land exactly there (invariant: the ring covers [start, end) and the
    // ladder everything at or past end).
    cursor_ = (cursor_ + 1) & (kBuckets - 1);
    windowStartPs_ += kBucketWidthPs;
    cursorActive_ = false;
    while (!ladder_.empty() && ladder_.front().timePs < windowEndPs()) {
      std::pop_heap(ladder_.begin(), ladder_.end(), After{});
      const Event event = ladder_.back();
      ladder_.pop_back();
      buckets_[bucketOf(event.timePs)].push_back(event);
      ++inRing_;
    }
  }
}

void CalendarQueue::activateCursorBucket() const {
  if (cursorActive_) return;
  std::make_heap(buckets_[cursor_].begin(), buckets_[cursor_].end(), After{});
  cursorActive_ = true;
}

Event CalendarQueue::pop() {
  advanceToPending();
  activateCursorBucket();
  std::vector<Event>& bucket = buckets_[cursor_];
  std::pop_heap(bucket.begin(), bucket.end(), After{});
  const Event event = bucket.back();
  bucket.pop_back();
  --inRing_;
  --size_;
  return event;
}

std::int64_t CalendarQueue::peekTimePs() const {
  advanceToPending();
  // The cursor bucket covers the earliest alive time range and the ladder
  // holds only later events, so its minimum is the global minimum.
  activateCursorBucket();
  return buckets_[cursor_].front().timePs;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

const char* toString(QueueKind kind) noexcept {
  switch (kind) {
    case QueueKind::kCalendar: return "calendar";
    case QueueKind::kBinaryHeap: return "binary-heap";
  }
  return "?";
}

std::unique_ptr<EventQueue> makeEventQueue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kCalendar: return std::make_unique<CalendarQueue>();
    case QueueKind::kBinaryHeap: return std::make_unique<BinaryHeapQueue>();
  }
  throw util::DomainError{"makeEventQueue: unknown queue kind"};
}

}  // namespace prtr::sim
