#pragma once
/// \file trace.hpp
/// Timeline tracing: records named spans on named lanes and renders an
/// ASCII Gantt chart. Used to reproduce the execution profiles of the
/// paper's Figures 2-4 (task anatomy, FRTR timeline, PRTR hit/miss
/// timelines) directly from simulator activity.

#include <cstddef>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace prtr::sim {

/// One traced activity interval.
struct Span {
  std::string lane;      ///< e.g. "PRR0", "config-port", "HT-in"
  std::string label;     ///< e.g. "config(sobel)", "compute", "data-in"
  char glyph = '#';      ///< fill character in the Gantt rendering
  util::Time start;
  util::Time end;
};

/// Collects spans; processes call `begin`/`endSpan` or record complete spans.
class Timeline {
 public:
  /// Records a complete span.
  void record(Span span);

  /// Convenience: records [start, end) on `lane` with `label`.
  void record(const std::string& lane, const std::string& label, char glyph,
              util::Time start, util::Time end);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }
  void clear() noexcept { spans_.clear(); }

  /// Total busy time on one lane (sum of span lengths; overlaps not merged).
  [[nodiscard]] util::Time laneBusy(const std::string& lane) const noexcept;

  /// Latest end time across all spans.
  [[nodiscard]] util::Time horizon() const noexcept;

  /// Renders an ASCII Gantt: one row per lane (in first-seen order), time
  /// scaled to `width` columns; a legend lists span labels with glyphs.
  [[nodiscard]] std::string renderGantt(int width = 100) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace prtr::sim
