#pragma once
/// \file trace.hpp
/// Timeline tracing: records spans on lanes and renders an ASCII Gantt
/// chart. Used to reproduce the execution profiles of the paper's Figures
/// 2-4 (task anatomy, FRTR timeline, PRTR hit/miss timelines) directly from
/// simulator activity.
///
/// The recording hot path is id-based: lanes and labels are interned once
/// through the timeline's SymbolTable (see symbols.hpp) and `record` is an
/// append of one 32-byte POD into a flat arena with batched growth, plus
/// O(1) updates of the per-lane busy accumulators and the running horizon.
/// Strings materialize only at render/export boundaries (renderGantt,
/// materialize(), the obs Chrome-trace writer).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/symbols.hpp"
#include "util/units.hpp"

namespace prtr::sim {

/// One traced activity interval. POD; the lane/label ids resolve through
/// the SymbolTable of the Timeline that recorded it.
struct Span {
  LaneId lane;       ///< e.g. "PRR0", "config", "HT-in" (interned)
  LabelId label;     ///< e.g. "partial(sobel)", "compute" (interned)
  char glyph = '#';  ///< fill character in the Gantt rendering
  util::Time start;
  util::Time end;
};

/// A span with its names materialized; the export/verify boundary type.
struct NamedSpan {
  std::string lane;
  std::string label;
  char glyph = '#';
  util::Time start;
  util::Time end;
};

/// Collects spans. Recorders intern their lane/label names once (typically
/// at construction) and record by id. Not thread-safe; one timeline per
/// recording simulator.
class Timeline {
 public:
  /// Interns a lane/label name, returning a dense id that stays valid for
  /// the lifetime of this timeline (clear() keeps the symbol table, so
  /// cached ids survive reuse across runs).
  LaneId lane(std::string_view name);
  LabelId label(std::string_view name);

  /// Records [start, end) — the hot path. Ids must come from this
  /// timeline's lane()/label().
  void record(LaneId lane, LabelId label, char glyph, util::Time start,
              util::Time end);

  // The PR 7 string-name record() shim is gone: intern via lane()/label()
  // and record by id. sim_kernel_test.cpp pins the removal.

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }
  [[nodiscard]] const std::string& laneName(LaneId id) const {
    return symbols_.laneName(id);
  }
  [[nodiscard]] const std::string& labelName(LabelId id) const {
    return symbols_.labelName(id);
  }

  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }

  /// Drops recorded spans but keeps interned symbols, so recorder-cached
  /// ids remain valid across runs.
  void clear() noexcept;

  /// Total busy time on one lane (sum of span lengths; overlaps not
  /// merged). O(1): maintained on append.
  [[nodiscard]] util::Time laneBusy(LaneId lane) const noexcept;
  /// Name-based lookup; zero for lanes never recorded on.
  [[nodiscard]] util::Time laneBusy(std::string_view lane) const noexcept;

  /// Latest end time across all spans. O(1): maintained on append.
  [[nodiscard]] util::Time horizon() const noexcept {
    return util::Time::picoseconds(horizonPs_);
  }

  /// Copies the spans out with names attached (export/verify boundary).
  [[nodiscard]] std::vector<NamedSpan> materialize() const;

  /// Renders an ASCII Gantt: one row per lane (in first-seen order), time
  /// scaled to `width` columns; a legend lists span labels with glyphs.
  [[nodiscard]] std::string renderGantt(int width = 100) const;

 private:
  static constexpr std::size_t kGrowthBatch = 256;

  SymbolTable symbols_;
  std::vector<Span> spans_;
  std::vector<std::int64_t> laneBusyPs_;  // indexed by LaneId, grown on intern
  std::int64_t horizonPs_ = 0;
};

}  // namespace prtr::sim
