#include "sim/symbols.hpp"

#include "util/error.hpp"

namespace prtr::sim {

std::uint32_t SymbolTable::intern(Index& index, std::vector<std::string>& names,
                                  std::string_view name) {
  const auto found = index.find(name);
  if (found != index.end()) return found->second;
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  index.emplace(names.back(), id);
  return id;
}

LaneId SymbolTable::lane(std::string_view name) {
  return LaneId{intern(laneIndex_, laneNames_, name)};
}

LabelId SymbolTable::label(std::string_view name) {
  return LabelId{intern(labelIndex_, labelNames_, name)};
}

LaneId SymbolTable::findLane(std::string_view name) const noexcept {
  const auto found = laneIndex_.find(name);
  return found == laneIndex_.end() ? LaneId{} : LaneId{found->second};
}

const std::string& SymbolTable::laneName(LaneId id) const {
  util::require(id.valid() && id.index() < laneNames_.size(),
                "SymbolTable: unknown lane id");
  return laneNames_[id.index()];
}

const std::string& SymbolTable::labelName(LabelId id) const {
  util::require(id.valid() && id.index() < labelNames_.size(),
                "SymbolTable: unknown label id");
  return labelNames_[id.index()];
}

}  // namespace prtr::sim
