#pragma once
/// \file symbols.hpp
/// Interned timeline symbols.
///
/// The tracing hot path records millions of spans per sweep; carrying two
/// heap-allocated strings per span dominated the recorder's cost. Lanes and
/// labels are therefore interned once into a per-timeline SymbolTable and
/// spans carry 4-byte ids. Strings materialize only at render/export
/// boundaries (Gantt renderer, Chrome-trace export, verify rules).
///
/// Ids are dense indices in interning order, so consumers can build
/// per-lane side tables (`std::vector` indexed by `LaneId::index()`)
/// instead of hashing strings per span.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace prtr::sim {

/// Strong typedef for an interned lane name ("PRR0", "config", "HT-in").
struct LaneId {
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFFu;
  std::uint32_t value = kInvalid;

  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }
  friend constexpr bool operator==(LaneId, LaneId) noexcept = default;
};

/// Strong typedef for an interned span label ("compute", "partial(sobel)").
struct LabelId {
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFFu;
  std::uint32_t value = kInvalid;

  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }
  friend constexpr bool operator==(LabelId, LabelId) noexcept = default;
};

/// Two independent intern pools (lanes and labels), densely indexed in
/// interning order. Copyable and movable; copies re-intern nothing (the
/// index map is rebuilt over the copied names). Not thread-safe, like the
/// Timeline that owns it.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first sight.
  LaneId lane(std::string_view name);
  LabelId label(std::string_view name);

  /// Lookup without interning; invalid id if `name` was never interned.
  [[nodiscard]] LaneId findLane(std::string_view name) const noexcept;

  [[nodiscard]] const std::string& laneName(LaneId id) const;
  [[nodiscard]] const std::string& labelName(LabelId id) const;

  /// Lane/label names in interning order (index == id value).
  [[nodiscard]] const std::vector<std::string>& laneNames() const noexcept {
    return laneNames_;
  }
  [[nodiscard]] const std::vector<std::string>& labelNames() const noexcept {
    return labelNames_;
  }

  [[nodiscard]] std::size_t laneCount() const noexcept { return laneNames_.size(); }
  [[nodiscard]] std::size_t labelCount() const noexcept { return labelNames_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Index =
      std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>>;

  static std::uint32_t intern(Index& index, std::vector<std::string>& names,
                              std::string_view name);

  Index laneIndex_;
  Index labelIndex_;
  std::vector<std::string> laneNames_;
  std::vector<std::string> labelNames_;
};

}  // namespace prtr::sim
