#pragma once
/// \file fifo.hpp
/// Small vector-backed FIFO for simulator primitives.
///
/// Channel and Semaphore used std::deque for buffered values and blocked
/// waiters; a deque allocates its block map up front, and the ICAP pipeline
/// constructs a fresh Channel per partial load, so those allocations were a
/// measurable slice of kernel time. This FIFO keeps elements in one vector
/// with a head cursor: a single allocation that is reused for the lifetime
/// of the primitive, compacted opportunistically when it drains.

#include <cstddef>
#include <utility>
#include <vector>

namespace prtr::sim::detail {

template <typename T>
class SmallFifo {
 public:
  [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return items_.size() - head_;
  }
  [[nodiscard]] T& front() noexcept { return items_[head_]; }

  void push(T value) { items_.push_back(std::move(value)); }

  T pop() {
    T value = std::move(items_[head_]);
    ++head_;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= items_.size()) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return value;
  }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
};

}  // namespace prtr::sim::detail
