#include "sim/simulator.hpp"

namespace prtr::sim {

void Simulator::scheduleAt(util::Time t, std::coroutine_handle<> handle) {
  if (t < now_) {
    throw util::SimulationError{"Simulator: event scheduled in the past"};
  }
  queue_.push(Entry{t.ps(), seq_++, handle});
}

void Simulator::spawn(Process process) {
  if (!process.valid()) {
    throw util::SimulationError{"Simulator::spawn: invalid process"};
  }
  scheduleAt(now_, process.startDetached());
  roots_.push_back(std::move(process));
}

void Simulator::step(const Entry& entry) {
  now_ = util::Time::picoseconds(entry.timePs);
  ++events_;
  entry.handle.resume();
}

void Simulator::rethrowRootFailures() {
  // Finished roots are also reclaimed here so that long simulations with
  // many short-lived spawned processes do not accumulate dead frames.
  for (std::size_t i = 0; i < roots_.size();) {
    if (roots_[i].finished()) {
      if (auto failure = roots_[i].failure()) std::rethrow_exception(failure);
      roots_[i] = std::move(roots_.back());
      roots_.pop_back();
    } else {
      ++i;
    }
  }
}

void Simulator::run() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    step(entry);
    if ((events_ & 0xFFFu) == 0 && roots_.size() > 64) rethrowRootFailures();
  }
  rethrowRootFailures();
}

util::Time Simulator::runUntil(util::Time deadline) {
  while (!queue_.empty() && util::Time::picoseconds(queue_.top().timePs) <= deadline) {
    const Entry entry = queue_.top();
    queue_.pop();
    step(entry);
    if ((events_ & 0xFFFu) == 0 && roots_.size() > 64) rethrowRootFailures();
  }
  rethrowRootFailures();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace prtr::sim
