#include "sim/simulator.hpp"

#include <atomic>

namespace prtr::sim {
namespace {

std::atomic<QueueKind>& defaultKind() noexcept {
  static std::atomic<QueueKind> kind{QueueKind::kCalendar};
  return kind;
}

}  // namespace

QueueKind Simulator::defaultQueueKind() noexcept {
  return defaultKind().load(std::memory_order_relaxed);
}

void Simulator::setDefaultQueueKind(QueueKind kind) noexcept {
  defaultKind().store(kind, std::memory_order_relaxed);
}

void Simulator::spawn(Process process) {
  if (!process.valid()) {
    throw util::SimulationError{"Simulator::spawn: invalid process"};
  }
  scheduleAt(now_, process.startDetached());
  roots_.push_back(std::move(process));
}

void Simulator::step(const Event& event) {
  now_ = util::Time::picoseconds(event.timePs);
  ++events_;
  event.handle.resume();
}

void Simulator::rethrowRootFailures() {
  // Finished roots are also reclaimed here so that long simulations with
  // many short-lived spawned processes do not accumulate dead frames.
  for (std::size_t i = 0; i < roots_.size();) {
    if (roots_[i].finished()) {
      if (auto failure = roots_[i].failure()) std::rethrow_exception(failure);
      roots_[i] = std::move(roots_.back());
      roots_.pop_back();
    } else {
      ++i;
    }
  }
}

void Simulator::run() {
  EventQueue& queue = *queue_;
  while (!queue.empty()) {
    step(queue.pop());
    if ((events_ & 0xFFFu) == 0 && roots_.size() > 64) rethrowRootFailures();
  }
  rethrowRootFailures();
}

util::Time Simulator::runUntil(util::Time deadline) {
  EventQueue& queue = *queue_;
  while (!queue.empty() &&
         util::Time::picoseconds(queue.peekTimePs()) <= deadline) {
    step(queue.pop());
    if ((events_ & 0xFFFu) == 0 && roots_.size() > 64) rethrowRootFailures();
  }
  rethrowRootFailures();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace prtr::sim
