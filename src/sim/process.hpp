#pragma once
/// \file process.hpp
/// Coroutine process type for the discrete-event simulator.
///
/// A Process starts suspended. It begins running either when a parent
/// process `co_await`s it (structured concurrency: the parent resumes when
/// the child finishes) or when it is handed to Simulator::spawn (detached
/// root; the simulator owns the frame and resumes it at the spawn time).
/// Exceptions thrown inside a child propagate to the awaiting parent;
/// exceptions in roots are rethrown from Simulator::run().

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/arena.hpp"

namespace prtr::sim {

class Simulator;

/// Eagerly-suspended coroutine; see file comment for the lifetime contract.
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation{};
    std::exception_ptr exception{};
    bool finished = false;
    bool started = false;

    Process get_return_object() { return Process{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) const noexcept {
        promise_type& p = h.promise();
        p.finished = true;
        return p.continuation ? p.continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    // Frames are recycled through the thread-local arena (see arena.hpp):
    // model code spawns ~200 short-lived coroutines per partial load, and
    // the general allocator was the kernel's hottest path.
    static void* operator new(std::size_t size) {
      return detail::frameArena().allocate(size);
    }
    static void operator delete(void* ptr) noexcept {
      detail::frameArena().release(ptr);
    }
    static void operator delete(void* ptr, std::size_t) noexcept {
      detail::frameArena().release(ptr);
    }
  };

  Process() noexcept = default;
  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(handle_); }
  [[nodiscard]] bool finished() const noexcept {
    return handle_ && handle_.promise().finished;
  }

  // --- Awaiting a process runs it to completion, then resumes the parent ---
  bool await_ready() const noexcept { return !handle_ || handle_.promise().finished; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    promise_type& p = handle_.promise();
    p.continuation = parent;
    if (!p.started) {
      p.started = true;
      return handle_;  // symmetric transfer: start the child immediately
    }
    return std::noop_coroutine();  // already running (spawned); just wait
  }
  void await_resume() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  friend class Simulator;

  explicit Process(Handle handle) noexcept : handle_(handle) {}

  /// Marks the process as started and releases the handle to the caller
  /// (used by Simulator::spawn, which keeps the owning Process object).
  Handle startDetached() noexcept {
    handle_.promise().started = true;
    return handle_;
  }

  [[nodiscard]] std::exception_ptr failure() const noexcept {
    return handle_ ? handle_.promise().exception : nullptr;
  }

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

}  // namespace prtr::sim
