#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// The kernel keeps a min-heap of (time, sequence) ordered events whose
/// payloads are coroutine handles. Model code is written as C++20 coroutines
/// (see process.hpp) that `co_await` delays, synchronization primitives, and
/// child processes. Time is integer picoseconds (util::Time), so event order
/// is exact and runs are bit-reproducible.

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/process.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace prtr::sim {

/// The event-driven simulator. Not thread-safe: one simulator per thread;
/// parameter sweeps parallelize by running independent simulators.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] util::Time now() const noexcept { return now_; }

  /// Schedules `handle` to resume at absolute time `t` (>= now).
  void scheduleAt(util::Time t, std::coroutine_handle<> handle);

  /// Schedules `handle` to resume after `delay`.
  void scheduleAfter(util::Time delay, std::coroutine_handle<> handle) {
    scheduleAt(now_ + delay, handle);
  }

  /// Takes ownership of a root process and schedules its first resume at the
  /// current time. The process runs concurrently with other roots.
  void spawn(Process process);

  /// Runs until no events remain. Rethrows the first exception raised by a
  /// root process (child-process exceptions propagate to their parents).
  void run();

  /// Runs events with timestamp <= `deadline`; returns the new now().
  util::Time runUntil(util::Time deadline);

  /// Awaitable that suspends the calling process for `delay`.
  [[nodiscard]] auto delay(util::Time delayTime) noexcept {
    struct Awaiter {
      Simulator* sim;
      util::Time dt;
      bool await_ready() const noexcept { return dt == util::Time::zero(); }
      void await_suspend(std::coroutine_handle<> h) { sim->scheduleAfter(dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delayTime};
  }

  /// Total coroutine resumptions executed (kernel throughput metric).
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept { return events_; }

  /// Number of root processes that have been spawned.
  [[nodiscard]] std::size_t rootCount() const noexcept { return roots_.size(); }

 private:
  struct Entry {
    std::int64_t timePs;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    friend bool operator>(const Entry& a, const Entry& b) noexcept {
      return a.timePs != b.timePs ? a.timePs > b.timePs : a.seq > b.seq;
    }
  };

  void step(const Entry& entry);
  void rethrowRootFailures();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Process> roots_;
  util::Time now_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace prtr::sim
