#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// The kernel keeps a pending-event set of (time, sequence) ordered events
/// whose payloads are coroutine handles. Model code is written as C++20
/// coroutines (see process.hpp) that `co_await` delays, synchronization
/// primitives, and child processes. Time is integer picoseconds
/// (util::Time), so event order is exact and runs are bit-reproducible.
///
/// The pending set sits behind an EventQueue seam (see event_queue.hpp):
/// the default CalendarQueue is the throughput rewrite, and the original
/// BinaryHeapQueue remains constructible so the schedule explorer can A/B
/// both implementations and prove their pop sequences identical.

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace prtr::sim {

/// The event-driven simulator. Not thread-safe: one simulator per thread;
/// parameter sweeps parallelize by running independent simulators.
class Simulator {
 public:
  /// Builds with the process-wide default queue kind (calendar unless
  /// overridden via setDefaultQueueKind, e.g. for A/B experiments).
  Simulator() : Simulator(defaultQueueKind()) {}
  explicit Simulator(QueueKind kind) : queue_(makeEventQueue(kind)) {}
  /// Takes a caller-built queue (custom implementations, instrumentation).
  explicit Simulator(std::unique_ptr<EventQueue> queue)
      : queue_(std::move(queue)) {
    util::require(queue_ != nullptr, "Simulator: null event queue");
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Queue kind newly-default-constructed simulators use. Not thread-safe;
  /// flip it only from a quiescent process (the schedule explorer does).
  static QueueKind defaultQueueKind() noexcept;
  static void setDefaultQueueKind(QueueKind kind) noexcept;

  /// Implementation tag of this simulator's queue ("calendar", ...).
  [[nodiscard]] const char* queueName() const noexcept {
    return queue_->name();
  }

  /// Current simulated time.
  [[nodiscard]] util::Time now() const noexcept { return now_; }

  /// Schedules `handle` to resume at absolute time `t` (>= now).
  void scheduleAt(util::Time t, std::coroutine_handle<> handle) {
    if (t < now_) {
      throw util::SimulationError{"Simulator: event scheduled in the past"};
    }
    queue_->push(Event{t.ps(), seq_++, handle});
  }

  /// Schedules `handle` to resume after `delay`.
  void scheduleAfter(util::Time delay, std::coroutine_handle<> handle) {
    scheduleAt(now_ + delay, handle);
  }

  /// Takes ownership of a root process and schedules its first resume at the
  /// current time. The process runs concurrently with other roots.
  void spawn(Process process);

  /// Runs until no events remain. Rethrows the first exception raised by a
  /// root process (child-process exceptions propagate to their parents).
  void run();

  /// Runs events with timestamp <= `deadline`; returns the new now().
  util::Time runUntil(util::Time deadline);

  /// Awaitable that suspends the calling process for `delay`.
  [[nodiscard]] auto delay(util::Time delayTime) noexcept {
    struct Awaiter {
      Simulator* sim;
      util::Time dt;
      bool await_ready() const noexcept { return dt == util::Time::zero(); }
      void await_suspend(std::coroutine_handle<> h) { sim->scheduleAfter(dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delayTime};
  }

  /// Total coroutine resumptions executed (kernel throughput metric).
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept { return events_; }

  /// Number of root processes that have been spawned.
  [[nodiscard]] std::size_t rootCount() const noexcept { return roots_.size(); }

 private:
  void step(const Event& event);
  void rethrowRootFailures();

  std::unique_ptr<EventQueue> queue_;
  std::vector<Process> roots_;
  util::Time now_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace prtr::sim
