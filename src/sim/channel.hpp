#pragma once
/// \file channel.hpp
/// Bounded FIFO channel between simulator processes. Models hardware FIFOs
/// (e.g. the BRAM buffer between the HyperTransport link and the ICAP port):
/// `put` suspends when the buffer is full, `get` suspends when it is empty.

#include <coroutine>
#include <optional>
#include <utility>

#include "sim/fifo.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace prtr::sim {

/// Bounded single-simulator channel carrying values of type T.
/// Capacity must be >= 1 (no rendezvous channels).
template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, std::size_t capacity) : sim_(&sim), capacity_(capacity) {
    util::require(capacity >= 1, "Channel: capacity must be >= 1");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Awaitable producing side. Suspends while the buffer is full.
  [[nodiscard]] auto put(T value) noexcept {
    struct Awaiter {
      Channel* ch;
      T value;
      bool await_ready() noexcept {
        if (ch->buffer_.size() < ch->capacity_) {
          ch->commitPut(std::move(value));
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->pendingPuts_.push(PendingPut{h, std::move(value)});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, std::move(value)};
  }

  /// Awaitable consuming side. Suspends while the buffer is empty.
  [[nodiscard]] auto get() noexcept {
    struct Awaiter {
      Channel* ch;
      std::optional<T> slot;
      bool await_ready() noexcept {
        if (!ch->buffer_.empty()) {
          slot = ch->commitGet();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->pendingGets_.push(PendingGet{h, &slot});
      }
      T await_resume() {
        util::require(slot.has_value(), "Channel: get resumed without a value");
        return std::move(*slot);
      }
    };
    return Awaiter{this, std::nullopt};
  }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] std::size_t blockedProducers() const noexcept {
    return pendingPuts_.size();
  }
  [[nodiscard]] std::size_t blockedConsumers() const noexcept {
    return pendingGets_.size();
  }

 private:
  struct PendingPut {
    std::coroutine_handle<> handle;
    T value;
  };
  struct PendingGet {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  /// Inserts a value; if a consumer is blocked, hands the oldest buffered
  /// value over and wakes it.
  void commitPut(T value) {
    buffer_.push(std::move(value));
    drainToConsumers();
  }

  /// Removes the oldest value; if a producer is blocked, admits its value
  /// into the freed slot and wakes it.
  T commitGet() {
    T value = buffer_.pop();
    admitBlockedProducer();
    return value;
  }

  void drainToConsumers() {
    while (!pendingGets_.empty() && !buffer_.empty()) {
      PendingGet waiter = pendingGets_.pop();
      *waiter.slot = buffer_.pop();
      admitBlockedProducer();
      sim_->scheduleAfter(util::Time::zero(), waiter.handle);
    }
  }

  void admitBlockedProducer() {
    if (!pendingPuts_.empty() && buffer_.size() < capacity_) {
      PendingPut producer = pendingPuts_.pop();
      buffer_.push(std::move(producer.value));
      sim_->scheduleAfter(util::Time::zero(), producer.handle);
    }
  }

  Simulator* sim_;
  std::size_t capacity_;
  detail::SmallFifo<T> buffer_;
  detail::SmallFifo<PendingPut> pendingPuts_;
  detail::SmallFifo<PendingGet> pendingGets_;
};

}  // namespace prtr::sim
