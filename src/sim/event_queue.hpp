#pragma once
/// \file event_queue.hpp
/// Pending-event set implementations behind the Simulator's queue seam.
///
/// Both queues order events by exact (timePs, seq) — a total order, so any
/// correct implementation pops the same sequence and simulated output is
/// bit-identical regardless of which one runs. BinaryHeapQueue is the
/// original std::priority_queue kernel, kept for A/B comparison under the
/// schedule explorer; CalendarQueue is the throughput rewrite: a ring of
/// near-future buckets over a fixed time window plus a binary-heap overflow
/// ladder for events beyond it. Bucket vectors retain their capacity across
/// the run, so steady-state push/pop allocates nothing.

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace prtr::sim {

/// One pending resume: a coroutine handle stamped with its absolute time
/// (integer picoseconds) and a schedule sequence number that breaks ties
/// deterministically in schedule order.
struct Event {
  std::int64_t timePs;
  std::uint64_t seq;
  std::coroutine_handle<> handle;

  /// Exact total order: earlier time first, then earlier schedule.
  [[nodiscard]] bool before(const Event& other) const noexcept {
    return timePs != other.timePs ? timePs < other.timePs : seq < other.seq;
  }
};

/// Queue seam. One queue per simulator; not thread-safe.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void push(Event event) = 0;
  /// Removes and returns the minimum event. Precondition: !empty().
  virtual Event pop() = 0;
  /// Time of the minimum event. Precondition: !empty().
  [[nodiscard]] virtual std::int64_t peekTimePs() const = 0;
  [[nodiscard]] virtual bool empty() const noexcept = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  /// Implementation tag ("calendar", "binary-heap") for reports and A/B logs.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// The original kernel queue: one std::priority_queue-style binary heap.
class BinaryHeapQueue final : public EventQueue {
 public:
  void push(Event event) override;
  Event pop() override;
  [[nodiscard]] std::int64_t peekTimePs() const override;
  [[nodiscard]] bool empty() const noexcept override { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept override { return heap_.size(); }
  [[nodiscard]] const char* name() const noexcept override { return "binary-heap"; }

 private:
  std::vector<Event> heap_;  // min-heap on Event::before
};

/// Calendar queue: `kBuckets` bucket ring over a near-future window of
/// `kBuckets * kBucketWidthPs`, plus a binary-heap ladder for events past
/// the window. The cursor bucket is kept heap-ordered so same-time pushes
/// (zero-delay wake-ups) interleave exactly as the total order demands;
/// other buckets stay unsorted until the cursor reaches them. When the ring
/// drains, the window jumps to the ladder's minimum and near-future ladder
/// events reseed the ring.
class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(Event event) override;
  Event pop() override;
  [[nodiscard]] std::int64_t peekTimePs() const override;
  [[nodiscard]] bool empty() const noexcept override { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  [[nodiscard]] const char* name() const noexcept override { return "calendar"; }

 private:
  // Geometry: 256 buckets x 2^23 ps (~8.4 us) covers a ~2.1 ms near window —
  // a few partial-reconfiguration loads' worth of chunk events — while task
  // and k-queue lookahead events ride the overflow ladder. Fixed (never
  // adapted), so queue behavior is a pure function of the event sequence.
  static constexpr std::size_t kBuckets = 256;
  static constexpr int kBucketWidthShift = 23;
  static constexpr std::int64_t kBucketWidthPs = std::int64_t{1}
                                                 << kBucketWidthShift;

  [[nodiscard]] std::size_t bucketOf(std::int64_t timePs) const noexcept {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(timePs) >> kBucketWidthShift) &
           (kBuckets - 1);
  }
  [[nodiscard]] std::int64_t windowEndPs() const noexcept {
    return windowStartPs_ + static_cast<std::int64_t>(kBuckets) * kBucketWidthPs;
  }

  /// Advances the cursor to the next non-empty bucket, reseeding from the
  /// ladder when the ring is empty. Precondition: size_ > 0.
  void advanceToPending() const;
  /// Heap-orders the cursor bucket if it is not already.
  void activateCursorBucket() const;

  mutable std::vector<Event> buckets_[kBuckets];
  mutable std::vector<Event> ladder_;  // min-heap on Event::before
  mutable std::int64_t windowStartPs_ = 0;
  mutable std::size_t cursor_ = 0;
  mutable std::size_t inRing_ = 0;   // events currently in bucket vectors
  mutable bool cursorActive_ = false;  // cursor bucket is heap-ordered
  std::size_t size_ = 0;
};

/// Selects which queue a Simulator builds by default.
enum class QueueKind { kCalendar, kBinaryHeap };

[[nodiscard]] const char* toString(QueueKind kind) noexcept;
[[nodiscard]] std::unique_ptr<EventQueue> makeEventQueue(QueueKind kind);

}  // namespace prtr::sim
