#pragma once
/// \file arena.hpp
/// Thread-local free-list arena for coroutine frames.
///
/// Every `co_await link.transfer(...)` and ICAP produce/drain pipeline step
/// allocates a coroutine frame; at ~200 frames per partial load the general
/// allocator dominated kernel time. Frames instead come from a per-thread
/// arena: blocks are carved from large chunks, rounded to a size class, and
/// recycled through intrusive free lists, so steady-state spawn/finish
/// cycles allocate nothing.
///
/// Confinement contract: a frame must be released on the thread that
/// allocated it. The simulator is already single-thread-confined (one
/// Simulator per sweep worker owns every process it runs), so this holds by
/// construction. Chunks live until thread exit; peak usage is a few dozen
/// live frames, so retention is bounded and small.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace prtr::sim::detail {

class FrameArena {
 public:
  void* allocate(std::size_t size) {
    const std::size_t total = size + kHeader;
    const std::size_t cls = (total - 1) / kGranule;  // total > 0 always
    if (cls >= kClasses) {
      auto* base = static_cast<std::byte*>(::operator new(total));
      writeHeader(base, kOversize);
      return base + kHeader;
    }
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      return node;  // node lives in the payload; the header is untouched
    }
    std::byte* base = carve((cls + 1) * kGranule);
    writeHeader(base, static_cast<std::uint64_t>(cls));
    return base + kHeader;
  }

  void release(void* ptr) noexcept {
    if (ptr == nullptr) return;
    auto* base = static_cast<std::byte*>(ptr) - kHeader;
    const std::uint64_t cls = readHeader(base);
    if (cls == kOversize) {
      ::operator delete(base);
      return;
    }
    // The node is stored in the payload, never over the header, so the
    // class written at carve time stays valid across every recycle.
    auto* node = new (ptr) FreeNode{free_[cls]};
    free_[cls] = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // 16-byte header keeps max_align_t alignment for the frame that follows
  // and records the size class so release() needs no size argument.
  static constexpr std::size_t kHeader = alignof(std::max_align_t);
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 64;  // small frames up to 4 KiB
  static constexpr std::size_t kChunkBytes = 256 * 1024;
  static constexpr std::uint64_t kOversize = ~std::uint64_t{0};

  static void writeHeader(std::byte* base, std::uint64_t cls) noexcept {
    *reinterpret_cast<std::uint64_t*>(base) = cls;
  }
  static std::uint64_t readHeader(const std::byte* base) noexcept {
    return *reinterpret_cast<const std::uint64_t*>(base);
  }

  std::byte* carve(std::size_t bytes) {
    if (remaining_ < bytes) {
      chunks_.push_back(std::make_unique<std::byte[]>(kChunkBytes));
      cursor_ = chunks_.back().get();
      remaining_ = kChunkBytes;
    }
    std::byte* block = cursor_;
    cursor_ += bytes;
    remaining_ -= bytes;
    return block;
  }

  FreeNode* free_[kClasses] = {};
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
};

/// The calling thread's frame arena.
inline FrameArena& frameArena() noexcept {
  thread_local FrameArena arena;
  return arena;
}

}  // namespace prtr::sim::detail
