/// \file prtr_lint.cpp
/// prtr-lint — static diagnostics for floorplans, bitstreams, and scenario
/// specs, without running the simulator. Exit code 0 when clean (warnings
/// allowed unless --werror), 1 when any error-severity diagnostic fired,
/// 2 on usage or I/O problems.
///
///   prtr-lint [--json] [--werror] floorplan <single|dual|quad|all>
///   prtr-lint [--json] [--werror] floorplan-spec <file>...
///   prtr-lint [--json] [--werror] bitstream <file> [--device NAME]
///             [--layout single|dual|quad]
///   prtr-lint [--json] [--werror] scenario-spec <file>...
///   prtr-lint [--json] [--werror] fault-spec <file>...
///   prtr-lint [--json] [--werror] fleet-spec <file>...
///   prtr-lint codes [--markdown]
///   prtr-lint demo [--json]
///   prtr-lint --help
///
/// Exit codes (uniform across every mode, asserted by the lint_cli_exit_*
/// tests): 0 when clean — warning-severity findings do not fail the run
/// unless --werror promotes them; 1 when any error-severity diagnostic
/// fired; 2 on usage errors or unreadable inputs.
///
/// The same checkers back fabric::Floorplan, bitstream::parse, and
/// model::Params::validate, so whatever this tool accepts the library
/// accepts, and vice versa.

#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/checks_bitstream.hpp"
#include "analyze/checks_fault.hpp"
#include "analyze/checks_fleet.hpp"
#include "analyze/checks_floorplan.hpp"
#include "analyze/diagnostic.hpp"
#include "analyze/lint.hpp"
#include "analyze/spec.hpp"
#include "bitstream/builder.hpp"
#include "fabric/floorplan.hpp"
#include "util/error.hpp"

namespace {

using namespace prtr;

struct CliOptions {
  bool json = false;
  bool werror = false;
};

int usage() {
  std::cerr
      << "usage: prtr-lint [--json] [--werror] <command> [args]\n"
         "  floorplan <single|dual|quad|all>      lint a built-in layout\n"
         "  floorplan-spec <file>...              lint floorplan spec files\n"
         "  bitstream <file> [--device NAME] [--layout single|dual|quad]\n"
         "  scenario-spec <file>...               lint scenario spec files\n"
         "  fault-spec <file>...                  lint fault-plan spec files\n"
         "  fleet-spec <file>...                  lint fleet spec files\n"
         "  codes [--markdown]                    print the rule reference\n"
         "  demo                                  lint built-in known-bad "
         "artifacts\n"
         "exit codes (every mode, spec files included):\n"
         "  0  clean; warnings do not fail the run unless --werror\n"
         "  1  at least one error-severity diagnostic\n"
         "  2  usage error or unreadable input\n";
  return 2;
}

/// Renders one lint result and folds it into the process exit code.
int report(const std::string& subject, const analyze::DiagnosticSink& sink,
           const CliOptions& cli) {
  if (cli.json) {
    std::cout << "{\"subject\":\"" << analyze::jsonEscape(subject)
              << "\",\"report\":" << sink.toJson() << "}\n";
  } else {
    std::cout << "== " << subject << " ==\n" << sink.toText();
  }
  if (sink.hasErrors()) return 1;
  if (cli.werror && !sink.empty()) return 1;
  return 0;
}

fabric::Floorplan makeLayout(const std::string& name) {
  if (name == "single") return fabric::makeSinglePrrLayout();
  if (name == "dual") return fabric::makeDualPrrLayout();
  if (name == "quad") return fabric::makeQuadPrrLayout();
  throw util::DomainError{"unknown layout '" + name + "'"};
}

int lintBuiltinFloorplans(const std::string& which, const CliOptions& cli) {
  std::vector<std::string> names;
  if (which == "all") {
    names = {"single", "dual", "quad"};
  } else {
    names = {which};
  }
  int exitCode = 0;
  for (const std::string& name : names) {
    const fabric::Floorplan plan = makeLayout(name);
    analyze::LintTargets targets;
    targets.floorplan = &plan;
    exitCode = std::max(exitCode,
                        report("floorplan:" + name, analyze::lintAll(targets),
                               cli));
  }
  return exitCode;
}

/// Shared loop of every spec-file mode, so the exit-code contract cannot
/// drift between them again: unreadable file = 2, otherwise the per-file
/// reports fold through report() identically for all spec kinds.
int lintSpecFiles(
    const std::vector<std::string>& files, const CliOptions& cli,
    const std::function<analyze::DiagnosticSink(std::istream&)>& lintOne) {
  int exitCode = 0;
  for (const std::string& file : files) {
    std::ifstream in{file};
    if (!in) {
      std::cerr << "prtr-lint: cannot open '" << file << "'\n";
      return 2;
    }
    exitCode = std::max(exitCode, report(file, lintOne(in), cli));
  }
  return exitCode;
}

int lintBitstreamFile(const std::string& file, const std::string& deviceName,
                      const std::string& layout, const CliOptions& cli) {
  std::ifstream in{file, std::ios::binary};
  if (!in) {
    std::cerr << "prtr-lint: cannot open '" << file << "'\n";
    return 2;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{}};
  const fabric::Device device = fabric::makeDevice(deviceName);
  analyze::LintTargets targets;
  targets.streamBytes = bytes;
  targets.device = &device;
  if (!layout.empty()) {
    const fabric::Floorplan plan = makeLayout(layout);
    targets.floorplan = &plan;
    return report(file, analyze::lintAll(targets), cli);
  }
  return report(file, analyze::lintAll(targets), cli);
}

/// Built-in known-bad artifacts: one floorplan, one bitstream, and one
/// scenario, each violating several rules. Used by docs, smoke tests, and
/// anyone wanting to see the diagnostics without crafting inputs.
int demo(const CliOptions& cli) {
  int exitCode = 0;

  analyze::FloorplanSpec flawed;
  flawed.deviceName = "xc2vp50";
  flawed.prrs.emplace_back("A", fabric::RegionRole::kPrr, 2, 10);
  flawed.prrs.emplace_back("B", fabric::RegionRole::kPrr, 8, 60);  // overlap+PPC
  flawed.busMacros.push_back(
      fabric::BusMacro{"A", fabric::BusMacro::Direction::kLeftToRight, 8, 5});
  flawed.busMacros.push_back(
      fabric::BusMacro{"ghost", fabric::BusMacro::Direction::kRightToLeft, 8,
                       12});
  exitCode = std::max(
      exitCode,
      report("demo:floorplan", analyze::lintFloorplanSpec(flawed), cli));

  const fabric::Floorplan plan = fabric::makeSinglePrrLayout();
  const bitstream::Builder builder{plan.device()};
  bitstream::Bitstream stream = builder.buildModulePartial(plan.prr(0), 7);
  std::vector<std::uint8_t> corrupted = stream.bytes();
  corrupted[corrupted.size() / 2] ^= 0xFF;  // breaks the CRC
  analyze::LintTargets badStream;
  badStream.streamBytes = corrupted;
  badStream.device = &plan.device();
  exitCode = std::max(
      exitCode, report("demo:bitstream", analyze::lintAll(badStream), cli));

  analyze::ScenarioSpec scenario;
  scenario.params.xTask = 4.0;
  scenario.params.xPrtr = 0.2;
  scenario.speedupTarget = 3.0;  // above the (1 + xTask)/xTask bound
  scenario.cachePolicy = "belady";
  scenario.forceMiss = true;
  scenario.prefetcherKind = "oracle";
  scenario.prepare = "queue";
  exitCode = std::max(
      exitCode,
      report("demo:scenario", analyze::lintScenarioSpec(scenario), cli));

  analyze::FaultSpec chaos;
  chaos.arrival = "sometimes";   // FT004
  chaos.wordFlipRate = 0.05;     // FT010 (and faults without…
  chaos.recoveryEnabled = false; // …recovery: FT008)
  exitCode = std::max(
      exitCode, report("demo:fault", analyze::lintFaultSpec(chaos), cli));

  analyze::FleetSpec fleet;
  fleet.blades = 9;            // FL001: a chassis tops out at 6 blades
  fleet.offeredLoad = 1.5;     // FL012: saturating every blade
  fleet.routing = "psychic";   // FL004
  fleet.retryBudget = 0.9;     // FL013: retry-storm territory
  exitCode = std::max(
      exitCode, report("demo:fleet", analyze::lintFleetSpec(fleet), cli));
  return exitCode;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  while (!args.empty() && (args[0] == "--json" || args[0] == "--werror")) {
    (args[0] == "--json" ? cli.json : cli.werror) = true;
    args.erase(args.begin());
  }
  if (args.empty()) return usage();
  const std::string command = args[0];
  args.erase(args.begin());

  try {
    if (command == "--help" || command == "help") {
      usage();
      return 0;
    }
    if (command == "codes") {
      if (!args.empty() && args[0] == "--markdown") {
        std::cout << analyze::renderRuleReference();
      } else {
        for (const analyze::RuleInfo& rule : analyze::ruleCatalog()) {
          std::cout << rule.code << "  " << toString(rule.severity) << "  "
                    << rule.summary << '\n';
        }
      }
      return 0;
    }
    if (command == "demo") return demo(cli);
    if (command == "floorplan") {
      if (args.size() != 1) return usage();
      return lintBuiltinFloorplans(args[0], cli);
    }
    if (command == "floorplan-spec") {
      if (args.empty()) return usage();
      return lintSpecFiles(args, cli, [](std::istream& in) {
        return analyze::lintFloorplanSpec(analyze::parseFloorplanSpec(in));
      });
    }
    if (command == "scenario-spec") {
      if (args.empty()) return usage();
      return lintSpecFiles(args, cli, [](std::istream& in) {
        return analyze::lintScenarioSpec(analyze::parseScenarioSpec(in));
      });
    }
    if (command == "fault-spec") {
      if (args.empty()) return usage();
      return lintSpecFiles(args, cli, [](std::istream& in) {
        return analyze::lintFaultSpec(analyze::parseFaultSpec(in));
      });
    }
    if (command == "fleet-spec") {
      if (args.empty()) return usage();
      return lintSpecFiles(args, cli, [](std::istream& in) {
        return analyze::lintFleetSpec(analyze::parseFleetSpec(in));
      });
    }
    if (command == "bitstream") {
      if (args.empty()) return usage();
      const std::string file = args[0];
      std::string device = "xc2vp50";
      std::string layout;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--device" && i + 1 < args.size()) {
          device = args[++i];
        } else if (args[i] == "--layout" && i + 1 < args.size()) {
          layout = args[++i];
        } else {
          return usage();
        }
      }
      return lintBitstreamFile(file, device, layout, cli);
    }
  } catch (const util::Error& e) {
    std::cerr << "prtr-lint: " << e.what() << '\n';
    return 2;
  }
  return usage();
}
