/// \file prtr_verify.cpp
/// prtr-verify — dynamic-analysis verdicts for captured runs: timeline
/// invariant checking over Chrome traces (TL0xx), trace diffing (DT002),
/// bounded schedule exploration proving the pool's determinism contract
/// (DT001/DT003), and a race-detector demo over the instrumented exec
/// layer (RC0xx). Exit code 0 when clean (warnings allowed unless
/// --werror), 1 when any error-severity diagnostic fired, 2 on usage or
/// I/O problems — the same contract as prtr-lint.
///
///   prtr-verify [--json] [--werror] trace <file>...
///   prtr-verify [--json] [--werror] diff <left> <right>
///   prtr-verify [--json] [--werror] explore [--widths 1,2,3,4]
///               [--seeds N] [--points N] [--ncalls N] [--min-schedules N]
///   prtr-verify [--json] [--werror] race-demo
///   prtr-verify codes
///
/// The same checkers back ScenarioOptions::verify and the verify test
/// suites, so whatever this tool accepts the library accepts.

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "fabric/floorplan.hpp"
#include "util/error.hpp"
#include "verify/race.hpp"
#include "verify/schedule.hpp"
#include "verify/trace_load.hpp"

namespace {

using namespace prtr;

struct CliOptions {
  bool json = false;
  bool werror = false;
};

int usage() {
  std::cerr
      << "usage: prtr-verify [--json] [--werror] <command> [args]\n"
         "  trace <file>...          check Chrome traces against the TL0xx\n"
         "                           timeline and RQ0xx request invariants\n"
         "  diff <left> <right>      compare two captures of one scenario\n"
         "                           (differences are DT002)\n"
         "  explore [--widths W,..] [--seeds N] [--points N] [--ncalls N]\n"
         "          [--min-schedules N]\n"
         "                           replay a scaled-down Fig-9 sweep under\n"
         "                           seeded pool interleavings and prove\n"
         "                           byte-identity (DT001/DT003)\n"
         "  race-demo                run an instrumented pooled sweep under\n"
         "                           the happens-before race detector\n"
         "  codes                    list the RC/TL/RQ/DT rule families\n"
         "exit codes: 0 clean (warnings allowed unless --werror),\n"
         "            1 error-severity findings, 2 usage or I/O problems\n";
  return 2;
}

/// Renders one verification result and folds it into the process exit code.
int report(const std::string& subject, const analyze::DiagnosticSink& sink,
           const CliOptions& cli) {
  if (cli.json) {
    std::cout << "{\"subject\":\"" << analyze::jsonEscape(subject)
              << "\",\"report\":" << sink.toJson() << "}\n";
  } else {
    std::cout << "== " << subject << " ==\n" << sink.toText();
  }
  if (sink.hasErrors()) return 1;
  if (cli.werror && !sink.empty()) return 1;
  return 0;
}

int checkTraceFiles(const std::vector<std::string>& files,
                    const CliOptions& cli) {
  int exitCode = 0;
  for (const std::string& file : files) {
    const auto processes = verify::loadChromeTraceFile(file);
    analyze::DiagnosticSink sink;
    verify::checkTrace(processes, sink);
    exitCode = std::max(exitCode, report(file, sink, cli));
  }
  return exitCode;
}

int diffTraceFiles(const std::string& left, const std::string& right,
                   const CliOptions& cli) {
  analyze::DiagnosticSink sink;
  verify::compareTraces(verify::loadChromeTraceFile(left),
                        verify::loadChromeTraceFile(right), sink);
  return report(left + " vs " + right, sink, cli);
}

std::vector<std::size_t> parseWidths(const std::string& list) {
  std::vector<std::size_t> widths;
  std::istringstream in{list};
  std::string item;
  while (std::getline(in, item, ',')) {
    const int value = std::stoi(item);
    util::require(value > 0, "pool widths must be positive");
    widths.push_back(static_cast<std::size_t>(value));
  }
  util::require(!widths.empty(), "--widths needs at least one width");
  return widths;
}

int explore(const std::vector<std::string>& args, const CliOptions& cli) {
  verify::ExploreOptions options;
  options.minDistinctSchedules = 8;  // a CLI run should prove something
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&]() -> std::string {
      util::require(i + 1 < args.size(), args[i] + " needs a value");
      return args[++i];
    };
    if (args[i] == "--widths") {
      options.widths = parseWidths(value());
    } else if (args[i] == "--seeds") {
      options.seedsPerWidth = static_cast<std::size_t>(std::stoi(value()));
    } else if (args[i] == "--points") {
      options.points = static_cast<std::size_t>(std::stoi(value()));
    } else if (args[i] == "--ncalls") {
      options.nCalls = static_cast<std::uint64_t>(std::stoll(value()));
    } else if (args[i] == "--min-schedules") {
      options.minDistinctSchedules =
          static_cast<std::size_t>(std::stoi(value()));
    } else {
      return usage();
    }
  }
  analyze::DiagnosticSink sink;
  const verify::ExploreResult result = verify::exploreSchedules(options, sink);
  std::cout << "explored " << result.runs.size() << " perturbed replays ("
            << result.distinctSchedules << " distinct schedules), reference "
            << "digest " << result.referenceDigest << ", "
            << result.mismatches << " mismatch(es); " << result.queueRuns.size()
            << " alternate-queue replay(s), " << result.queueMismatches
            << " queue mismatch(es)\n";
  return report("explore", sink, cli);
}

/// Runs a pooled sweep with the race detector armed through the global
/// seam: the pool's submit/steal/complete edges and the artifact cache's
/// mutex hand-offs must order every access (an RC finding here is a bug in
/// the exec layer, not in this demo).
int raceDemo(const CliOptions& cli) {
  static verify::RaceDetector detector;  // outlives lingering pool events
  exec::Pool::setGlobalThreads(4);       // a serial pool would prove nothing
  exec::setRaceChecker(&detector);
  std::vector<double> out(128, 0.0);
  exec::parallelFor(out.size(), [&out](std::size_t i) {
    const auto plan = exec::ArtifactCache::global().floorplan(
        0xDEC0DE, [] { return fabric::makeDualPrrLayout(); });
    out[i] = static_cast<double>(plan->prrCount() + i);
  });
  exec::setRaceChecker(nullptr);
  analyze::DiagnosticSink sink;
  detector.report(sink);
  const verify::RaceDetector::Stats stats = detector.stats();
  std::cout << "observed " << stats.threads << " threads, "
            << stats.releases << " releases, " << stats.acquires
            << " acquires, " << stats.reads << " reads, " << stats.writes
            << " writes\n";
  return report("race-demo", sink, cli);
}

int listCodes() {
  for (const analyze::RuleInfo& rule : analyze::ruleCatalog()) {
    const bool verifyFamily = rule.category == analyze::Category::kRace ||
                              rule.category == analyze::Category::kTimeline ||
                              rule.category == analyze::Category::kRequest ||
                              rule.category == analyze::Category::kDeterminism;
    if (!verifyFamily) continue;
    std::cout << rule.code << "  " << toString(rule.severity) << "  "
              << rule.summary << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  while (!args.empty() && (args[0] == "--json" || args[0] == "--werror")) {
    (args[0] == "--json" ? cli.json : cli.werror) = true;
    args.erase(args.begin());
  }
  if (args.empty()) return usage();
  const std::string command = args[0];
  args.erase(args.begin());

  try {
    if (command == "--help" || command == "help") {
      usage();
      return 0;
    }
    if (command == "codes") return listCodes();
    if (command == "trace") {
      if (args.empty()) return usage();
      return checkTraceFiles(args, cli);
    }
    if (command == "diff") {
      if (args.size() != 2) return usage();
      return diffTraceFiles(args[0], args[1], cli);
    }
    if (command == "explore") return explore(args, cli);
    if (command == "race-demo") {
      if (!args.empty()) return usage();
      return raceDemo(cli);
    }
  } catch (const util::Error& e) {
    std::cerr << "prtr-verify: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "prtr-verify: " << e.what() << '\n';
    return 2;
  }
  return usage();
}
