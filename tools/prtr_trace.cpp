/// \file prtr_trace.cpp
/// prtr-trace — post-hoc analysis of fleet request traces. Reads the
/// Chrome/Perfetto JSON a `bench_fleet --trace` run (or any
/// fleet::runFleet with a trace hook) exported, parses the request-lane
/// label grammar back (see trace/request.hpp), and answers the questions
/// a tail-sampled trace exists to answer: what was kept and why, which
/// requests were slowest, where blade time went, and what one request's
/// critical path looked like. Exit code 0 on success, 2 on usage or I/O
/// problems; the invariant gate itself lives in `prtr-verify trace`.
///
///   prtr-trace summary <file>...
///   prtr-trace slowest [--top N] <file>
///   prtr-trace blades <file>
///   prtr-trace hedges <file>
///   prtr-trace critical-path <rq:lane|trace-id> <file>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_export.hpp"
#include "util/error.hpp"
#include "verify/request_rules.hpp"
#include "verify/trace_load.hpp"

namespace {

using namespace prtr;

int usage() {
  std::cerr
      << "usage: prtr-trace <command> [args] <file>...\n"
         "  summary <file>...        kept requests by outcome, span/mark\n"
         "                           totals, blade mark counts\n"
         "  slowest [--top N] <file> slowest kept requests by end-to-end\n"
         "                           latency (default top 10)\n"
         "  blades <file>            per-blade service time and its\n"
         "                           stall/reload/execute composition\n"
         "  hedges <file>            hedged requests: launches, wins,\n"
         "                           cancelled losers\n"
         "  critical-path <lane> <file>\n"
         "                           one request's spans and marks in\n"
         "                           causal order ('rq:' prefix optional)\n"
         "exit codes: 0 success, 2 usage or I/O problems\n";
  return 2;
}

std::string us(std::int64_t ps) {
  return obs::microsecondsFromPicoseconds(ps) + " us";
}

/// One request lane regrouped from a loaded process.
struct RequestView {
  std::string_view lane;
  std::string_view outcome;         ///< from the root span label
  std::int64_t latencyPs = 0;       ///< root span duration
  std::int64_t startPs = 0;
  std::vector<const sim::NamedSpan*> spans;
  std::vector<const verify::InstantEvent*> marks;
  int attempts = 0;
  bool hedged = false;
};

/// Regroups every request lane of every process; spans stay in export
/// order (startPs ascending, parents first).
std::vector<RequestView> collectRequests(
    const std::vector<verify::TraceProcess>& processes) {
  std::vector<RequestView> requests;
  for (const verify::TraceProcess& process : processes) {
    std::map<std::string_view, std::size_t> byLane;
    const auto view = [&](std::string_view lane) -> RequestView& {
      const auto [it, fresh] = byLane.try_emplace(lane, requests.size());
      if (fresh) {
        requests.emplace_back();
        requests.back().lane = lane;
      }
      return requests[it->second];
    };
    for (const sim::NamedSpan& span : process.spans) {
      if (!verify::isRequestLane(span.lane)) continue;
      RequestView& rq = view(span.lane);
      rq.spans.push_back(&span);
      const verify::RequestLabel label = verify::parseRequestLabel(span.label);
      if (label.kind == verify::RequestLabel::Kind::kRequest) {
        rq.outcome = label.outcome;
        rq.startPs = span.start.ps();
        rq.latencyPs = span.end.ps() - span.start.ps();
      } else if (label.kind == verify::RequestLabel::Kind::kAttempt) {
        ++rq.attempts;
        if (label.hedge) rq.hedged = true;
      }
    }
    for (const verify::InstantEvent& mark : process.instants) {
      if (!verify::isRequestLane(mark.lane)) continue;
      view(mark.lane).marks.push_back(&mark);
    }
  }
  return requests;
}

int summary(const std::vector<std::string>& files) {
  for (const std::string& file : files) {
    const auto processes = verify::loadChromeTraceFile(file);
    const auto requests = collectRequests(processes);
    std::map<std::string_view, std::uint64_t> outcomes;
    std::map<std::string_view, std::uint64_t> marks;
    std::uint64_t spanCount = 0;
    for (const RequestView& rq : requests) {
      ++outcomes[rq.outcome.empty() ? "<no root>" : rq.outcome];
      spanCount += rq.spans.size();
    }
    std::uint64_t bladeMarks = 0;
    for (const verify::TraceProcess& process : processes) {
      for (const verify::InstantEvent& mark : process.instants) {
        ++marks[mark.label];
        if (!verify::isRequestLane(mark.lane)) ++bladeMarks;
      }
    }
    std::cout << "== " << file << " ==\n"
              << requests.size() << " kept request(s), " << spanCount
              << " span(s), " << bladeMarks << " blade mark(s)\n";
    for (const auto& [outcome, count] : outcomes) {
      std::cout << "  outcome " << outcome << ": " << count << '\n';
    }
    for (const auto& [label, count] : marks) {
      std::cout << "  mark " << label << ": " << count << '\n';
    }
  }
  return 0;
}

int slowest(std::size_t top, const std::string& file) {
  const auto processes = verify::loadChromeTraceFile(file);
  auto requests = collectRequests(processes);
  std::sort(requests.begin(), requests.end(),
            [](const RequestView& a, const RequestView& b) {
              if (a.latencyPs != b.latencyPs) return a.latencyPs > b.latencyPs;
              return a.lane < b.lane;
            });
  if (requests.size() > top) requests.resize(top);
  for (const RequestView& rq : requests) {
    std::cout << rq.lane << "  " << us(rq.latencyPs) << "  "
              << (rq.outcome.empty() ? "<no root>" : rq.outcome) << "  "
              << rq.attempts << " attempt(s)" << (rq.hedged ? ", hedged" : "")
              << '\n';
  }
  return 0;
}

int blades(const std::string& file) {
  const auto processes = verify::loadChromeTraceFile(file);
  struct BladeTime {
    std::int64_t servicePs = 0;
    std::uint64_t services = 0;
  };
  std::map<int, BladeTime> perBlade;
  std::int64_t stallPs = 0, reloadPs = 0, executePs = 0;
  for (const verify::TraceProcess& process : processes) {
    for (const sim::NamedSpan& span : process.spans) {
      if (!verify::isRequestLane(span.lane)) continue;
      const verify::RequestLabel label = verify::parseRequestLabel(span.label);
      const std::int64_t duration = span.end.ps() - span.start.ps();
      switch (label.kind) {
        case verify::RequestLabel::Kind::kService: {
          BladeTime& blade = perBlade[label.blade];
          blade.servicePs += duration;
          ++blade.services;
          break;
        }
        case verify::RequestLabel::Kind::kStall: stallPs += duration; break;
        case verify::RequestLabel::Kind::kReload: reloadPs += duration; break;
        case verify::RequestLabel::Kind::kExecute:
          executePs += duration;
          break;
        default: break;
      }
    }
  }
  for (const auto& [blade, time] : perBlade) {
    std::cout << "blade" << blade << "  " << time.services << " service(s), "
              << us(time.servicePs) << '\n';
  }
  std::cout << "composition over kept requests: stall " << us(stallPs)
            << ", reload " << us(reloadPs) << ", execute " << us(executePs)
            << '\n';
  return 0;
}

int hedges(const std::string& file) {
  const auto processes = verify::loadChromeTraceFile(file);
  const auto requests = collectRequests(processes);
  std::uint64_t hedged = 0, wins = 0, cancelled = 0, launches = 0;
  for (const RequestView& rq : requests) {
    if (rq.hedged) ++hedged;
    for (const verify::InstantEvent* mark : rq.marks) {
      if (mark->label == "hedge:win") ++wins;
      if (mark->label == "hedge:cancel") ++cancelled;
      if (mark->label == "hedge:launch") ++launches;
    }
  }
  std::cout << hedged << " hedged request(s): " << launches << " launch(es), "
            << wins << " won, " << cancelled
            << " loser(s) cancelled in queue\n";
  return 0;
}

int criticalPath(const std::string& laneArg, const std::string& file) {
  const std::string lane =
      laneArg.rfind("rq:", 0) == 0 ? laneArg : "rq:" + laneArg;
  const auto processes = verify::loadChromeTraceFile(file);
  const auto requests = collectRequests(processes);
  for (const RequestView& rq : requests) {
    if (rq.lane != lane) continue;
    for (const sim::NamedSpan* span : rq.spans) {
      std::cout << "  [" << us(span->start.ps()) << " +"
                << us(span->end.ps() - span->start.ps()) << "] "
                << span->label << '\n';
    }
    for (const verify::InstantEvent* mark : rq.marks) {
      std::cout << "  @" << us(mark->at.ps()) << " " << mark->label << '\n';
    }
    return 0;
  }
  std::cerr << "prtr-trace: no kept request lane '" << lane << "' in "
            << file << '\n';
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  if (args.empty()) return usage();
  const std::string command = args[0];
  args.erase(args.begin());

  try {
    if (command == "--help" || command == "help") {
      usage();
      return 0;
    }
    if (command == "summary") {
      if (args.empty()) return usage();
      return summary(args);
    }
    if (command == "slowest") {
      std::size_t top = 10;
      if (args.size() >= 2 && args[0] == "--top") {
        top = static_cast<std::size_t>(std::stoi(args[1]));
        args.erase(args.begin(), args.begin() + 2);
      }
      if (args.size() != 1) return usage();
      return slowest(top, args[0]);
    }
    if (command == "blades") {
      if (args.size() != 1) return usage();
      return blades(args[0]);
    }
    if (command == "hedges") {
      if (args.size() != 1) return usage();
      return hedges(args[0]);
    }
    if (command == "critical-path") {
      if (args.size() != 2) return usage();
      return criticalPath(args[0], args[1]);
    }
  } catch (const std::exception& e) {
    std::cerr << "prtr-trace: " << e.what() << '\n';
    return 2;
  }
  return usage();
}
