/// \file prtr_report.cpp
/// prtr-report — bench-regression dashboard. Ingests one or more bench
/// --json documents, pairs each with its committed baseline
/// (<baselines>/BENCH_<bench>.json), and classifies every scalar and table
/// delta under the prof::ComparePolicy noise model: simulated-time scalars
/// must match exactly, wall-clock scalars are informational unless gated.
/// Exit code 0 when every bench passes, 1 when any comparison regressed
/// (or a baseline is missing), 2 on usage or I/O problems.
///
///   prtr-report --baselines DIR [options] <current.json>...
///     --baselines DIR   directory holding BENCH_<bench>.json baselines
///     --markdown PATH   write a GitHub-flavoured markdown dashboard
///     --verdict PATH    write a machine-readable JSON verdict
///     --wall-band F     relative band for wall-clock scalars (default 0.25)
///     --gate-wall       fail on wall-clock drift beyond the band
///
/// The terminal dashboard always goes to stdout, one block per bench.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "prof/regression.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace prtr;

struct CliOptions {
  std::string baselinesDir;
  std::string markdownPath;
  std::string verdictPath;
  prof::ComparePolicy policy;
  std::vector<std::string> inputs;
};

int usage() {
  std::cerr
      << "usage: prtr-report --baselines DIR [options] <current.json>...\n"
         "  --baselines DIR   directory with BENCH_<bench>.json baselines\n"
         "  --markdown PATH   write a markdown dashboard for CI artifacts\n"
         "  --verdict PATH    write a machine-readable JSON verdict\n"
         "  --wall-band F     wall-clock relative band (default 0.25)\n"
         "  --gate-wall       fail on wall-clock drift beyond the band\n";
  return 2;
}

bool parseArgs(int argc, char** argv, CliOptions& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baselines" || arg == "--markdown" || arg == "--verdict" ||
        arg == "--wall-band") {
      if (i + 1 >= argc) {
        std::cerr << "prtr-report: " << arg << " needs a value\n";
        return false;
      }
      const std::string value = argv[++i];
      if (arg == "--baselines") {
        cli.baselinesDir = value;
      } else if (arg == "--markdown") {
        cli.markdownPath = value;
      } else if (arg == "--verdict") {
        cli.verdictPath = value;
      } else {
        try {
          cli.policy.wallBand = std::stod(value);
        } catch (const std::exception&) {
          std::cerr << "prtr-report: --wall-band needs a number, got '"
                    << value << "'\n";
          return false;
        }
      }
    } else if (arg == "--gate-wall") {
      cli.policy.gateWallClock = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "prtr-report: unknown option '" << arg << "'\n";
      return false;
    } else {
      cli.inputs.push_back(arg);
    }
  }
  if (cli.baselinesDir.empty()) {
    std::cerr << "prtr-report: --baselines is required\n";
    return false;
  }
  if (cli.inputs.empty()) {
    std::cerr << "prtr-report: no current bench JSON files given\n";
    return false;
  }
  return true;
}

void writeToFile(const std::string& path, const std::string& content,
                 const char* what) {
  std::ofstream os{path};
  util::require(os.good(),
                std::string{"prtr-report: cannot open "} + what + " file '" +
                    path + "' for writing");
  os << content;
  util::require(os.good(), std::string{"prtr-report: failed writing "} + what +
                               " file '" + path + "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parseArgs(argc, argv, cli)) return usage();

  std::vector<prof::CompareResult> results;
  bool anyFail = false;
  try {
    for (const std::string& input : cli.inputs) {
      const prof::BenchDoc current = prof::BenchDoc::parseFile(input);
      const std::string baselinePath =
          cli.baselinesDir + "/BENCH_" + current.bench + ".json";
      const prof::BenchDoc baseline = prof::BenchDoc::parseFile(baselinePath);
      results.push_back(prof::compare(baseline, current, cli.policy));
      const prof::CompareResult& result = results.back();
      std::cout << result.renderText() << '\n';
      anyFail = anyFail || !result.pass;
    }

    if (!cli.markdownPath.empty()) {
      std::string markdown = "# prtr-report bench regression dashboard\n\n";
      for (const prof::CompareResult& result : results) {
        markdown += result.renderMarkdown();
        markdown += '\n';
      }
      writeToFile(cli.markdownPath, markdown, "markdown");
    }
    if (!cli.verdictPath.empty()) {
      std::ostringstream os;
      util::json::Writer w{os};
      w.beginObject();
      w.key("pass").value(!anyFail);
      w.key("benches").beginArray();
      for (const prof::CompareResult& result : results) result.writeJson(w);
      w.endArray();
      w.endObject();
      writeToFile(cli.verdictPath, os.str(), "verdict");
    }
  } catch (const util::Error& e) {
    std::cerr << "prtr-report: " << e.what() << '\n';
    return 2;
  }

  if (anyFail) {
    std::cerr << "prtr-report: FAIL — at least one bench regressed against "
                 "its baseline\n";
    return 1;
  }
  std::cout << "prtr-report: all " << results.size()
            << " bench(es) within tolerance\n";
  return 0;
}
