
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/icap_controller.cpp" "src/config/CMakeFiles/prtr_config.dir/icap_controller.cpp.o" "gcc" "src/config/CMakeFiles/prtr_config.dir/icap_controller.cpp.o.d"
  "/root/repo/src/config/manager.cpp" "src/config/CMakeFiles/prtr_config.dir/manager.cpp.o" "gcc" "src/config/CMakeFiles/prtr_config.dir/manager.cpp.o.d"
  "/root/repo/src/config/memory.cpp" "src/config/CMakeFiles/prtr_config.dir/memory.cpp.o" "gcc" "src/config/CMakeFiles/prtr_config.dir/memory.cpp.o.d"
  "/root/repo/src/config/port.cpp" "src/config/CMakeFiles/prtr_config.dir/port.cpp.o" "gcc" "src/config/CMakeFiles/prtr_config.dir/port.cpp.o.d"
  "/root/repo/src/config/scrubber.cpp" "src/config/CMakeFiles/prtr_config.dir/scrubber.cpp.o" "gcc" "src/config/CMakeFiles/prtr_config.dir/scrubber.cpp.o.d"
  "/root/repo/src/config/vendor_api.cpp" "src/config/CMakeFiles/prtr_config.dir/vendor_api.cpp.o" "gcc" "src/config/CMakeFiles/prtr_config.dir/vendor_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/prtr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/prtr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prtr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
