# Empty compiler generated dependencies file for prtr_config.
# This may be replaced when dependencies are built.
