file(REMOVE_RECURSE
  "libprtr_config.a"
)
