file(REMOVE_RECURSE
  "CMakeFiles/prtr_config.dir/icap_controller.cpp.o"
  "CMakeFiles/prtr_config.dir/icap_controller.cpp.o.d"
  "CMakeFiles/prtr_config.dir/manager.cpp.o"
  "CMakeFiles/prtr_config.dir/manager.cpp.o.d"
  "CMakeFiles/prtr_config.dir/memory.cpp.o"
  "CMakeFiles/prtr_config.dir/memory.cpp.o.d"
  "CMakeFiles/prtr_config.dir/port.cpp.o"
  "CMakeFiles/prtr_config.dir/port.cpp.o.d"
  "CMakeFiles/prtr_config.dir/scrubber.cpp.o"
  "CMakeFiles/prtr_config.dir/scrubber.cpp.o.d"
  "CMakeFiles/prtr_config.dir/vendor_api.cpp.o"
  "CMakeFiles/prtr_config.dir/vendor_api.cpp.o.d"
  "libprtr_config.a"
  "libprtr_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
