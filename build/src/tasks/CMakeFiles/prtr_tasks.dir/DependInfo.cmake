
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/appsuite.cpp" "src/tasks/CMakeFiles/prtr_tasks.dir/appsuite.cpp.o" "gcc" "src/tasks/CMakeFiles/prtr_tasks.dir/appsuite.cpp.o.d"
  "/root/repo/src/tasks/hwfunction.cpp" "src/tasks/CMakeFiles/prtr_tasks.dir/hwfunction.cpp.o" "gcc" "src/tasks/CMakeFiles/prtr_tasks.dir/hwfunction.cpp.o.d"
  "/root/repo/src/tasks/image.cpp" "src/tasks/CMakeFiles/prtr_tasks.dir/image.cpp.o" "gcc" "src/tasks/CMakeFiles/prtr_tasks.dir/image.cpp.o.d"
  "/root/repo/src/tasks/kernels.cpp" "src/tasks/CMakeFiles/prtr_tasks.dir/kernels.cpp.o" "gcc" "src/tasks/CMakeFiles/prtr_tasks.dir/kernels.cpp.o.d"
  "/root/repo/src/tasks/locality.cpp" "src/tasks/CMakeFiles/prtr_tasks.dir/locality.cpp.o" "gcc" "src/tasks/CMakeFiles/prtr_tasks.dir/locality.cpp.o.d"
  "/root/repo/src/tasks/workload.cpp" "src/tasks/CMakeFiles/prtr_tasks.dir/workload.cpp.o" "gcc" "src/tasks/CMakeFiles/prtr_tasks.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/prtr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/prtr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
