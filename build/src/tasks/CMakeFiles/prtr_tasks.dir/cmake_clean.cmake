file(REMOVE_RECURSE
  "CMakeFiles/prtr_tasks.dir/appsuite.cpp.o"
  "CMakeFiles/prtr_tasks.dir/appsuite.cpp.o.d"
  "CMakeFiles/prtr_tasks.dir/hwfunction.cpp.o"
  "CMakeFiles/prtr_tasks.dir/hwfunction.cpp.o.d"
  "CMakeFiles/prtr_tasks.dir/image.cpp.o"
  "CMakeFiles/prtr_tasks.dir/image.cpp.o.d"
  "CMakeFiles/prtr_tasks.dir/kernels.cpp.o"
  "CMakeFiles/prtr_tasks.dir/kernels.cpp.o.d"
  "CMakeFiles/prtr_tasks.dir/locality.cpp.o"
  "CMakeFiles/prtr_tasks.dir/locality.cpp.o.d"
  "CMakeFiles/prtr_tasks.dir/workload.cpp.o"
  "CMakeFiles/prtr_tasks.dir/workload.cpp.o.d"
  "libprtr_tasks.a"
  "libprtr_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
