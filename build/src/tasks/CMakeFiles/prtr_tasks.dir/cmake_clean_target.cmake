file(REMOVE_RECURSE
  "libprtr_tasks.a"
)
