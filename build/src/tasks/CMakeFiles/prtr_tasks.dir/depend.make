# Empty dependencies file for prtr_tasks.
# This may be replaced when dependencies are built.
