# Empty dependencies file for prtr_hprc.
# This may be replaced when dependencies are built.
