file(REMOVE_RECURSE
  "libprtr_hprc.a"
)
