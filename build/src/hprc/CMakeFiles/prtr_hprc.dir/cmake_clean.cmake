file(REMOVE_RECURSE
  "CMakeFiles/prtr_hprc.dir/chassis.cpp.o"
  "CMakeFiles/prtr_hprc.dir/chassis.cpp.o.d"
  "libprtr_hprc.a"
  "libprtr_hprc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_hprc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
