# Empty dependencies file for prtr_bitstream.
# This may be replaced when dependencies are built.
