file(REMOVE_RECURSE
  "CMakeFiles/prtr_bitstream.dir/builder.cpp.o"
  "CMakeFiles/prtr_bitstream.dir/builder.cpp.o.d"
  "CMakeFiles/prtr_bitstream.dir/compress.cpp.o"
  "CMakeFiles/prtr_bitstream.dir/compress.cpp.o.d"
  "CMakeFiles/prtr_bitstream.dir/format.cpp.o"
  "CMakeFiles/prtr_bitstream.dir/format.cpp.o.d"
  "CMakeFiles/prtr_bitstream.dir/library.cpp.o"
  "CMakeFiles/prtr_bitstream.dir/library.cpp.o.d"
  "CMakeFiles/prtr_bitstream.dir/parser.cpp.o"
  "CMakeFiles/prtr_bitstream.dir/parser.cpp.o.d"
  "CMakeFiles/prtr_bitstream.dir/relocate.cpp.o"
  "CMakeFiles/prtr_bitstream.dir/relocate.cpp.o.d"
  "libprtr_bitstream.a"
  "libprtr_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
