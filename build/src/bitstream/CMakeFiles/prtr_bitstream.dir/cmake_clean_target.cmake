file(REMOVE_RECURSE
  "libprtr_bitstream.a"
)
