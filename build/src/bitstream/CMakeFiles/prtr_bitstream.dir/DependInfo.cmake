
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/builder.cpp" "src/bitstream/CMakeFiles/prtr_bitstream.dir/builder.cpp.o" "gcc" "src/bitstream/CMakeFiles/prtr_bitstream.dir/builder.cpp.o.d"
  "/root/repo/src/bitstream/compress.cpp" "src/bitstream/CMakeFiles/prtr_bitstream.dir/compress.cpp.o" "gcc" "src/bitstream/CMakeFiles/prtr_bitstream.dir/compress.cpp.o.d"
  "/root/repo/src/bitstream/format.cpp" "src/bitstream/CMakeFiles/prtr_bitstream.dir/format.cpp.o" "gcc" "src/bitstream/CMakeFiles/prtr_bitstream.dir/format.cpp.o.d"
  "/root/repo/src/bitstream/library.cpp" "src/bitstream/CMakeFiles/prtr_bitstream.dir/library.cpp.o" "gcc" "src/bitstream/CMakeFiles/prtr_bitstream.dir/library.cpp.o.d"
  "/root/repo/src/bitstream/parser.cpp" "src/bitstream/CMakeFiles/prtr_bitstream.dir/parser.cpp.o" "gcc" "src/bitstream/CMakeFiles/prtr_bitstream.dir/parser.cpp.o.d"
  "/root/repo/src/bitstream/relocate.cpp" "src/bitstream/CMakeFiles/prtr_bitstream.dir/relocate.cpp.o" "gcc" "src/bitstream/CMakeFiles/prtr_bitstream.dir/relocate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/prtr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
