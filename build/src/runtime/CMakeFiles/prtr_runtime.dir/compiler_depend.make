# Empty compiler generated dependencies file for prtr_runtime.
# This may be replaced when dependencies are built.
