file(REMOVE_RECURSE
  "libprtr_runtime.a"
)
