
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cache.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/cache.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/cache.cpp.o.d"
  "/root/repo/src/runtime/dynamic_executor.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/dynamic_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/dynamic_executor.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/executor.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/executor.cpp.o.d"
  "/root/repo/src/runtime/hwsw.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/hwsw.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/hwsw.cpp.o.d"
  "/root/repo/src/runtime/multitask.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/multitask.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/multitask.cpp.o.d"
  "/root/repo/src/runtime/prefetch.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/prefetch.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/prefetch.cpp.o.d"
  "/root/repo/src/runtime/report.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/report.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/report.cpp.o.d"
  "/root/repo/src/runtime/scenario.cpp" "src/runtime/CMakeFiles/prtr_runtime.dir/scenario.cpp.o" "gcc" "src/runtime/CMakeFiles/prtr_runtime.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/prtr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/xd1/CMakeFiles/prtr_xd1.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/prtr_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/prtr_config.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/prtr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prtr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/prtr_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
