file(REMOVE_RECURSE
  "CMakeFiles/prtr_runtime.dir/cache.cpp.o"
  "CMakeFiles/prtr_runtime.dir/cache.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/dynamic_executor.cpp.o"
  "CMakeFiles/prtr_runtime.dir/dynamic_executor.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/executor.cpp.o"
  "CMakeFiles/prtr_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/hwsw.cpp.o"
  "CMakeFiles/prtr_runtime.dir/hwsw.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/multitask.cpp.o"
  "CMakeFiles/prtr_runtime.dir/multitask.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/prefetch.cpp.o"
  "CMakeFiles/prtr_runtime.dir/prefetch.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/report.cpp.o"
  "CMakeFiles/prtr_runtime.dir/report.cpp.o.d"
  "CMakeFiles/prtr_runtime.dir/scenario.cpp.o"
  "CMakeFiles/prtr_runtime.dir/scenario.cpp.o.d"
  "libprtr_runtime.a"
  "libprtr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
