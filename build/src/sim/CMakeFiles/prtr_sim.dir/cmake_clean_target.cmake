file(REMOVE_RECURSE
  "libprtr_sim.a"
)
