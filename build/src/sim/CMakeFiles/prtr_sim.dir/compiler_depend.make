# Empty compiler generated dependencies file for prtr_sim.
# This may be replaced when dependencies are built.
