file(REMOVE_RECURSE
  "CMakeFiles/prtr_sim.dir/simulator.cpp.o"
  "CMakeFiles/prtr_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/prtr_sim.dir/trace.cpp.o"
  "CMakeFiles/prtr_sim.dir/trace.cpp.o.d"
  "libprtr_sim.a"
  "libprtr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
