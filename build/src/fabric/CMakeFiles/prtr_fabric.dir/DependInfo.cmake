
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/allocator.cpp" "src/fabric/CMakeFiles/prtr_fabric.dir/allocator.cpp.o" "gcc" "src/fabric/CMakeFiles/prtr_fabric.dir/allocator.cpp.o.d"
  "/root/repo/src/fabric/device.cpp" "src/fabric/CMakeFiles/prtr_fabric.dir/device.cpp.o" "gcc" "src/fabric/CMakeFiles/prtr_fabric.dir/device.cpp.o.d"
  "/root/repo/src/fabric/floorplan.cpp" "src/fabric/CMakeFiles/prtr_fabric.dir/floorplan.cpp.o" "gcc" "src/fabric/CMakeFiles/prtr_fabric.dir/floorplan.cpp.o.d"
  "/root/repo/src/fabric/geometry.cpp" "src/fabric/CMakeFiles/prtr_fabric.dir/geometry.cpp.o" "gcc" "src/fabric/CMakeFiles/prtr_fabric.dir/geometry.cpp.o.d"
  "/root/repo/src/fabric/region.cpp" "src/fabric/CMakeFiles/prtr_fabric.dir/region.cpp.o" "gcc" "src/fabric/CMakeFiles/prtr_fabric.dir/region.cpp.o.d"
  "/root/repo/src/fabric/resources.cpp" "src/fabric/CMakeFiles/prtr_fabric.dir/resources.cpp.o" "gcc" "src/fabric/CMakeFiles/prtr_fabric.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
