file(REMOVE_RECURSE
  "CMakeFiles/prtr_fabric.dir/allocator.cpp.o"
  "CMakeFiles/prtr_fabric.dir/allocator.cpp.o.d"
  "CMakeFiles/prtr_fabric.dir/device.cpp.o"
  "CMakeFiles/prtr_fabric.dir/device.cpp.o.d"
  "CMakeFiles/prtr_fabric.dir/floorplan.cpp.o"
  "CMakeFiles/prtr_fabric.dir/floorplan.cpp.o.d"
  "CMakeFiles/prtr_fabric.dir/geometry.cpp.o"
  "CMakeFiles/prtr_fabric.dir/geometry.cpp.o.d"
  "CMakeFiles/prtr_fabric.dir/region.cpp.o"
  "CMakeFiles/prtr_fabric.dir/region.cpp.o.d"
  "CMakeFiles/prtr_fabric.dir/resources.cpp.o"
  "CMakeFiles/prtr_fabric.dir/resources.cpp.o.d"
  "libprtr_fabric.a"
  "libprtr_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
