file(REMOVE_RECURSE
  "libprtr_fabric.a"
)
