# Empty compiler generated dependencies file for prtr_fabric.
# This may be replaced when dependencies are built.
