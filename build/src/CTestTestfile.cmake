# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("fabric")
subdirs("bitstream")
subdirs("config")
subdirs("xd1")
subdirs("tasks")
subdirs("model")
subdirs("runtime")
subdirs("analysis")
subdirs("hprc")
