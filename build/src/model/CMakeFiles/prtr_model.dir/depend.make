# Empty dependencies file for prtr_model.
# This may be replaced when dependencies are built.
