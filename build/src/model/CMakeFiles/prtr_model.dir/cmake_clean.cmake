file(REMOVE_RECURSE
  "CMakeFiles/prtr_model.dir/bounds.cpp.o"
  "CMakeFiles/prtr_model.dir/bounds.cpp.o.d"
  "CMakeFiles/prtr_model.dir/calibration.cpp.o"
  "CMakeFiles/prtr_model.dir/calibration.cpp.o.d"
  "CMakeFiles/prtr_model.dir/insights.cpp.o"
  "CMakeFiles/prtr_model.dir/insights.cpp.o.d"
  "CMakeFiles/prtr_model.dir/model.cpp.o"
  "CMakeFiles/prtr_model.dir/model.cpp.o.d"
  "CMakeFiles/prtr_model.dir/params.cpp.o"
  "CMakeFiles/prtr_model.dir/params.cpp.o.d"
  "libprtr_model.a"
  "libprtr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
