file(REMOVE_RECURSE
  "libprtr_model.a"
)
