
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/bounds.cpp" "src/model/CMakeFiles/prtr_model.dir/bounds.cpp.o" "gcc" "src/model/CMakeFiles/prtr_model.dir/bounds.cpp.o.d"
  "/root/repo/src/model/calibration.cpp" "src/model/CMakeFiles/prtr_model.dir/calibration.cpp.o" "gcc" "src/model/CMakeFiles/prtr_model.dir/calibration.cpp.o.d"
  "/root/repo/src/model/insights.cpp" "src/model/CMakeFiles/prtr_model.dir/insights.cpp.o" "gcc" "src/model/CMakeFiles/prtr_model.dir/insights.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/prtr_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/prtr_model.dir/model.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/prtr_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/prtr_model.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xd1/CMakeFiles/prtr_xd1.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/prtr_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/prtr_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prtr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/prtr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/prtr_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
