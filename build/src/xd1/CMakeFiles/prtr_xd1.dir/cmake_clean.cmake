file(REMOVE_RECURSE
  "CMakeFiles/prtr_xd1.dir/node.cpp.o"
  "CMakeFiles/prtr_xd1.dir/node.cpp.o.d"
  "libprtr_xd1.a"
  "libprtr_xd1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_xd1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
