# Empty compiler generated dependencies file for prtr_xd1.
# This may be replaced when dependencies are built.
