file(REMOVE_RECURSE
  "libprtr_xd1.a"
)
