# Empty compiler generated dependencies file for prtr_analysis.
# This may be replaced when dependencies are built.
