file(REMOVE_RECURSE
  "CMakeFiles/prtr_analysis.dir/figures.cpp.o"
  "CMakeFiles/prtr_analysis.dir/figures.cpp.o.d"
  "CMakeFiles/prtr_analysis.dir/parallel.cpp.o"
  "CMakeFiles/prtr_analysis.dir/parallel.cpp.o.d"
  "libprtr_analysis.a"
  "libprtr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
