file(REMOVE_RECURSE
  "libprtr_analysis.a"
)
