# Empty compiler generated dependencies file for prtr_util.
# This may be replaced when dependencies are built.
