file(REMOVE_RECURSE
  "libprtr_util.a"
)
