file(REMOVE_RECURSE
  "CMakeFiles/prtr_util.dir/crc32.cpp.o"
  "CMakeFiles/prtr_util.dir/crc32.cpp.o.d"
  "CMakeFiles/prtr_util.dir/log.cpp.o"
  "CMakeFiles/prtr_util.dir/log.cpp.o.d"
  "CMakeFiles/prtr_util.dir/plot.cpp.o"
  "CMakeFiles/prtr_util.dir/plot.cpp.o.d"
  "CMakeFiles/prtr_util.dir/rng.cpp.o"
  "CMakeFiles/prtr_util.dir/rng.cpp.o.d"
  "CMakeFiles/prtr_util.dir/stats.cpp.o"
  "CMakeFiles/prtr_util.dir/stats.cpp.o.d"
  "CMakeFiles/prtr_util.dir/table.cpp.o"
  "CMakeFiles/prtr_util.dir/table.cpp.o.d"
  "CMakeFiles/prtr_util.dir/units.cpp.o"
  "CMakeFiles/prtr_util.dir/units.cpp.o.d"
  "libprtr_util.a"
  "libprtr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
