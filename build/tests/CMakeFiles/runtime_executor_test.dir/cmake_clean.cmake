file(REMOVE_RECURSE
  "CMakeFiles/runtime_executor_test.dir/runtime_executor_test.cpp.o"
  "CMakeFiles/runtime_executor_test.dir/runtime_executor_test.cpp.o.d"
  "runtime_executor_test"
  "runtime_executor_test.pdb"
  "runtime_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
