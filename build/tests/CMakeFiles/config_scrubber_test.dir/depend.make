# Empty dependencies file for config_scrubber_test.
# This may be replaced when dependencies are built.
