file(REMOVE_RECURSE
  "CMakeFiles/config_scrubber_test.dir/config_scrubber_test.cpp.o"
  "CMakeFiles/config_scrubber_test.dir/config_scrubber_test.cpp.o.d"
  "config_scrubber_test"
  "config_scrubber_test.pdb"
  "config_scrubber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_scrubber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
