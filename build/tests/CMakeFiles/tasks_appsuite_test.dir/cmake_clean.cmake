file(REMOVE_RECURSE
  "CMakeFiles/tasks_appsuite_test.dir/tasks_appsuite_test.cpp.o"
  "CMakeFiles/tasks_appsuite_test.dir/tasks_appsuite_test.cpp.o.d"
  "tasks_appsuite_test"
  "tasks_appsuite_test.pdb"
  "tasks_appsuite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_appsuite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
