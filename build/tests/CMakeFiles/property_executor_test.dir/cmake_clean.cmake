file(REMOVE_RECURSE
  "CMakeFiles/property_executor_test.dir/property_executor_test.cpp.o"
  "CMakeFiles/property_executor_test.dir/property_executor_test.cpp.o.d"
  "property_executor_test"
  "property_executor_test.pdb"
  "property_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
