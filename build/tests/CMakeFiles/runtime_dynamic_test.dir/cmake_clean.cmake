file(REMOVE_RECURSE
  "CMakeFiles/runtime_dynamic_test.dir/runtime_dynamic_test.cpp.o"
  "CMakeFiles/runtime_dynamic_test.dir/runtime_dynamic_test.cpp.o.d"
  "runtime_dynamic_test"
  "runtime_dynamic_test.pdb"
  "runtime_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
