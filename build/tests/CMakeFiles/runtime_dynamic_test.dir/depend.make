# Empty dependencies file for runtime_dynamic_test.
# This may be replaced when dependencies are built.
