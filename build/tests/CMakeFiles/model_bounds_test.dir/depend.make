# Empty dependencies file for model_bounds_test.
# This may be replaced when dependencies are built.
