file(REMOVE_RECURSE
  "CMakeFiles/model_bounds_test.dir/model_bounds_test.cpp.o"
  "CMakeFiles/model_bounds_test.dir/model_bounds_test.cpp.o.d"
  "model_bounds_test"
  "model_bounds_test.pdb"
  "model_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
