file(REMOVE_RECURSE
  "CMakeFiles/model_insights_test.dir/model_insights_test.cpp.o"
  "CMakeFiles/model_insights_test.dir/model_insights_test.cpp.o.d"
  "model_insights_test"
  "model_insights_test.pdb"
  "model_insights_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_insights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
