# Empty compiler generated dependencies file for model_insights_test.
# This may be replaced when dependencies are built.
