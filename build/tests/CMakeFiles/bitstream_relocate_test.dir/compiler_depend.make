# Empty compiler generated dependencies file for bitstream_relocate_test.
# This may be replaced when dependencies are built.
