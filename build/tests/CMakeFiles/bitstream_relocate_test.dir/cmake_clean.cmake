file(REMOVE_RECURSE
  "CMakeFiles/bitstream_relocate_test.dir/bitstream_relocate_test.cpp.o"
  "CMakeFiles/bitstream_relocate_test.dir/bitstream_relocate_test.cpp.o.d"
  "bitstream_relocate_test"
  "bitstream_relocate_test.pdb"
  "bitstream_relocate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_relocate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
