file(REMOVE_RECURSE
  "CMakeFiles/fabric_allocator_test.dir/fabric_allocator_test.cpp.o"
  "CMakeFiles/fabric_allocator_test.dir/fabric_allocator_test.cpp.o.d"
  "fabric_allocator_test"
  "fabric_allocator_test.pdb"
  "fabric_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
