# Empty dependencies file for fabric_allocator_test.
# This may be replaced when dependencies are built.
