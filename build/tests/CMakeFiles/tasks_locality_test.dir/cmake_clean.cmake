file(REMOVE_RECURSE
  "CMakeFiles/tasks_locality_test.dir/tasks_locality_test.cpp.o"
  "CMakeFiles/tasks_locality_test.dir/tasks_locality_test.cpp.o.d"
  "tasks_locality_test"
  "tasks_locality_test.pdb"
  "tasks_locality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
