file(REMOVE_RECURSE
  "CMakeFiles/runtime_cache_test.dir/runtime_cache_test.cpp.o"
  "CMakeFiles/runtime_cache_test.dir/runtime_cache_test.cpp.o.d"
  "runtime_cache_test"
  "runtime_cache_test.pdb"
  "runtime_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
