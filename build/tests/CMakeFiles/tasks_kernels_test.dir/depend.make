# Empty dependencies file for tasks_kernels_test.
# This may be replaced when dependencies are built.
