file(REMOVE_RECURSE
  "CMakeFiles/tasks_kernels_test.dir/tasks_kernels_test.cpp.o"
  "CMakeFiles/tasks_kernels_test.dir/tasks_kernels_test.cpp.o.d"
  "tasks_kernels_test"
  "tasks_kernels_test.pdb"
  "tasks_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
