file(REMOVE_RECURSE
  "CMakeFiles/runtime_prefetch_test.dir/runtime_prefetch_test.cpp.o"
  "CMakeFiles/runtime_prefetch_test.dir/runtime_prefetch_test.cpp.o.d"
  "runtime_prefetch_test"
  "runtime_prefetch_test.pdb"
  "runtime_prefetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
