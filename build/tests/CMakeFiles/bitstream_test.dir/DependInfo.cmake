
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bitstream_test.cpp" "tests/CMakeFiles/bitstream_test.dir/bitstream_test.cpp.o" "gcc" "tests/CMakeFiles/bitstream_test.dir/bitstream_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hprc/CMakeFiles/prtr_hprc.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/prtr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/prtr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/prtr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/xd1/CMakeFiles/prtr_xd1.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/prtr_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prtr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/prtr_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/prtr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/prtr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
