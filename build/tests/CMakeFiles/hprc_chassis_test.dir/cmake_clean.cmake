file(REMOVE_RECURSE
  "CMakeFiles/hprc_chassis_test.dir/hprc_chassis_test.cpp.o"
  "CMakeFiles/hprc_chassis_test.dir/hprc_chassis_test.cpp.o.d"
  "hprc_chassis_test"
  "hprc_chassis_test.pdb"
  "hprc_chassis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprc_chassis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
