# Empty compiler generated dependencies file for hprc_chassis_test.
# This may be replaced when dependencies are built.
