# Empty compiler generated dependencies file for runtime_multitask_test.
# This may be replaced when dependencies are built.
