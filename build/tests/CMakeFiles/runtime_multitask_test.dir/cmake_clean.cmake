file(REMOVE_RECURSE
  "CMakeFiles/runtime_multitask_test.dir/runtime_multitask_test.cpp.o"
  "CMakeFiles/runtime_multitask_test.dir/runtime_multitask_test.cpp.o.d"
  "runtime_multitask_test"
  "runtime_multitask_test.pdb"
  "runtime_multitask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_multitask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
