file(REMOVE_RECURSE
  "CMakeFiles/tasks_workload_test.dir/tasks_workload_test.cpp.o"
  "CMakeFiles/tasks_workload_test.dir/tasks_workload_test.cpp.o.d"
  "tasks_workload_test"
  "tasks_workload_test.pdb"
  "tasks_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
