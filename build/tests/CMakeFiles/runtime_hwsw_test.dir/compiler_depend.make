# Empty compiler generated dependencies file for runtime_hwsw_test.
# This may be replaced when dependencies are built.
