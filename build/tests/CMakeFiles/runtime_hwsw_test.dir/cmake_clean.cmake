file(REMOVE_RECURSE
  "CMakeFiles/runtime_hwsw_test.dir/runtime_hwsw_test.cpp.o"
  "CMakeFiles/runtime_hwsw_test.dir/runtime_hwsw_test.cpp.o.d"
  "runtime_hwsw_test"
  "runtime_hwsw_test.pdb"
  "runtime_hwsw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_hwsw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
