file(REMOVE_RECURSE
  "CMakeFiles/bitstream_compress_test.dir/bitstream_compress_test.cpp.o"
  "CMakeFiles/bitstream_compress_test.dir/bitstream_compress_test.cpp.o.d"
  "bitstream_compress_test"
  "bitstream_compress_test.pdb"
  "bitstream_compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
