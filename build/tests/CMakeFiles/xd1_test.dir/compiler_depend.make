# Empty compiler generated dependencies file for xd1_test.
# This may be replaced when dependencies are built.
