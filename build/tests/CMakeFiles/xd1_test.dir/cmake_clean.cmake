file(REMOVE_RECURSE
  "CMakeFiles/xd1_test.dir/xd1_test.cpp.o"
  "CMakeFiles/xd1_test.dir/xd1_test.cpp.o.d"
  "xd1_test"
  "xd1_test.pdb"
  "xd1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xd1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
