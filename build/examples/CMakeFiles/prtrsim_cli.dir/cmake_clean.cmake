file(REMOVE_RECURSE
  "CMakeFiles/prtrsim_cli.dir/prtrsim_cli.cpp.o"
  "CMakeFiles/prtrsim_cli.dir/prtrsim_cli.cpp.o.d"
  "prtrsim_cli"
  "prtrsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prtrsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
