# Empty dependencies file for prtrsim_cli.
# This may be replaced when dependencies are built.
