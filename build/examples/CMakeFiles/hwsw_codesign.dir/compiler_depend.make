# Empty compiler generated dependencies file for hwsw_codesign.
# This may be replaced when dependencies are built.
