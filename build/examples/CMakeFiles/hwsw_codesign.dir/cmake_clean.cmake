file(REMOVE_RECURSE
  "CMakeFiles/hwsw_codesign.dir/hwsw_codesign.cpp.o"
  "CMakeFiles/hwsw_codesign.dir/hwsw_codesign.cpp.o.d"
  "hwsw_codesign"
  "hwsw_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwsw_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
