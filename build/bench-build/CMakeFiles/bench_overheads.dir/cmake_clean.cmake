file(REMOVE_RECURSE
  "../bench/bench_overheads"
  "../bench/bench_overheads.pdb"
  "CMakeFiles/bench_overheads.dir/bench_overheads.cpp.o"
  "CMakeFiles/bench_overheads.dir/bench_overheads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
