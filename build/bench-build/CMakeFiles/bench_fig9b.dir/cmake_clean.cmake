file(REMOVE_RECURSE
  "../bench/bench_fig9b"
  "../bench/bench_fig9b.pdb"
  "CMakeFiles/bench_fig9b.dir/bench_fig9b.cpp.o"
  "CMakeFiles/bench_fig9b.dir/bench_fig9b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
