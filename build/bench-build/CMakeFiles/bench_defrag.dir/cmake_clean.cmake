file(REMOVE_RECURSE
  "../bench/bench_defrag"
  "../bench/bench_defrag.pdb"
  "CMakeFiles/bench_defrag.dir/bench_defrag.cpp.o"
  "CMakeFiles/bench_defrag.dir/bench_defrag.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defrag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
