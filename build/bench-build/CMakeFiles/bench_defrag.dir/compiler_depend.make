# Empty compiler generated dependencies file for bench_defrag.
# This may be replaced when dependencies are built.
