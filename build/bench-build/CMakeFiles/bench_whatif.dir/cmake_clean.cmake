file(REMOVE_RECURSE
  "../bench/bench_whatif"
  "../bench/bench_whatif.pdb"
  "CMakeFiles/bench_whatif.dir/bench_whatif.cpp.o"
  "CMakeFiles/bench_whatif.dir/bench_whatif.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
