# Empty compiler generated dependencies file for bench_appsuite.
# This may be replaced when dependencies are built.
