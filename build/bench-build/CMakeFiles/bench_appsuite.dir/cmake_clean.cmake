file(REMOVE_RECURSE
  "../bench/bench_appsuite"
  "../bench/bench_appsuite.pdb"
  "CMakeFiles/bench_appsuite.dir/bench_appsuite.cpp.o"
  "CMakeFiles/bench_appsuite.dir/bench_appsuite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
