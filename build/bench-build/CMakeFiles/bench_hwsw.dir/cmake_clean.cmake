file(REMOVE_RECURSE
  "../bench/bench_hwsw"
  "../bench/bench_hwsw.pdb"
  "CMakeFiles/bench_hwsw.dir/bench_hwsw.cpp.o"
  "CMakeFiles/bench_hwsw.dir/bench_hwsw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
