file(REMOVE_RECURSE
  "../bench/bench_flows"
  "../bench/bench_flows.pdb"
  "CMakeFiles/bench_flows.dir/bench_flows.cpp.o"
  "CMakeFiles/bench_flows.dir/bench_flows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
