file(REMOVE_RECURSE
  "../bench/bench_profiles"
  "../bench/bench_profiles.pdb"
  "CMakeFiles/bench_profiles.dir/bench_profiles.cpp.o"
  "CMakeFiles/bench_profiles.dir/bench_profiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
