# Empty dependencies file for bench_profiles.
# This may be replaced when dependencies are built.
