file(REMOVE_RECURSE
  "../bench/bench_scrubbing"
  "../bench/bench_scrubbing.pdb"
  "CMakeFiles/bench_scrubbing.dir/bench_scrubbing.cpp.o"
  "CMakeFiles/bench_scrubbing.dir/bench_scrubbing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
