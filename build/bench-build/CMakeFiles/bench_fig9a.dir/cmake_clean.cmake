file(REMOVE_RECURSE
  "../bench/bench_fig9a"
  "../bench/bench_fig9a.pdb"
  "CMakeFiles/bench_fig9a.dir/bench_fig9a.cpp.o"
  "CMakeFiles/bench_fig9a.dir/bench_fig9a.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
