// Tests for the obs metrics registry/snapshot layer and its integration
// with the scenario runner: registry operations, merge/diff semantics,
// JSON emission, hook delivery, and the determinism guarantee that two
// bit-identical runs produce equal snapshots.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

namespace {

using namespace prtr;

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero) {
  obs::Registry reg;
  reg.add("icap.loads");
  reg.add("icap.loads", 4);
  reg.add("icap.bytes_written", 1'000);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterOr("icap.loads"), 5u);
  EXPECT_EQ(snap.counterOr("icap.bytes_written"), 1'000u);
  EXPECT_EQ(snap.counterOr("absent"), 0u);
  EXPECT_EQ(snap.counterOr("absent", 7), 7u);
}

TEST(MetricsRegistry, GaugesOverwrite) {
  obs::Registry reg;
  reg.set("cache.hit_ratio", 0.25);
  reg.set("cache.hit_ratio", 0.75);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.gauge("cache.hit_ratio").has_value());
  EXPECT_DOUBLE_EQ(*snap.gauge("cache.hit_ratio"), 0.75);
  EXPECT_FALSE(snap.gauge("absent").has_value());
}

TEST(MetricsRegistry, HistogramsSummarize) {
  obs::Registry reg;
  reg.observe("executor.prtr.stall_ps", 10);
  reg.observe("executor.prtr.stall_ps", 30);
  reg.observe("executor.prtr.stall_ps", 20);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto it = snap.histograms.find("executor.prtr.stall_ps");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 3u);
  EXPECT_EQ(it->second.sum, 60);
  EXPECT_EQ(it->second.min, 10);
  EXPECT_EQ(it->second.max, 30);
  EXPECT_DOUBLE_EQ(it->second.mean(), 20.0);
}

TEST(MetricsHistogram, QuantilesAreDeterministicAndClampedToTheRange) {
  obs::Registry reg;
  for (int i = 1; i <= 100; ++i) reg.observe("latency_ps", i);
  const obs::HistogramSummary h =
      reg.snapshot().histograms.at("latency_ps");
  // Log2-bucketed nearest-rank quantiles: deterministic, monotone, and
  // always inside [min, max].
  EXPECT_EQ(h.p50(), reg.snapshot().histograms.at("latency_ps").p50());
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_GE(h.p50(), static_cast<double>(h.min));
  EXPECT_LE(h.p99(), static_cast<double>(h.max));
  // A single observation collapses every quantile onto that value.
  obs::Registry one;
  one.observe("x", 42);
  const obs::HistogramSummary single = one.snapshot().histograms.at("x");
  EXPECT_DOUBLE_EQ(single.p50(), 42.0);
  EXPECT_DOUBLE_EQ(single.p99(), 42.0);
  // Empty histogram quantiles are 0 by definition.
  EXPECT_DOUBLE_EQ(obs::HistogramSummary{}.p50(), 0.0);
  // The JSON rendering carries the quantiles.
  const std::string json = reg.snapshot().toJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsSnapshot, MergePrefixesAndCombines) {
  obs::Registry a;
  a.add("icap.loads", 3);
  a.set("hit_ratio", 0.5);
  a.observe("latency_ps", 100);
  obs::Registry b;
  b.add("icap.loads", 2);
  b.set("hit_ratio", 0.9);
  b.observe("latency_ps", 300);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());  // same names: counters add, gauges overwrite
  EXPECT_EQ(merged.counterOr("icap.loads"), 5u);
  EXPECT_DOUBLE_EQ(*merged.gauge("hit_ratio"), 0.9);
  EXPECT_EQ(merged.histograms.at("latency_ps").count, 2u);
  EXPECT_EQ(merged.histograms.at("latency_ps").min, 100);
  EXPECT_EQ(merged.histograms.at("latency_ps").max, 300);

  obs::MetricsSnapshot prefixed;
  prefixed.merge(a.snapshot(), "blade0.");
  EXPECT_EQ(prefixed.counterOr("blade0.icap.loads"), 3u);
  EXPECT_EQ(prefixed.counterOr("icap.loads"), 0u);
  EXPECT_TRUE(prefixed.gauge("blade0.hit_ratio").has_value());
}

TEST(MetricsSnapshot, DiffSubtractsCountersAndKeepsGauges) {
  obs::Registry reg;
  reg.add("calls", 10);
  reg.set("speedup", 2.0);
  const obs::MetricsSnapshot earlier = reg.snapshot();
  reg.add("calls", 5);
  reg.add("new_counter", 1);
  reg.set("speedup", 3.0);
  const obs::MetricsSnapshot later = reg.snapshot();

  const obs::MetricsSnapshot delta = later.diff(earlier);
  EXPECT_EQ(delta.counterOr("calls"), 5u);
  EXPECT_EQ(delta.counterOr("new_counter"), 1u);  // absent earlier = from zero
  EXPECT_DOUBLE_EQ(*delta.gauge("speedup"), 3.0);
}

TEST(MetricsSnapshot, AbsorbFoldsIntoRegistry) {
  obs::Registry source;
  source.add("icap.loads", 2);
  obs::Registry sink;
  sink.add("prtr.icap.loads", 1);
  sink.absorb(source.snapshot(), "prtr.");
  EXPECT_EQ(sink.snapshot().counterOr("prtr.icap.loads"), 3u);
}

TEST(MetricsSnapshot, JsonHasTheThreeSections) {
  obs::Registry reg;
  reg.add("calls", 1);
  reg.set("ratio", 0.5);
  reg.observe("lat", 10);
  const std::string json = reg.snapshot().toJson();
  EXPECT_NE(json.find("\"counters\":{\"calls\":1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

runtime::ScenarioOptions smallScenario() {
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  return so;
}

TEST(ScenarioMetrics, RunScenarioPopulatesTheSnapshot) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  const auto result = runtime::runScenario(registry, workload, smallScenario());

  // Config layer: partial loads moved real bytes through the ICAP.
  EXPECT_GT(result.metrics.counterOr("prtr.config.icap.bytes_written"), 0u);
  EXPECT_GT(result.metrics.counterOr("prtr.config.icap.loads"), 0u);
  // Executor layer: calls and stall time are reported per side.
  EXPECT_EQ(result.metrics.counterOr("prtr.executor.prtr.calls"), 4u);
  EXPECT_EQ(result.metrics.counterOr("frtr.executor.frtr.calls"), 4u);
  EXPECT_GT(result.metrics.counterOr("prtr.executor.prtr.total_ps"), 0u);
  // Scenario layer: gauges mirror the result fields.
  ASSERT_TRUE(result.metrics.gauge("scenario.speedup").has_value());
  EXPECT_DOUBLE_EQ(*result.metrics.gauge("scenario.speedup"), result.speedup);
}

TEST(ScenarioMetrics, CacheCountersTrackHitsAndMisses) {
  // forceMiss (the paper's H = 0 mode) bypasses cache-stat bookkeeping, so
  // cache counters are exercised with a real residency-driven run: two
  // modules alternating in two PRRs stay resident after their first load.
  const auto registry = tasks::makePaperFunctions();
  tasks::Workload alternating{"alt", {}};
  for (int i = 0; i < 6; ++i) {
    alternating.calls.push_back(
        tasks::TaskCall{static_cast<std::size_t>(i % 2),
                        util::Bytes{1'000'000}});
  }
  runtime::ScenarioOptions so;
  so.forceMiss = false;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto result = runtime::runScenario(registry, alternating, so);
  // Queue-driven preparation can convert would-be misses into hits, so the
  // split depends on executor scheduling; the exported access total is the
  // stable contract: every call is classified exactly once.
  EXPECT_EQ(result.metrics.counterOr("prtr.cache.lru.hits") +
                result.metrics.counterOr("prtr.cache.lru.misses"),
            6u);
  EXPECT_TRUE(result.metrics.counters.contains("prtr.cache.lru.evictions"));
}

TEST(ScenarioMetrics, PrtrOnlyLeavesTheFrtrSideEmpty) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions so = smallScenario();
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto result = runtime::runScenario(registry, workload, so);
  EXPECT_GT(result.metrics.counterOr("prtr.executor.prtr.calls"), 0u);
  EXPECT_EQ(result.metrics.counterOr("frtr.executor.frtr.calls"), 0u);
}

TEST(ScenarioMetrics, HooksSinkReceivesTheRunSnapshot) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  obs::Registry sink;
  runtime::ScenarioOptions so = smallScenario();
  so.hooks.metrics = &sink;
  const auto result = runtime::runScenario(registry, workload, so);
  EXPECT_EQ(sink.snapshot(), result.metrics);
}

TEST(ScenarioMetrics, TwoIdenticalRunsProduceEqualSnapshots) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 6, util::Bytes{2'000'000});
  runtime::ScenarioOptions so = smallScenario();
  so.cachePolicy = runtime::CachePolicy::kLru;
  so.prefetcherKind = runtime::PrefetcherKind::kMarkov;
  const auto first = runtime::runScenario(registry, workload, so);
  const auto second = runtime::runScenario(registry, workload, so);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_FALSE(first.metrics.empty());
  // The rendered forms are deterministic too.
  EXPECT_EQ(first.metrics.toString(), second.metrics.toString());
  EXPECT_EQ(first.metrics.toJson(), second.metrics.toJson());
}

}  // namespace
