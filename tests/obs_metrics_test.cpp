// Tests for the obs metrics layer and its integration with the scenario
// runner: MetricTable interning, id-indexed registry operations, slot
// layout, merge/diff semantics, JSON emission, the deprecated string shims,
// hook delivery, and the determinism guarantee that two bit-identical runs
// produce equal snapshots.
#include <gtest/gtest.h>

#include <string_view>

#include "obs/metrics.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

namespace {

using namespace prtr;

obs::MetricTable& table() { return obs::MetricTable::global(); }

// The hot slots are cache-line-aligned and cache-line-granular, so two
// adjacent slots never share a line (the property that makes per-worker
// shards contention-free).
static_assert(alignof(obs::CounterSlot) == 64);
static_assert(sizeof(obs::CounterSlot) == 64);
static_assert(alignof(obs::GaugeSlot) == 64);
static_assert(sizeof(obs::GaugeSlot) == 64);
static_assert(alignof(obs::HistogramSlot) == 64);
static_assert(sizeof(obs::HistogramSlot) % 64 == 0);

TEST(MetricTable, InternLookupRoundTrip) {
  const obs::CounterId c = table().counter("test.table.roundtrip.counter");
  const obs::GaugeId g = table().gauge("test.table.roundtrip.gauge");
  const obs::HistogramId h = table().histogram("test.table.roundtrip.hist");
  ASSERT_TRUE(c.valid());
  ASSERT_TRUE(g.valid());
  ASSERT_TRUE(h.valid());
  // Idempotent: the same name always interns to the same id.
  EXPECT_EQ(table().counter("test.table.roundtrip.counter"), c);
  EXPECT_EQ(table().gauge("test.table.roundtrip.gauge"), g);
  EXPECT_EQ(table().histogram("test.table.roundtrip.hist"), h);
  // Names round-trip through the id.
  EXPECT_EQ(table().counterName(c), "test.table.roundtrip.counter");
  EXPECT_EQ(table().gaugeName(g), "test.table.roundtrip.gauge");
  EXPECT_EQ(table().histogramName(h), "test.table.roundtrip.hist");
  // find* locates interned names without interning new ones.
  EXPECT_EQ(table().findCounter("test.table.roundtrip.counter"), c);
  EXPECT_FALSE(table().findCounter("test.table.never-interned").valid());
  EXPECT_FALSE(table().findGauge("test.table.never-interned").valid());
  EXPECT_FALSE(table().findHistogram("test.table.never-interned").valid());
}

TEST(MetricTable, KindsHaveIndependentIdSpaces) {
  // A counter and a gauge may share a dotted name; their ids are unrelated
  // and the registries keep the series separate.
  const obs::CounterId c = table().counter("test.table.shared_name");
  const obs::GaugeId g = table().gauge("test.table.shared_name");
  obs::Registry reg;
  reg.add(c, 2);
  reg.set(g, 0.5);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterOr("test.table.shared_name"), 2u);
  EXPECT_DOUBLE_EQ(*snap.gauge("test.table.shared_name"), 0.5);
}

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero) {
  const obs::CounterId loads = table().counter("icap.loads");
  const obs::CounterId bytes = table().counter("icap.bytes_written");
  obs::Registry reg;
  reg.add(loads);
  reg.add(loads, 4);
  reg.add(bytes, 1'000);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterOr("icap.loads"), 5u);
  EXPECT_EQ(snap.counterOr("icap.bytes_written"), 1'000u);
  EXPECT_EQ(snap.counterOr("absent"), 0u);
  EXPECT_EQ(snap.counterOr("absent", 7), 7u);
}

TEST(MetricsRegistry, GaugesOverwrite) {
  const obs::GaugeId ratio = table().gauge("cache.hit_ratio");
  obs::Registry reg;
  reg.set(ratio, 0.25);
  reg.set(ratio, 0.75);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.gauge("cache.hit_ratio").has_value());
  EXPECT_DOUBLE_EQ(*snap.gauge("cache.hit_ratio"), 0.75);
  EXPECT_FALSE(snap.gauge("absent").has_value());
}

TEST(MetricsRegistry, HistogramsSummarize) {
  const obs::HistogramId stall = table().histogram("executor.prtr.stall_ps");
  obs::Registry reg;
  reg.observe(stall, 10);
  reg.observe(stall, 30);
  reg.observe(stall, 20);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto it = snap.histograms.find("executor.prtr.stall_ps");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 3u);
  EXPECT_EQ(it->second.sum, 60);
  EXPECT_EQ(it->second.min, 10);
  EXPECT_EQ(it->second.max, 30);
  EXPECT_DOUBLE_EQ(it->second.mean(), 20.0);
}

TEST(MetricsRegistry, OnlyTouchedSlotsMaterialize) {
  // Interning a name process-wide must not make it appear in every
  // registry's snapshot: untouched slots stay out.
  const obs::CounterId touched = table().counter("test.touched.yes");
  [[maybe_unused]] const obs::CounterId untouched =
      table().counter("test.touched.no");
  obs::Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.add(touched, 0);  // a zero-delta add still marks the slot recorded
  EXPECT_FALSE(reg.empty());
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.contains("test.touched.yes"));
  EXPECT_FALSE(snap.counters.contains("test.touched.no"));
}

TEST(MetricsRegistry, TakeSnapshotMovesOutAndResets) {
  const obs::CounterId calls = table().counter("test.take.calls");
  const obs::GaugeId ratio = table().gauge("test.take.ratio");
  const obs::HistogramId lat = table().histogram("test.take.lat");
  obs::Registry reg;
  reg.add(calls, 3);
  reg.set(ratio, 0.5);
  reg.observe(lat, 7);
  const obs::MetricsSnapshot first = reg.takeSnapshot();
  EXPECT_EQ(first.counterOr("test.take.calls"), 3u);
  EXPECT_TRUE(reg.empty());
  EXPECT_TRUE(reg.snapshot().empty());
  // The registry is reusable after the move-out, from clean state.
  reg.add(calls, 2);
  EXPECT_EQ(reg.takeSnapshot().counterOr("test.take.calls"), 2u);
}

TEST(MetricsHistogram, QuantilesAreDeterministicAndClampedToTheRange) {
  const obs::HistogramId latency = table().histogram("latency_ps");
  obs::Registry reg;
  for (int i = 1; i <= 100; ++i) reg.observe(latency, i);
  const obs::HistogramSummary h =
      reg.snapshot().histograms.at("latency_ps");
  // Log2-bucketed nearest-rank quantiles: deterministic, monotone, and
  // always inside [min, max].
  EXPECT_EQ(h.p50(), reg.snapshot().histograms.at("latency_ps").p50());
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_GE(h.p50(), static_cast<double>(h.min));
  EXPECT_LE(h.p99(), static_cast<double>(h.max));
  // A single observation collapses every quantile onto that value.
  obs::Registry one;
  one.observe(table().histogram("x"), 42);
  const obs::HistogramSummary single = one.snapshot().histograms.at("x");
  EXPECT_DOUBLE_EQ(single.p50(), 42.0);
  EXPECT_DOUBLE_EQ(single.p99(), 42.0);
  // Empty histogram quantiles are 0 by definition.
  EXPECT_DOUBLE_EQ(obs::HistogramSummary{}.p50(), 0.0);
  // The JSON rendering carries the quantiles.
  const std::string json = reg.snapshot().toJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsSnapshot, MergePrefixesAndCombines) {
  const obs::CounterId loads = table().counter("icap.loads");
  const obs::GaugeId ratio = table().gauge("hit_ratio");
  const obs::HistogramId latency = table().histogram("latency_ps");
  obs::Registry a;
  a.add(loads, 3);
  a.set(ratio, 0.5);
  a.observe(latency, 100);
  obs::Registry b;
  b.add(loads, 2);
  b.set(ratio, 0.9);
  b.observe(latency, 300);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());  // same names: counters add, gauges overwrite
  EXPECT_EQ(merged.counterOr("icap.loads"), 5u);
  EXPECT_DOUBLE_EQ(*merged.gauge("hit_ratio"), 0.9);
  EXPECT_EQ(merged.histograms.at("latency_ps").count, 2u);
  EXPECT_EQ(merged.histograms.at("latency_ps").min, 100);
  EXPECT_EQ(merged.histograms.at("latency_ps").max, 300);

  obs::MetricsSnapshot prefixed;
  prefixed.merge(a.snapshot(), "blade0.");
  EXPECT_EQ(prefixed.counterOr("blade0.icap.loads"), 3u);
  EXPECT_EQ(prefixed.counterOr("icap.loads"), 0u);
  EXPECT_TRUE(prefixed.gauge("blade0.hit_ratio").has_value());
}

TEST(MetricsSnapshot, MoveMergeMatchesCopyMerge) {
  const obs::CounterId loads = table().counter("icap.loads");
  const obs::GaugeId ratio = table().gauge("hit_ratio");
  const obs::HistogramId latency = table().histogram("latency_ps");
  obs::Registry a;
  a.add(loads, 3);
  a.set(ratio, 0.5);
  a.observe(latency, 100);
  obs::Registry b;
  b.add(loads, 2);
  b.set(ratio, 0.9);
  b.observe(latency, 300);

  for (const std::string prefix : {std::string{}, std::string{"blade1."}}) {
    obs::MetricsSnapshot viaCopy = a.snapshot();
    viaCopy.merge(b.snapshot(), prefix);
    obs::MetricsSnapshot viaMove = a.snapshot();
    viaMove.merge(b.takeSnapshot(), prefix);
    EXPECT_EQ(viaCopy, viaMove) << "prefix=" << prefix;
    EXPECT_EQ(viaCopy.toJson(), viaMove.toJson());
    // Restock b for the next prefix.
    b.add(loads, 2);
    b.set(ratio, 0.9);
    b.observe(latency, 300);
  }
  // Moving into an empty snapshot is the wholesale-move fast path.
  obs::MetricsSnapshot empty;
  empty.merge(a.takeSnapshot());
  EXPECT_EQ(empty.counterOr("icap.loads"), 3u);
}

TEST(MetricsSnapshot, DiffSubtractsCountersAndKeepsGauges) {
  const obs::CounterId calls = table().counter("calls");
  const obs::CounterId fresh = table().counter("new_counter");
  const obs::GaugeId speedup = table().gauge("speedup");
  obs::Registry reg;
  reg.add(calls, 10);
  reg.set(speedup, 2.0);
  const obs::MetricsSnapshot earlier = reg.snapshot();
  reg.add(calls, 5);
  reg.add(fresh, 1);
  reg.set(speedup, 3.0);
  const obs::MetricsSnapshot later = reg.snapshot();

  const obs::MetricsSnapshot delta = later.diff(earlier);
  EXPECT_EQ(delta.counterOr("calls"), 5u);
  EXPECT_EQ(delta.counterOr("new_counter"), 1u);  // absent earlier = from zero
  EXPECT_DOUBLE_EQ(*delta.gauge("speedup"), 3.0);
}

TEST(MetricsSnapshot, AbsorbFoldsIntoRegistry) {
  obs::Registry source;
  source.add(table().counter("icap.loads"), 2);
  obs::Registry sink;
  sink.add(table().counter("prtr.icap.loads"), 1);
  sink.absorb(source.snapshot(), "prtr.");
  EXPECT_EQ(sink.snapshot().counterOr("prtr.icap.loads"), 3u);
}

TEST(MetricsSnapshot, AbsorbAdditiveSkipsGauges) {
  obs::Registry source;
  source.add(table().counter("test.additive.calls"), 2);
  source.set(table().gauge("test.additive.ratio"), 0.5);
  source.observe(table().histogram("test.additive.lat"), 10);
  obs::Registry sink;
  sink.absorbAdditive(source.snapshot(), "pfx.");
  const obs::MetricsSnapshot snap = sink.snapshot();
  EXPECT_EQ(snap.counterOr("pfx.test.additive.calls"), 2u);
  EXPECT_EQ(snap.histograms.at("pfx.test.additive.lat").count, 1u);
  EXPECT_FALSE(snap.gauge("pfx.test.additive.ratio").has_value());
}

TEST(MetricsSnapshot, JsonHasTheThreeSections) {
  obs::Registry reg;
  reg.add(table().counter("calls"), 1);
  reg.set(table().gauge("ratio"), 0.5);
  reg.observe(table().histogram("lat"), 10);
  const std::string json = reg.snapshot().toJson();
  EXPECT_NE(json.find("\"counters\":{\"calls\":1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// The PR 4 string shims (add/set/observe by name, deprecated since PR 7)
// are removed: recording now requires an interned id. These static_asserts
// pin the removal — if a string overload reappears, this test fails to
// document it before any caller can depend on it again.
// Dependent forms so the negative checks SFINAE instead of hard-erroring.
template <typename R>
concept AddsByStringName =
    requires(R r, std::string_view name) { r.add(name, std::uint64_t{2}); };
template <typename R>
concept SetsByStringName =
    requires(R r, std::string_view name) { r.set(name, 0.25); };
template <typename R>
concept ObservesByStringName =
    requires(R r, std::string_view name) { r.observe(name, std::int64_t{10}); };

TEST(MetricsRegistry, StringRecordingShimsAreGone) {
  static_assert(!AddsByStringName<obs::Registry>);
  static_assert(!SetsByStringName<obs::Registry>);
  static_assert(!ObservesByStringName<obs::Registry>);
  // The replacement stays: intern once, record by id.
  obs::Registry reg;
  reg.add(table().counter("test.shim.calls"), 2);
  EXPECT_EQ(reg.snapshot().counterOr("test.shim.calls"), 2u);
}

runtime::ScenarioOptions smallScenario() {
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  return so;
}

TEST(ScenarioMetrics, RunScenarioPopulatesTheSnapshot) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  const auto result = runtime::runScenario(registry, workload, smallScenario());

  // Config layer: partial loads moved real bytes through the ICAP.
  EXPECT_GT(result.metrics.counterOr("prtr.config.icap.bytes_written"), 0u);
  EXPECT_GT(result.metrics.counterOr("prtr.config.icap.loads"), 0u);
  // Executor layer: calls and stall time are reported per side.
  EXPECT_EQ(result.metrics.counterOr("prtr.executor.prtr.calls"), 4u);
  EXPECT_EQ(result.metrics.counterOr("frtr.executor.frtr.calls"), 4u);
  EXPECT_GT(result.metrics.counterOr("prtr.executor.prtr.total_ps"), 0u);
  // Scenario layer: gauges mirror the result fields.
  ASSERT_TRUE(result.metrics.gauge("scenario.speedup").has_value());
  EXPECT_DOUBLE_EQ(*result.metrics.gauge("scenario.speedup"), result.speedup);
}

TEST(ScenarioMetrics, CacheCountersTrackHitsAndMisses) {
  // forceMiss (the paper's H = 0 mode) bypasses cache-stat bookkeeping, so
  // cache counters are exercised with a real residency-driven run: two
  // modules alternating in two PRRs stay resident after their first load.
  const auto registry = tasks::makePaperFunctions();
  tasks::Workload alternating{"alt", {}};
  for (int i = 0; i < 6; ++i) {
    alternating.calls.push_back(
        tasks::TaskCall{static_cast<std::size_t>(i % 2),
                        util::Bytes{1'000'000}});
  }
  runtime::ScenarioOptions so;
  so.forceMiss = false;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto result = runtime::runScenario(registry, alternating, so);
  // Queue-driven preparation can convert would-be misses into hits, so the
  // split depends on executor scheduling; the exported access total is the
  // stable contract: every call is classified exactly once.
  EXPECT_EQ(result.metrics.counterOr("prtr.cache.lru.hits") +
                result.metrics.counterOr("prtr.cache.lru.misses"),
            6u);
  EXPECT_TRUE(result.metrics.counters.contains("prtr.cache.lru.evictions"));
}

TEST(ScenarioMetrics, PrtrOnlyLeavesTheFrtrSideEmpty) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions so = smallScenario();
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto result = runtime::runScenario(registry, workload, so);
  EXPECT_GT(result.metrics.counterOr("prtr.executor.prtr.calls"), 0u);
  EXPECT_EQ(result.metrics.counterOr("frtr.executor.frtr.calls"), 0u);
}

TEST(ScenarioMetrics, HooksSinkReceivesTheRunSnapshot) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  obs::Registry sink;
  runtime::ScenarioOptions so = smallScenario();
  so.hooks.metrics = &sink;
  const auto result = runtime::runScenario(registry, workload, so);
  EXPECT_EQ(sink.snapshot(), result.metrics);
}

TEST(ScenarioMetrics, ShardedSinkReceivesTheAdditiveSeries) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  obs::ShardedRegistry sharded;
  runtime::ScenarioOptions so = smallScenario();
  so.hooks.shardedMetrics = &sharded;
  const auto result = runtime::runScenario(registry, workload, so);
  const obs::MetricsSnapshot merged = sharded.mergedSnapshot();
  // Counters and histograms land; gauges (schedule-dependent under
  // sharding) are deliberately dropped.
  EXPECT_EQ(merged.counters, result.metrics.counters);
  EXPECT_EQ(merged.histograms, result.metrics.histograms);
  EXPECT_TRUE(merged.gauges.empty());
}

TEST(ScenarioMetrics, TwoIdenticalRunsProduceEqualSnapshots) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 6, util::Bytes{2'000'000});
  runtime::ScenarioOptions so = smallScenario();
  so.cachePolicy = runtime::CachePolicy::kLru;
  so.prefetcherKind = runtime::PrefetcherKind::kMarkov;
  const auto first = runtime::runScenario(registry, workload, so);
  const auto second = runtime::runScenario(registry, workload, so);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_FALSE(first.metrics.empty());
  // The rendered forms are deterministic too.
  EXPECT_EQ(first.metrics.toString(), second.metrics.toString());
  EXPECT_EQ(first.metrics.toJson(), second.metrics.toJson());
}

}  // namespace
