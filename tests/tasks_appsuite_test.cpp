// Tests for the application-suite workload builders.
#include <gtest/gtest.h>

#include "runtime/scenario.hpp"
#include "tasks/appsuite.hpp"
#include "util/error.hpp"

namespace prtr::tasks {
namespace {

TEST(AppSuiteTest, RemoteSensingPipelineStructure) {
  const auto registry = makeExtendedFunctions();
  util::Rng rng{1};
  const Application app =
      makeRemoteSensingApp(registry, 10, util::Bytes{1'000'000}, rng);
  // Six fixed stages per scene plus optional second cleanup (2 more).
  EXPECT_GE(app.workload.callCount(), 60u);
  EXPECT_LE(app.workload.callCount(), 80u);
  // The pipeline starts with smoothing on every scene.
  EXPECT_EQ(app.workload.calls[0].functionIndex,
            *registry.indexOf(registry.byName("smoothing").id));
  EXPECT_EQ(app.workload.calls[0].dataBytes.count(), 1'000'000u);
}

TEST(AppSuiteTest, HyperspectralBandCounts) {
  const auto registry = makeExtendedFunctions();
  util::Rng rng{2};
  const Application app =
      makeHyperspectralApp(registry, 3, 8, util::Bytes{400'000}, rng);
  // 2 calls per band minimum, 3*8 = 24 bands.
  EXPECT_GE(app.workload.callCount(), 48u);
  // Pyramid level 2 runs on quarter-size data.
  bool sawQuarter = false;
  for (const TaskCall& call : app.workload.calls) {
    if (call.dataBytes.count() == 100'000u) sawQuarter = true;
  }
  EXPECT_TRUE(sawQuarter);
}

TEST(AppSuiteTest, TargetRecognitionBranchingRate) {
  const auto registry = makeExtendedFunctions();
  util::Rng rng{3};
  const Application app = makeTargetRecognitionApp(
      registry, 1000, util::Bytes{100'000}, 0.25, rng);
  // 2 calls/frame + 3 extra on ~25% of frames: expect ~2750 +- noise.
  const double perFrame = static_cast<double>(app.workload.callCount()) / 1000.0;
  EXPECT_NEAR(perFrame, 2.75, 0.15);
  EXPECT_THROW(
      makeTargetRecognitionApp(registry, 10, util::Bytes{1}, 1.5, rng),
      util::DomainError);
}

TEST(AppSuiteTest, SuiteIsDeterministicPerSeed) {
  const auto registry = makeExtendedFunctions();
  util::Rng a{77};
  util::Rng b{77};
  const auto suiteA = makeApplicationSuite(registry, a);
  const auto suiteB = makeApplicationSuite(registry, b);
  ASSERT_EQ(suiteA.size(), suiteB.size());
  for (std::size_t i = 0; i < suiteA.size(); ++i) {
    EXPECT_EQ(suiteA[i].workload.calls, suiteB[i].workload.calls);
  }
}

TEST(AppSuiteTest, RequiresExtendedLibrary) {
  // The paper-only library lacks gaussian/threshold/morphology.
  const auto paperOnly = makePaperFunctions();
  util::Rng rng{4};
  EXPECT_THROW(makeRemoteSensingApp(paperOnly, 1, util::Bytes{100}, rng),
               util::DomainError);
}

TEST(AppSuiteTest, PipelinedAppsGetHighHitRatios) {
  // Hyperspectral processing uses a 3-module working set; on the quad
  // layout everything stays resident after warm-up.
  const auto registry = makeExtendedFunctions();
  util::Rng rng{5};
  const Application app =
      makeHyperspectralApp(registry, 3, 10, util::Bytes{2'000'000}, rng);
  runtime::ScenarioOptions so;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  so.layout = xd1::Layout::kQuadPrr;
  so.forceMiss = false;
  so.prepare = runtime::PrepareSource::kQueue;
  const auto report = runtime::runScenario(registry, app.workload, so).prtr;
  EXPECT_GT(report.hitRatio(), 0.8);
  EXPECT_LE(report.configurations, 3u);
}

TEST(AppSuiteTest, WideWorkingSetThrashesSmallCaches) {
  // Remote sensing cycles 5 modules: over 4 slots LRU degenerates (the
  // classic cyclic pathology), so the hit ratio stays low -- exactly why
  // the paper's section-5 granularity recommendation matters.
  const auto registry = makeExtendedFunctions();
  util::Rng rng{5};
  const Application app =
      makeRemoteSensingApp(registry, 8, util::Bytes{5'000'000}, rng);
  runtime::ScenarioOptions so;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  so.layout = xd1::Layout::kQuadPrr;
  so.forceMiss = false;
  so.prepare = runtime::PrepareSource::kQueue;
  const auto lru = runtime::runScenario(registry, app.workload, so).prtr;
  EXPECT_LT(lru.hitRatio(), 0.5);
  // Belady sidesteps the pathology.
  so.cachePolicy = runtime::CachePolicy::kBelady;
  const auto belady = runtime::runScenario(registry, app.workload, so).prtr;
  EXPECT_GT(belady.hitRatio(), lru.hitRatio());
}

}  // namespace
}  // namespace prtr::tasks
