// obs::TimeSeries contract tests: dense window growth indexed by simulated
// time, element-wise fold across cells, counter-track rendering, and the
// multi-window SLO burn-rate evaluation (fast window catches cliffs, slow
// window suppresses blips, both must trip for a breach).
#include <gtest/gtest.h>

#include "obs/timeseries.hpp"
#include "util/error.hpp"

namespace prtr {
namespace {

/// Series with `windowPs` = 100 where window i received `good[i]` good and
/// `bad[i]` bad decisions.
obs::TimeSeries makeSeries(const std::vector<std::uint64_t>& good,
                           const std::vector<std::uint64_t>& bad) {
  obs::TimeSeries series{100};
  for (std::size_t i = 0; i < good.size(); ++i) {
    const std::int64_t atPs = static_cast<std::int64_t>(i) * 100;
    series.at(atPs).good = good[i];
    series.at(atPs).bad = i < bad.size() ? bad[i] : 0;
  }
  return series;
}

TEST(TimeSeriesTest, AtGrowsDenselyAndClampsNegativeTime) {
  obs::TimeSeries series{100};
  EXPECT_TRUE(series.empty());
  series.at(250).completed = 7;
  ASSERT_EQ(series.windows().size(), 3u) << "windows 0..2 must exist";
  EXPECT_EQ(series.windows()[2].completed, 7u);
  EXPECT_EQ(series.windows()[0].completed, 0u);
  series.at(-5).shed = 1;  // pre-epoch events land in window 0
  EXPECT_EQ(series.windows()[0].shed, 1u);
  EXPECT_EQ(series.windowPs(), 100);
}

TEST(TimeSeriesTest, FoldAccumulatesElementWiseAndGrows) {
  obs::TimeSeries into{100};
  into.at(0).good = 1;
  obs::TimeSeries from{100};
  from.at(0).good = 2;
  from.at(150).bad = 3;
  from.at(150).retries = 4;
  into.fold(from);
  ASSERT_EQ(into.windows().size(), 2u);
  EXPECT_EQ(into.windows()[0].good, 3u);
  EXPECT_EQ(into.windows()[1].bad, 3u);
  EXPECT_EQ(into.windows()[1].retries, 4u);
  EXPECT_EQ(into.totalGood(), 3u);
  EXPECT_EQ(into.totalBad(), 3u);
}

TEST(TimeSeriesTest, FoldRejectsMismatchedWindowWidths) {
  obs::TimeSeries a{100};
  obs::TimeSeries b{200};
  EXPECT_THROW(a.fold(b), util::DomainError);
}

TEST(TimeSeriesTest, CounterTracksRenderOneSamplePerWindow) {
  obs::TimeSeries series{100};
  series.at(0).completed = 5;
  series.at(0).good = 4;
  series.at(0).bad = 1;
  series.at(120).shed = 2;  // no decided traffic: bad_fraction must be 0
  const auto tracks = series.counterTracks("fleet");
  ASSERT_EQ(tracks.size(), 6u);
  EXPECT_EQ(tracks[0].name, "fleet.throughput");
  EXPECT_EQ(tracks[1].name, "fleet.shed");
  EXPECT_EQ(tracks[5].name, "fleet.bad_fraction");
  ASSERT_EQ(tracks[0].samples.size(), 2u);
  EXPECT_EQ(tracks[0].samples[0].at_ps, 0);
  EXPECT_EQ(tracks[0].samples[1].at_ps, 100);
  EXPECT_DOUBLE_EQ(tracks[0].samples[0].value, 5.0);
  EXPECT_DOUBLE_EQ(tracks[1].samples[1].value, 2.0);
  EXPECT_DOUBLE_EQ(tracks[5].samples[0].value, 0.2);
  EXPECT_DOUBLE_EQ(tracks[5].samples[1].value, 0.0);
}

TEST(SloEvaluateTest, EmptySeriesAndExhaustedBudgetBothPass) {
  const obs::SloSpec spec;  // objective 0.999
  const obs::SloResult empty = evaluateSlo(obs::TimeSeries{100}, spec);
  EXPECT_TRUE(empty.pass);
  EXPECT_EQ(empty.breachWindows, 0u);
  EXPECT_DOUBLE_EQ(empty.goodFraction, 1.0) << "no traffic counts as good";

  obs::SloSpec degenerate;
  degenerate.objective = 1.0;  // zero error budget: the gate disables itself
  const obs::SloResult noBudget =
      evaluateSlo(makeSeries({0, 0}, {10, 10}), degenerate);
  EXPECT_TRUE(noBudget.pass);
  EXPECT_DOUBLE_EQ(noBudget.goodFraction, 0.0);
}

TEST(SloEvaluateTest, AllGoodTrafficPassesWithZeroBurn) {
  obs::SloSpec spec;
  spec.objective = 0.9;
  const obs::SloResult result =
      evaluateSlo(makeSeries({100, 100, 100, 100}, {}), spec);
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.good, 400u);
  EXPECT_EQ(result.bad, 0u);
  EXPECT_DOUBLE_EQ(result.goodFraction, 1.0);
  EXPECT_DOUBLE_EQ(result.fastBurnMax, 0.0);
  EXPECT_DOUBLE_EQ(result.slowBurnMax, 0.0);
}

TEST(SloEvaluateTest, SustainedBadnessBreachesBothWindows) {
  obs::SloSpec spec;
  spec.objective = 0.9;  // budget 0.1
  spec.fastWindows = 1;
  spec.slowWindows = 4;
  spec.fastBurn = 5.0;
  spec.slowBurn = 3.0;
  // Every window is all-bad: burn = 1.0 / 0.1 = 10 in both windows.
  const obs::SloResult result =
      evaluateSlo(makeSeries({0, 0, 0, 0}, {10, 10, 10, 10}), spec);
  EXPECT_FALSE(result.pass);
  EXPECT_EQ(result.breachWindows, 4u);
  EXPECT_DOUBLE_EQ(result.fastBurnMax, 10.0);
  EXPECT_DOUBLE_EQ(result.slowBurnMax, 10.0);
  EXPECT_DOUBLE_EQ(result.goodFraction, 0.0);
}

TEST(SloEvaluateTest, BriefBlipTripsFastWindowButNotSlow) {
  obs::SloSpec spec;
  spec.objective = 0.9;  // budget 0.1
  spec.fastWindows = 1;
  spec.slowWindows = 4;
  spec.fastBurn = 5.0;
  spec.slowBurn = 3.0;
  // One all-bad window surrounded by heavy good traffic: the fast burn
  // spikes to 10 but the trailing slow window dilutes the blip below 3, so
  // no breach is recorded — the whole point of the multi-window alert.
  const obs::SloResult result =
      evaluateSlo(makeSeries({100, 0, 100, 100}, {0, 10, 0, 0}), spec);
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.breachWindows, 0u);
  EXPECT_DOUBLE_EQ(result.fastBurnMax, 10.0);
  EXPECT_LT(result.slowBurnMax, 3.0);
  EXPECT_GT(result.slowBurnMax, 0.0);
}

TEST(SloEvaluateTest, BurnIsBadFractionOverBudget) {
  obs::SloSpec spec;
  spec.objective = 0.99;  // budget 0.01
  spec.fastWindows = 1;
  spec.slowWindows = 1;
  const obs::SloResult result = evaluateSlo(makeSeries({95}, {5}), spec);
  EXPECT_NEAR(result.fastBurnMax, 0.05 / 0.01, 1e-9);
  EXPECT_NEAR(result.slowBurnMax, 0.05 / 0.01, 1e-9);
  EXPECT_DOUBLE_EQ(result.goodFraction, 0.95);
}

}  // namespace
}  // namespace prtr
