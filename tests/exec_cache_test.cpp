// Tests for the exec artifact cache: key building, hit/miss accounting,
// LRU eviction under a byte budget (with handles surviving eviction), and
// single-flight concurrent builds.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/artifact_cache.hpp"
#include "fabric/floorplan.hpp"
#include "util/error.hpp"

namespace prtr::exec {
namespace {

/// A small synthetic bitstream whose payload encodes `seed`.
bitstream::Bitstream makeStream(std::uint8_t seed, std::size_t bytes = 64) {
  bitstream::Header header;
  header.type = bitstream::StreamType::kPartial;
  header.moduleId = seed;
  return bitstream::Bitstream{header,
                              std::vector<std::uint8_t>(bytes, seed)};
}

TEST(KeyBuilderTest, DistinctInputsYieldDistinctKeys) {
  const auto k1 = KeyBuilder{}.add("floorplan").add(std::uint64_t{1}).value();
  const auto k2 = KeyBuilder{}.add("floorplan").add(std::uint64_t{2}).value();
  const auto k3 = KeyBuilder{}.add("bitstream").add(std::uint64_t{1}).value();
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  // Same inputs reproduce the same key (content addressing).
  EXPECT_EQ(k1, KeyBuilder{}.add("floorplan").add(std::uint64_t{1}).value());
  // Field lengths are part of the address: "ab"+"c" != "a"+"bc".
  EXPECT_NE(KeyBuilder{}.add("ab").add("c").value(),
            KeyBuilder{}.add("a").add("bc").value());
  EXPECT_NE(KeyBuilder{}.add(1.5).value(), KeyBuilder{}.add(2.5).value());
}

TEST(ArtifactCacheTest, MissThenHitCounts) {
  ArtifactCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return makeStream(7);
  };
  const auto first = cache.bitstream(1, build);
  const auto second = cache.bitstream(1, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->header().moduleId, 7u);
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(ArtifactCacheTest, DistinctKeysBuildSeparately) {
  ArtifactCache cache;
  const auto a = cache.bitstream(1, [] { return makeStream(1); });
  const auto b = cache.bitstream(2, [] { return makeStream(2); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits roughly two 64-byte streams (plus header overhead).
  ArtifactCache cache{2 * (64 + 64)};
  const auto a = cache.bitstream(1, [] { return makeStream(1); });
  const auto b = cache.bitstream(2, [] { return makeStream(2); });
  // Touch key 1 so key 2 is the LRU victim when key 3 arrives.
  (void)cache.bitstream(1, [] { return makeStream(1); });
  const auto c = cache.bitstream(3, [] { return makeStream(3); });
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 2 * (64 + 64));
  // The evicted artifact's handle stays valid for its holders.
  EXPECT_EQ(b->header().moduleId, 2u);
  EXPECT_EQ(b->bytes().size(), 64u);
  // Key 2 was evicted, so asking again rebuilds (a new miss).
  int rebuilds = 0;
  const auto b2 = cache.bitstream(2, [&] {
    ++rebuilds;
    return makeStream(2);
  });
  EXPECT_EQ(rebuilds, 1);
  EXPECT_NE(b2.get(), b.get());
  // Key 1 was touched most recently before 3; it may or may not have
  // survived the later insert, but the cache never exceeds its budget.
  EXPECT_LE(cache.stats().bytes, 2 * (64 + 64));
  (void)a;
  (void)c;
}

TEST(ArtifactCacheTest, ClearDropsEntriesButKeepsHandles) {
  ArtifactCache cache;
  const auto a = cache.bitstream(1, [] { return makeStream(9); });
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(a->header().moduleId, 9u);
}

TEST(ArtifactCacheTest, FloorplanEntriesAreCachedToo) {
  ArtifactCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return fabric::makeDualPrrLayout();
  };
  const auto p1 = cache.floorplan(42, build);
  const auto p2 = cache.floorplan(42, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(p1.get(), p2.get());
}

TEST(ArtifactCacheTest, BuilderExceptionPropagatesAndCachesNothing) {
  ArtifactCache cache;
  EXPECT_THROW(
      (void)cache.bitstream(
          5, []() -> bitstream::Bitstream {
            throw util::DomainError{"bad build"};
          }),
      util::DomainError);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key is retryable after a failed build.
  const auto ok = cache.bitstream(5, [] { return makeStream(5); });
  EXPECT_EQ(ok->header().moduleId, 5u);
}

TEST(ArtifactCacheTest, ConcurrentGetOrBuildRunsBuilderOnce) {
  ArtifactCache cache;
  std::atomic<int> builds{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const bitstream::Bitstream>> results(8);
  threads.reserve(8);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      results[t] = cache.bitstream(99, [&] {
        ++builds;
        // Widen the race window so waiters really pile up on the latch.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return makeStream(99);
      });
    });
  }
  go = true;
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());
  }
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

TEST(ArtifactCacheTest, MetricsSnapshotExposesCacheCounters) {
  ArtifactCache cache;
  (void)cache.bitstream(1, [] { return makeStream(1); });
  (void)cache.bitstream(1, [] { return makeStream(1); });
  const obs::MetricsSnapshot snap = cache.metricsSnapshot();
  EXPECT_EQ(snap.counters.at("exec.cache.hits"), 1u);
  EXPECT_EQ(snap.counters.at("exec.cache.misses"), 1u);
  EXPECT_TRUE(snap.counters.count("exec.cache.evictions"));
  EXPECT_TRUE(snap.counters.count("exec.cache.bytes"));
  EXPECT_TRUE(snap.counters.count("exec.cache.entries"));
  EXPECT_DOUBLE_EQ(snap.gauges.at("exec.cache.hit_rate"), 0.5);
}

}  // namespace
}  // namespace prtr::exec
