// Tests for module relocation between compatible PRRs.
#include <gtest/gtest.h>

#include "bitstream/builder.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/relocate.hpp"
#include "config/memory.hpp"
#include "fabric/floorplan.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {
namespace {

TEST(RelocateTest, QuadPrrsAreMutuallyCompatible) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  for (std::size_t a = 0; a < plan.prrCount(); ++a) {
    for (std::size_t b = 0; b < plan.prrCount(); ++b) {
      EXPECT_TRUE(regionsCompatible(plan.device(), plan.prr(a), plan.prr(b)));
    }
  }
}

TEST(RelocateTest, DualPrrEdgesAreMirroredHenceIncompatible) {
  // PRR0 = IOB,IOB,CLBx13,BRAM but PRR1 = BRAM,CLBx13,IOB,IOB -- same
  // column multiset, different order: relocation is not legal.
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  EXPECT_FALSE(regionsCompatible(plan.device(), plan.prr(0), plan.prr(1)));
}

TEST(RelocateTest, RelocatedStreamParsesAndTargetsNewRegion) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream original = builder.buildModulePartial(plan.prr(0), 77, 0.4);
  const Bitstream moved =
      relocate(original, plan.device(), plan.prr(0), plan.prr(2));

  EXPECT_EQ(moved.size(), original.size());
  const ParsedStream parsed = parse(moved, plan.device());
  const fabric::FrameRange target = plan.prr(2).frames(plan.device());
  ASSERT_EQ(parsed.writes.size(), target.count);
  for (const FrameWrite& w : parsed.writes) {
    EXPECT_TRUE(target.contains(w.frame));
  }
  EXPECT_EQ(parsed.header.moduleId, 77u);
}

TEST(RelocateTest, PayloadsArePreservedBitExact) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream original = builder.buildModulePartial(plan.prr(1), 9, 0.8);
  const Bitstream moved =
      relocate(original, plan.device(), plan.prr(1), plan.prr(3));

  const ParsedStream before = parse(original, plan.device());
  const ParsedStream after = parse(moved, plan.device());
  ASSERT_EQ(before.writes.size(), after.writes.size());
  for (std::size_t i = 0; i < before.writes.size(); ++i) {
    EXPECT_TRUE(std::equal(before.writes[i].payload.begin(),
                           before.writes[i].payload.end(),
                           after.writes[i].payload.begin()));
  }
}

TEST(RelocateTest, RelocatedStreamLoadsIntoConfigMemory) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  const Builder builder{plan.device()};
  config::ConfigMemory memory{plan.device()};
  memory.applyFull(parse(builder.buildFull(1), plan.device()));

  const Bitstream original = builder.buildModulePartial(plan.prr(0), 42);
  const Bitstream moved =
      relocate(original, plan.device(), plan.prr(0), plan.prr(3));
  memory.applyPartial(parse(moved, plan.device()));

  const fabric::FrameRange target = plan.prr(3).frames(plan.device());
  EXPECT_EQ(memory.frameOwner(target.first), 42u);
  const fabric::FrameRange source = plan.prr(0).frames(plan.device());
  EXPECT_EQ(memory.frameOwner(source.first), 1u);  // source untouched
}

TEST(RelocateTest, RoundTripRestoresOriginalBytes) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream original = builder.buildModulePartial(plan.prr(0), 5);
  const Bitstream there =
      relocate(original, plan.device(), plan.prr(0), plan.prr(1));
  const Bitstream back =
      relocate(there, plan.device(), plan.prr(1), plan.prr(0));
  EXPECT_EQ(back.bytes(), original.bytes());
}

TEST(RelocateTest, RejectsIncompatibleRegions) {
  const fabric::Floorplan dual = fabric::makeDualPrrLayout();
  const Builder builder{dual.device()};
  const Bitstream stream = builder.buildModulePartial(dual.prr(0), 5);
  EXPECT_THROW(relocate(stream, dual.device(), dual.prr(0), dual.prr(1)),
               util::DomainError);
}

TEST(RelocateTest, RejectsFullStreams) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream full = builder.buildFull(1);
  EXPECT_THROW(relocate(full, plan.device(), plan.prr(0), plan.prr(1)),
               util::BitstreamError);
}

TEST(RelocateTest, RejectsStreamFromAnotherRegion) {
  const fabric::Floorplan plan = fabric::makeQuadPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream stream = builder.buildModulePartial(plan.prr(2), 5);
  EXPECT_THROW(relocate(stream, plan.device(), plan.prr(0), plan.prr(1)),
               util::BitstreamError);
}

TEST(RelocateTest, SavingsAccounting) {
  const RelocationSavings s =
      relocationSavings(util::Bytes{300'000}, /*nModules=*/8,
                        /*nCompatibleRegions=*/4);
  EXPECT_EQ(s.withoutRelocation.count(), 300'000u * 32);
  EXPECT_EQ(s.withRelocation.count(), 300'000u * 8);
  EXPECT_DOUBLE_EQ(s.ratio(), 4.0);
}

}  // namespace
}  // namespace prtr::bitstream
