// Tests for the shared bench::Options vocabulary every bench binary and
// the prtrsim CLI parse their common flags through.
#include <gtest/gtest.h>

#include <vector>

#include "bench/options.hpp"
#include "util/error.hpp"

namespace prtr::bench {
namespace {

Options parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench");
  return Options::parse("demo", static_cast<int>(argv.size()), argv.data());
}

TEST(BenchOptions, DefaultsAreQuiet) {
  const Options options = parse({});
  EXPECT_FALSE(options.jsonRequested());
  EXPECT_FALSE(options.traceRequested());
  EXPECT_FALSE(options.profileRequested());
  EXPECT_FALSE(options.seedSet());
  EXPECT_FALSE(options.helpRequested());
  EXPECT_GE(options.threads(), 1u);
  EXPECT_TRUE(options.rest().empty());
  EXPECT_EQ(options.seedOr(77), 77u);
}

TEST(BenchOptions, ParsesTheSharedVocabulary) {
  const Options options =
      parse({"--json", "out.json", "--trace", "t.json", "--profile", "p.json",
             "--threads", "3", "--seed", "123"});
  EXPECT_EQ(options.jsonPath(), "out.json");
  EXPECT_EQ(options.tracePath(), "t.json");
  EXPECT_EQ(options.profilePath(), "p.json");
  EXPECT_EQ(options.threads(), 3u);
  EXPECT_TRUE(options.seedSet());
  EXPECT_EQ(options.seed(), 123u);
  EXPECT_EQ(options.seedOr(77), 123u);
  EXPECT_TRUE(options.rest().empty());
}

TEST(BenchOptions, KeepsUnrecognisedArgumentsInOrder) {
  const Options options =
      parse({"--calls", "40", "--json", "o.json", "--timeline"});
  EXPECT_EQ(options.rest(),
            (std::vector<std::string>{"--calls", "40", "--timeline"}));
  EXPECT_EQ(options.jsonPath(), "o.json");
}

TEST(BenchOptions, RejectsMissingOrMalformedValues) {
  EXPECT_THROW(parse({"--json"}), util::DomainError);
  EXPECT_THROW(parse({"--threads"}), util::DomainError);
  EXPECT_THROW(parse({"--threads", "0"}), util::DomainError);
  EXPECT_THROW(parse({"--threads", "two"}), util::DomainError);
  EXPECT_THROW(parse({"--seed", "1x"}), util::DomainError);
}

TEST(BenchOptions, UsageListsEveryFlagAndTheExtraBlock) {
  const std::string usage = Options::usage("demo", "  --calls N  call count");
  EXPECT_NE(usage.find("usage: demo"), std::string::npos);
  for (const char* flag :
       {"--json", "--trace", "--profile", "--threads", "--seed", "--help"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
  EXPECT_NE(usage.find("--calls N"), std::string::npos);
  EXPECT_EQ(usage.back(), '\n');
}

TEST(BenchOptions, HelpFlagIsRecognisedAnywhere) {
  EXPECT_TRUE(parse({"--json", "o.json", "--help"}).helpRequested());
}

}  // namespace
}  // namespace prtr::bench
