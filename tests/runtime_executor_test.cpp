// Tests for the FRTR and PRTR executors against hand-computed timing and
// the analytical model.
#include <gtest/gtest.h>

#include "bitstream/library.hpp"
#include "model/calibration.hpp"
#include "model/model.hpp"
#include "runtime/executor.hpp"
#include "runtime/scenario.hpp"
#include "tasks/hwfunction.hpp"
#include "tasks/workload.hpp"
#include "util/stats.hpp"
#include "xd1/node.hpp"

namespace prtr::runtime {
namespace {

using model::ConfigTimeBasis;

struct Harness {
  sim::Simulator sim;
  xd1::Node node;
  tasks::FunctionRegistry registry;
  bitstream::Library library;

  explicit Harness(xd1::Layout layout = xd1::Layout::kDualPrr)
      : node(sim,
             [&] {
               xd1::NodeConfig c;
               c.layout = layout;
               return c;
             }()),
        registry(tasks::makePaperFunctions()),
        library(node.floorplan(),
                registry.moduleSpecs(
                    node.floorplan().prr(0).resources(node.device()))) {}
};

TEST(FrtrExecutorTest, TotalTimeMatchesEquation1) {
  Harness h;
  ExecutorOptions opts;
  opts.basis = ConfigTimeBasis::kMeasured;
  opts.tControl = util::Time::microseconds(10);
  FrtrExecutor executor{h.node, h.registry, h.library, opts};

  const util::Bytes data{10'000'000};
  const auto workload = tasks::makeRoundRobinWorkload(h.registry, 12, data);
  const ExecutionReport report = executor.run(workload);

  EXPECT_EQ(report.calls, 12u);
  EXPECT_EQ(report.configurations, 12u);  // one full config per call

  model::AbsoluteParams abs;
  abs.nCalls = 12;
  const model::ConfigTimes times = model::configTimes(h.node);
  abs.tFrtr = times.fullMeasured;
  abs.tPrtr = times.partialMeasured;
  abs.tTask = model::taskTime(h.node, h.registry.at(0), data);
  abs.tControl = opts.tControl;
  const double expected = model::frtrTotalTime(abs).toSeconds();
  EXPECT_NEAR(report.total.toSeconds(), expected, expected * 0.01);
}

TEST(FrtrExecutorTest, EstimatedBasisUsesRawSelectMap) {
  Harness h;
  ExecutorOptions opts;
  opts.basis = ConfigTimeBasis::kEstimated;
  opts.tControl = util::Time::zero();
  FrtrExecutor executor{h.node, h.registry, h.library, opts};
  const auto workload =
      tasks::makeRoundRobinWorkload(h.registry, 3, util::Bytes{1000});
  const ExecutionReport report = executor.run(workload);
  // Dominated by 3 x 36.09 ms estimated full configurations.
  EXPECT_NEAR(report.total.toMilliseconds(), 3 * 36.09, 1.0);
}

TEST(FrtrExecutorTest, BreakdownAddsUp) {
  Harness h;
  ExecutorOptions opts;
  FrtrExecutor executor{h.node, h.registry, h.library, opts};
  const auto workload =
      tasks::makeRoundRobinWorkload(h.registry, 5, util::Bytes{1'000'000});
  const ExecutionReport r = executor.run(workload);
  const double parts = (r.configStall + r.controlTime + r.inputTime +
                        r.computeTime + r.outputTime)
                           .toSeconds();
  EXPECT_NEAR(parts, r.total.toSeconds(), r.total.toSeconds() * 1e-6);
  EXPECT_GT(r.configOverheadFraction(), 0.9);  // FRTR overhead dominates here
}

TEST(PrtrExecutorTest, ForceMissMatchesEquation5) {
  // The paper's experimental setting: dual PRR, H = 0, queue look-ahead.
  Harness h;
  ExecutorOptions opts;
  opts.basis = ConfigTimeBasis::kMeasured;
  opts.tControl = util::Time::microseconds(10);
  opts.forceMiss = true;
  opts.prepare = PrepareSource::kQueue;
  LruCache cache{2};
  NonePrefetcher prefetcher;
  PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher, opts};

  const util::Bytes data{30'000'000};  // X_task ~ 0.1 (mid-range)
  const auto workload = tasks::makeRoundRobinWorkload(h.registry, 50, data);
  const ExecutionReport report = executor.run(workload);

  EXPECT_EQ(report.calls, 50u);
  EXPECT_EQ(report.configurations, 50u);  // always reconfigures
  EXPECT_DOUBLE_EQ(report.hitRatio(), 0.0);

  model::AbsoluteParams abs;
  abs.nCalls = 50;
  const model::ConfigTimes times = model::configTimes(h.node);
  abs.tFrtr = times.fullMeasured;
  abs.tPrtr = times.partialMeasured;
  abs.tTask = model::taskTime(h.node, h.registry.at(0), data);
  abs.tControl = opts.tControl;
  abs.hitRatio = 0.0;
  const double expected = model::prtrTotalTime(abs).toSeconds();
  // The simulator can only overlap configuration with the post-input part
  // of the previous task, so it runs slightly above the model.
  EXPECT_NEAR(report.total.toSeconds(), expected, expected * 0.05);
  EXPECT_GE(report.total.toSeconds(), expected * 0.999);
}

TEST(PrtrExecutorTest, RepeatedModuleHitsWithoutForceMiss) {
  Harness h;
  ExecutorOptions opts;
  opts.forceMiss = false;
  opts.prepare = PrepareSource::kQueue;
  LruCache cache{2};
  NonePrefetcher prefetcher;
  PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher, opts};

  // 20 calls of the same function: 1 miss then 19 hits.
  tasks::Workload w{"same", {}};
  for (int i = 0; i < 20; ++i) {
    w.calls.push_back(tasks::TaskCall{0, util::Bytes{1'000'000}});
  }
  const ExecutionReport report = executor.run(w);
  EXPECT_EQ(report.configurations, 1u);
  EXPECT_NEAR(report.hitRatio(), 19.0 / 20.0, 1e-12);
}

TEST(PrtrExecutorTest, TwoModulesFitTwoPrrsAfterWarmup) {
  Harness h;
  ExecutorOptions opts;
  opts.forceMiss = false;
  opts.prepare = PrepareSource::kQueue;
  LruCache cache{2};
  NonePrefetcher prefetcher;
  PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher, opts};

  // Alternating median/sobel: both stay resident after the first two loads.
  tasks::Workload w{"alt", {}};
  for (int i = 0; i < 30; ++i) {
    w.calls.push_back(
        tasks::TaskCall{static_cast<std::size_t>(i % 2), util::Bytes{500'000}});
  }
  const ExecutionReport report = executor.run(w);
  EXPECT_EQ(report.configurations, 2u);
  EXPECT_NEAR(report.hitRatio(), 28.0 / 30.0, 1e-12);
}

TEST(PrtrExecutorTest, ThreeModulesThrashTwoPrrs) {
  Harness h;
  ExecutorOptions opts;
  opts.forceMiss = false;
  opts.prepare = PrepareSource::kQueue;
  LruCache cache{2};
  NonePrefetcher prefetcher;
  PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher, opts};

  // Round-robin over 3 modules with 2 slots: mostly misses (classic LRU
  // pathological case), but the look-ahead still overlaps the loads.
  const auto w = tasks::makeRoundRobinWorkload(h.registry, 30, util::Bytes{500'000});
  const ExecutionReport report = executor.run(w);
  EXPECT_GT(report.configurations, 25u);
}

TEST(PrtrExecutorTest, SinglePrrFallsBackToOnDemand) {
  Harness h{xd1::Layout::kSinglePrr};
  ExecutorOptions opts;
  opts.forceMiss = true;
  opts.prepare = PrepareSource::kQueue;
  LruCache cache{1};
  NonePrefetcher prefetcher;
  PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher, opts};

  const util::Bytes data{10'000'000};
  const auto w = tasks::makeRoundRobinWorkload(h.registry, 10, data);
  const ExecutionReport report = executor.run(w);
  EXPECT_EQ(report.configurations, 10u);
  // With one PRR nothing can overlap: config stall is roughly
  // n * T_PRTR(single) = 10 * ~43.5 ms.
  EXPECT_GT(report.configStall.toMilliseconds(), 10 * 43.0);
}

TEST(PrtrExecutorTest, CacheSlotMismatchRejected) {
  Harness h;  // dual PRR
  ExecutorOptions opts;
  LruCache cache{3};
  NonePrefetcher prefetcher;
  EXPECT_THROW(
      (PrtrExecutor{h.node, h.registry, h.library, cache, prefetcher, opts}),
      util::DomainError);
}

TEST(PrtrExecutorTest, MarkovPrefetcherOverlapsCyclicWorkload) {
  // A deterministic 3-cycle over 2 PRRs: every call misses, but a trained
  // Markov predictor knows the next module and overlaps its configuration.
  auto runCycle = [](PrepareSource prepare) {
    Harness h;
    ExecutorOptions opts;
    opts.forceMiss = false;
    opts.prepare = prepare;
    LruCache cache{2};
    MarkovPrefetcher prefetcher{util::Time::zero()};
    PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher,
                          opts};
    const auto w =
        tasks::makeRoundRobinWorkload(h.registry, 120, util::Bytes{8'000'000});
    return executor.run(w);
  };
  const ExecutionReport with = runCycle(PrepareSource::kPrefetcher);
  const ExecutionReport without = runCycle(PrepareSource::kNone);
  EXPECT_GT(with.prefetchIssued, 100u);
  EXPECT_LT(with.prefetchWrong, 5u);  // the cycle is perfectly learnable
  // Overlap shrinks the configuration stall versus on-demand loading.
  EXPECT_LT(with.configStall.toSeconds(), without.configStall.toSeconds());
  EXPECT_LT(with.total.toSeconds(), without.total.toSeconds());
}

TEST(PrtrExecutorTest, MarkovPrefetcherSelfBiasedWorkloadHitsOften) {
  Harness h;
  ExecutorOptions opts;
  opts.forceMiss = false;
  opts.prepare = PrepareSource::kPrefetcher;
  LruCache cache{2};
  MarkovPrefetcher prefetcher{util::Time::zero()};
  PrtrExecutor executor{h.node, h.registry, h.library, cache, prefetcher, opts};

  util::Rng rng{5};
  const auto w =
      tasks::makeMarkovWorkload(h.registry, 200, util::Bytes{500'000}, 0.8, rng);
  const ExecutionReport report = executor.run(w);
  EXPECT_GT(report.hitRatio(), 0.5);  // locality + 2 slots keep modules hot
}

TEST(ScenarioTest, MeasuredSpeedupTracksModel) {
  const auto registry = tasks::makePaperFunctions();
  ScenarioOptions so;
  so.basis = ConfigTimeBasis::kMeasured;
  so.forceMiss = true;
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 60, util::Bytes{50'000'000});
  const ScenarioResult result = runScenario(registry, workload, so);
  EXPECT_GT(result.speedup, 1.0);
  EXPECT_LT(result.modelError, 0.06);
}

TEST(ScenarioTest, TimelineCapturesProfiles) {
  const auto registry = tasks::makePaperFunctions();
  sim::Timeline frtrTl;
  sim::Timeline prtrTl;
  ScenarioOptions so;
  so.forceMiss = true;
  so.hooks.frtrTimeline = &frtrTl;
  so.hooks.timeline = &prtrTl;
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{20'000'000});
  (void)runScenario(registry, workload, so);
  EXPECT_FALSE(frtrTl.empty());
  EXPECT_FALSE(prtrTl.empty());
  // PRTR used both PRR lanes.
  EXPECT_GT(prtrTl.laneBusy("PRR0").toSeconds(), 0.0);
  EXPECT_GT(prtrTl.laneBusy("PRR1").toSeconds(), 0.0);
}

TEST(ReportTest, MeasuredSpeedupGuardsZero) {
  ExecutionReport a;
  ExecutionReport b;
  a.total = util::Time::milliseconds(100);
  b.total = util::Time::zero();
  EXPECT_THROW((void)measuredSpeedup(a, b), util::DomainError);
  b.total = util::Time::milliseconds(50);
  EXPECT_DOUBLE_EQ(measuredSpeedup(a, b), 2.0);
}

}  // namespace
}  // namespace prtr::runtime
