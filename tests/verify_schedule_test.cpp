// Tests for the bounded schedule explorer and its seeded oracle: the pool's
// determinism contract is proven byte-identical across perturbed task
// interleavings at widths 1-4, the distinct-schedule lower bound meets the
// >= 100 gate, and a deliberately schedule-dependent workload is caught.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "exec/instrument.hpp"
#include "exec/pool.hpp"
#include "sim/simulator.hpp"
#include "verify/oracle.hpp"
#include "verify/schedule.hpp"

namespace prtr {
namespace {

using analyze::DiagnosticSink;
using verify::ExploreOptions;
using verify::SeededOracle;

TEST(SeededOracle, ChoosesWithinRangeAndCountsDecisions) {
  SeededOracle oracle{1};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::size_t pick = oracle.choose(4, exec::kOracleSitePush);
    ASSERT_LT(pick, 4u);
    seen.insert(pick);
  }
  EXPECT_EQ(seen.size(), 4u);  // 200 draws cover all four targets
  EXPECT_EQ(oracle.decisions(), 200u);
  EXPECT_NE(oracle.signature(), 0u);
}

TEST(SeededOracle, SingleChoiceIsNotADecision) {
  SeededOracle oracle{1};
  EXPECT_EQ(oracle.choose(1, exec::kOracleSitePush), 0u);
  EXPECT_EQ(oracle.choose(0, exec::kOracleSitePush), 0u);
  EXPECT_EQ(oracle.decisions(), 0u);
  EXPECT_EQ(oracle.signature(), 0u);
}

TEST(SeededOracle, SignatureIsSeedSensitiveAndReproducible) {
  const auto signatureOf = [](std::uint64_t seed) {
    SeededOracle oracle{seed};
    for (int i = 0; i < 64; ++i) {
      (void)oracle.choose(3, exec::kOracleSiteStealOrder);
    }
    return oracle.signature();
  };
  EXPECT_EQ(signatureOf(7), signatureOf(7));
  EXPECT_NE(signatureOf(7), signatureOf(8));
}

TEST(ScheduleExplorer, SmallExplorationIsDeterministic) {
  ExploreOptions options;
  options.widths = {1, 2};
  options.seedsPerWidth = 2;
  options.points = 2;
  options.nCalls = 6;
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  EXPECT_TRUE(result.deterministic());
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.referenceDigest.size(), 8u);
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
  for (const verify::ScheduleRun& run : result.runs) {
    EXPECT_TRUE(run.identical)
        << "width " << run.width << " seed " << run.seed;
  }
}

// The acceptance gate: a Figure-9 sweep point is byte-identical at pool
// widths 1-4 under at least 100 provably distinct interleavings.
TEST(ScheduleExplorer, Fig9PointIsByteIdenticalUnderHundredInterleavings) {
  ExploreOptions options;
  // Width 4 appears twice: narrow pools collapse many seeds onto the same
  // decision stream, so the distinct-schedule mass must come from the
  // widest pool (the seed counter keeps advancing across entries).
  options.widths = {1, 2, 3, 4, 4};
  options.seedsPerWidth = 40;
  options.points = 4;  // enough sweep tasks for the oracle to perturb
  options.nCalls = 6;
  options.minDistinctSchedules = 100;
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  EXPECT_TRUE(result.deterministic()) << sink.toText();
  EXPECT_GE(result.distinctSchedules, 100u);
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
  EXPECT_EQ(result.runs.size(), 200u);
}

TEST(ScheduleExplorer, WidthOneRunsMakeNoDecisions) {
  ExploreOptions options;
  options.widths = {1};
  options.seedsPerWidth = 3;
  options.points = 1;
  options.nCalls = 4;
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  // A one-worker pool degenerates to the serial loop: nothing to perturb,
  // so every signature collapses to zero and one distinct schedule remains.
  for (const verify::ScheduleRun& run : result.runs) {
    EXPECT_EQ(run.decisions, 0u);
    EXPECT_EQ(run.signature, 0u);
  }
  EXPECT_EQ(result.distinctSchedules, 1u);
}

TEST(ScheduleExplorer, ScheduleDependentWorkloadIsDt001) {
  ExploreOptions options;
  options.widths = {2};
  options.seedsPerWidth = 2;
  int run = 0;
  options.sweep = [&run] { return std::to_string(run++); };
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  EXPECT_FALSE(result.deterministic());
  EXPECT_EQ(result.mismatches, 2u);
  EXPECT_TRUE(sink.has("DT001"));
  EXPECT_TRUE(sink.hasErrors());
}

TEST(ScheduleExplorer, TooFewDistinctSchedulesIsDt003) {
  ExploreOptions options;
  options.widths = {1};
  options.seedsPerWidth = 1;
  options.minDistinctSchedules = 100;  // impossible at width 1
  options.sweep = [] { return std::string{"same"}; };
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  EXPECT_TRUE(result.deterministic());
  ASSERT_EQ(sink.codes().size(), 1u);
  EXPECT_EQ(sink.codes().front(), "DT003");
  EXPECT_FALSE(sink.hasErrors());  // a weak proof is a warning, not an error
}

TEST(ScheduleExplorer, ReplaysTheSweepUnderBothEventQueues) {
  ExploreOptions options;
  options.widths = {1};
  options.seedsPerWidth = 1;
  options.points = 2;
  options.nCalls = 6;
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  // Default A/B axis: calendar drives the matrix, binary-heap replays once.
  ASSERT_EQ(result.queueRuns.size(), 1u);
  EXPECT_EQ(result.queueRuns[0].kind, sim::QueueKind::kBinaryHeap);
  EXPECT_TRUE(result.queueRuns[0].identical);
  EXPECT_EQ(result.queueMismatches, 0u);
  EXPECT_TRUE(result.deterministic()) << sink.toText();
  // The explorer must leave the process default where it found it.
  EXPECT_EQ(sim::Simulator::defaultQueueKind(), sim::QueueKind::kCalendar);
}

TEST(ScheduleExplorer, QueueDependentWorkloadIsDt004) {
  ExploreOptions options;
  options.widths = {1};
  options.seedsPerWidth = 1;
  // Bytes that depend on which queue implementation is active: the
  // reference (calendar) and the binary-heap replay must disagree.
  options.sweep = [] {
    return std::string{toString(sim::Simulator::defaultQueueKind())};
  };
  DiagnosticSink sink;
  const verify::ExploreResult result =
      verify::exploreSchedules(options, sink);
  EXPECT_EQ(result.mismatches, 0u);  // perturbed replays stay on calendar
  EXPECT_EQ(result.queueMismatches, 1u);
  EXPECT_FALSE(result.deterministic());
  EXPECT_TRUE(sink.has("DT004"));
  EXPECT_TRUE(sink.hasErrors());
}

}  // namespace
}  // namespace prtr
