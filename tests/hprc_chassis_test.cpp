// Tests for the multi-blade chassis layer.
#include <gtest/gtest.h>

#include "hprc/chassis.hpp"
#include "util/error.hpp"

namespace prtr::hprc {
namespace {

TEST(PartitionTest, BlockPreservesOrderAndCoversAll) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 10, util::Bytes{100});
  const auto shares = partitionWorkload(workload, 3, Partition::kBlock);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].callCount(), 4u);
  EXPECT_EQ(shares[1].callCount(), 4u);
  EXPECT_EQ(shares[2].callCount(), 2u);
  EXPECT_EQ(shares[0].calls[0], workload.calls[0]);
  EXPECT_EQ(shares[2].calls[1], workload.calls[9]);
}

TEST(PartitionTest, RoundRobinInterleaves) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 9, util::Bytes{100});
  const auto shares = partitionWorkload(workload, 3, Partition::kRoundRobin);
  for (std::size_t b = 0; b < 3; ++b) {
    ASSERT_EQ(shares[b].callCount(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(shares[b].calls[i], workload.calls[i * 3 + b]);
    }
  }
}

TEST(PartitionTest, Validation) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{100});
  EXPECT_THROW(partitionWorkload(workload, 0, Partition::kBlock),
               util::DomainError);
}

TEST(ChassisTest, MoreBladesShrinkMakespan) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 60, util::Bytes{10'000'000});

  ChassisOptions one;
  one.blades = 1;
  one.scenario.forceMiss = true;
  one.scenario.basis = model::ConfigTimeBasis::kEstimated;
  const ChassisReport r1 = runChassis(registry, workload, one);

  ChassisOptions four = one;
  four.blades = 4;
  const ChassisReport r4 = runChassis(registry, workload, four);

  EXPECT_EQ(r1.bladeCount(), 1u);
  EXPECT_EQ(r4.bladeCount(), 4u);
  EXPECT_LT(r4.makespan.toSeconds(), r1.makespan.toSeconds());
  // Near-linear scaling for a homogeneous workload (the 36 ms initial
  // full configuration per blade costs a little).
  const double scaling = r1.makespan.toSeconds() / r4.makespan.toSeconds();
  EXPECT_GT(scaling, 3.0);
  EXPECT_LE(scaling, 4.1);
  EXPECT_GT(r4.balance(), 0.95);
}

TEST(ChassisTest, PerBladeFullConfigIsTheAmdahlTerm) {
  // On the measured basis each blade pays 1.678 s of vendor-API full
  // configuration before its first call, which caps the scaling of short
  // workloads -- a system-level consequence of the paper's Table 2.
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 60, util::Bytes{10'000'000});
  ChassisOptions one;
  one.blades = 1;
  one.scenario.forceMiss = true;
  one.scenario.basis = model::ConfigTimeBasis::kMeasured;
  const ChassisReport r1 = runChassis(registry, workload, one);
  ChassisOptions four = one;
  four.blades = 4;
  const ChassisReport r4 = runChassis(registry, workload, four);
  const double scaling = r1.makespan.toSeconds() / r4.makespan.toSeconds();
  EXPECT_LT(scaling, 3.0);  // well below linear
  // And the gap is explained by the initial configuration term.
  const double serialShare =
      r4.blades[0].initialConfig.toSeconds() / r4.makespan.toSeconds();
  EXPECT_GT(serialShare, 0.3);
}

TEST(ChassisTest, RejectsOverfullChassis) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{100});
  ChassisOptions options;
  options.blades = 7;  // an XD1 chassis holds six blades
  EXPECT_THROW(runChassis(registry, workload, options), util::DomainError);
}

TEST(ChassisTest, BlockBeatsRoundRobinOnPhasedLocality) {
  // Phased workloads have temporal locality; block partitioning keeps each
  // phase on one blade (fewer reconfigurations), round-robin shreds it.
  const auto registry = tasks::makeExtendedFunctions();
  util::Rng rng{33};
  const auto workload = tasks::makePhasedWorkload(
      registry, 240, util::Bytes{1'000'000}, 40, 2, rng);

  ChassisOptions block;
  block.blades = 3;
  block.partition = Partition::kBlock;
  block.scenario.forceMiss = false;
  const ChassisReport rBlock = runChassis(registry, workload, block);

  ChassisOptions rr = block;
  rr.partition = Partition::kRoundRobin;
  const ChassisReport rRr = runChassis(registry, workload, rr);

  EXPECT_LE(rBlock.configurations, rRr.configurations);
}

TEST(ChassisTest, ReportAggregatesAndPrints) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 12, util::Bytes{1'000'000});
  ChassisOptions options;
  options.blades = 2;
  options.scenario.forceMiss = true;
  const ChassisReport report = runChassis(registry, workload, options);
  EXPECT_EQ(report.blades[0].calls + report.blades[1].calls, 12u);
  EXPECT_GE(report.totalBladeTime.toSeconds(), report.makespan.toSeconds());
  const std::string text = report.toString();
  EXPECT_NE(text.find("blade0"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace prtr::hprc
