// Tests for the Cray XD1 platform model and the model calibration bridge
// (Table 2 reproduction).
#include <gtest/gtest.h>

#include "model/calibration.hpp"
#include "tasks/hwfunction.hpp"
#include "xd1/node.hpp"
#include "xd1/rtcore.hpp"

namespace prtr::xd1 {
namespace {

TEST(NodeTest, DefaultsMatchPaperPlatform) {
  sim::Simulator sim;
  const Node node{sim};
  EXPECT_EQ(node.device().name(), "xc2vp50");
  EXPECT_EQ(node.floorplan().prrCount(), 2u);  // dual PRR default
  EXPECT_EQ(node.bankCount(), 4u);
  // Paper section 5: I/O bandwidth 1400 MB/s.
  EXPECT_NEAR(node.ioBandwidth().toMegabytesPerSecond(), 1400.0, 1e-6);
}

TEST(NodeTest, SinglePrrLayoutGetsAllBanks) {
  sim::Simulator sim;
  NodeConfig cfg;
  cfg.layout = Layout::kSinglePrr;
  const Node node{sim, cfg};
  EXPECT_EQ(node.floorplan().prrCount(), 1u);
  EXPECT_EQ(node.banksFor(0), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(NodeTest, DualPrrLayoutSplitsBanks) {
  sim::Simulator sim;
  const Node node{sim};
  EXPECT_EQ(node.banksFor(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(node.banksFor(1), (std::vector<std::size_t>{2, 3}));
}

TEST(NodeTest, BanksTotal16MB) {
  sim::Simulator sim;
  Node node{sim};
  util::Bytes total{};
  for (std::size_t i = 0; i < node.bankCount(); ++i) {
    total += node.bank(i).capacity();
  }
  EXPECT_EQ(total, util::Bytes::mebi(16));
}

TEST(QdrBankTest, ReadAndWritePortsAreIndependent) {
  sim::Simulator sim;
  QdrBank bank{sim, "b0", util::Bytes::mebi(4),
               util::DataRate::megabytesPerSecond(100)};
  auto both = [&](sim::Simulator& s) -> sim::Process {
    sim::WaitGroup wg{s};
    wg.add(2);
    auto reader = [](QdrBank& b, sim::WaitGroup& w) -> sim::Process {
      co_await b.read(util::Bytes{1'000'000});
      w.done();
    };
    auto writer = [](QdrBank& b, sim::WaitGroup& w) -> sim::Process {
      co_await b.write(util::Bytes{1'000'000});
      w.done();
    };
    s.spawn(reader(bank, wg));
    s.spawn(writer(bank, wg));
    co_await wg.wait();
  };
  sim.spawn(both(sim));
  sim.run();
  // Dual-ported QDR: read and write overlap fully -> 10 ms, not 20 ms.
  EXPECT_EQ(sim.now(), util::Time::milliseconds(10));
}

TEST(StaticDesignTest, Table1StaticRegionRow) {
  const fabric::ResourceVec staticRegion =
      StaticDesign::staticRegionFootprint();
  EXPECT_EQ(staticRegion.luts, 3372u);
  EXPECT_EQ(staticRegion.ffs, 5503u);
  EXPECT_EQ(staticRegion.bram18, 25u);
  EXPECT_NEAR(StaticDesign::fabricClock().toMegahertz(), 200.0, 1e-9);
}

TEST(CalibrationTest, Table2EstimatedColumn) {
  sim::Simulator sim;
  const Node node{sim};
  const model::ConfigTimes times = model::configTimes(node);
  EXPECT_NEAR(times.fullEstimated.toMilliseconds(), 36.09, 0.01);
  EXPECT_NEAR(times.partialEstimated.toMilliseconds(), 6.12, 0.02);
}

TEST(CalibrationTest, Table2MeasuredColumn) {
  sim::Simulator sim;
  const Node node{sim};
  const model::ConfigTimes times = model::configTimes(node);
  EXPECT_NEAR(times.fullMeasured.toMilliseconds(), 1678.04, 1678.04 * 0.001);
  EXPECT_NEAR(times.partialMeasured.toMilliseconds(), 19.77, 19.77 * 0.011);
}

TEST(CalibrationTest, NormalizedXPrtrMatchesPaper) {
  sim::Simulator sim;
  const Node node{sim};
  const model::ConfigTimes times = model::configTimes(node);
  // Table 2 normalized column: 0.17 estimated, 0.012 measured (dual PRR).
  EXPECT_NEAR(times.xPrtr(model::ConfigTimeBasis::kEstimated), 0.17, 0.005);
  EXPECT_NEAR(times.xPrtr(model::ConfigTimeBasis::kMeasured), 0.012, 0.0005);
}

TEST(CalibrationTest, SinglePrrNormalized) {
  sim::Simulator sim;
  NodeConfig cfg;
  cfg.layout = Layout::kSinglePrr;
  const Node node{sim, cfg};
  const model::ConfigTimes times = model::configTimes(node);
  // Table 2: 0.37 estimated, 0.026 measured (single PRR).
  EXPECT_NEAR(times.xPrtr(model::ConfigTimeBasis::kEstimated), 0.37, 0.01);
  EXPECT_NEAR(times.xPrtr(model::ConfigTimeBasis::kMeasured), 0.026, 0.001);
}

TEST(CalibrationTest, TaskTimeIsLinkPlusComputePlusLink) {
  sim::Simulator sim;
  const Node node{sim};
  const auto registry = tasks::makePaperFunctions();
  const tasks::HwFunction& median = registry.byName("median");
  const util::Bytes data{1'400'000};  // 1 ms inbound at 1400 MB/s
  const util::Time t = model::taskTime(node, median, data);
  // in: 1 ms (+0.5 us latency), compute: 1.4e6 px / 200 MHz = 7 ms,
  // out: 1 ms (+0.5 us latency).
  EXPECT_NEAR(t.toMilliseconds(), 9.001, 0.01);
}

TEST(CalibrationTest, BytesForTaskTimeInvertsTaskTime) {
  sim::Simulator sim;
  const Node node{sim};
  const auto registry = tasks::makePaperFunctions();
  const tasks::HwFunction& sobel = registry.byName("sobel");
  for (const double ms : {0.5, 5.0, 50.0, 500.0}) {
    const util::Time target = util::Time::seconds(ms * 1e-3);
    const util::Bytes bytes = model::bytesForTaskTime(node, sobel, target);
    const util::Time actual = model::taskTime(node, sobel, bytes);
    EXPECT_NEAR(actual.toSeconds(), target.toSeconds(),
                target.toSeconds() * 1e-6 + 1e-8);
  }
}

TEST(CalibrationTest, RejectsTargetBelowLatency) {
  sim::Simulator sim;
  const Node node{sim};
  const auto registry = tasks::makePaperFunctions();
  EXPECT_THROW((void)model::bytesForTaskTime(node, registry.at(0),
                                       util::Time::nanoseconds(100)),
               util::DomainError);
}

}  // namespace
}  // namespace prtr::xd1
