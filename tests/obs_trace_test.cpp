// Tests for the Chrome-trace exporter: the exact picosecond->microsecond
// rendering, a golden-document check for a hand-built timeline, ordering
// stability, and the scenario-level hook that populates a trace.
#include <gtest/gtest.h>

#include "obs/trace_export.hpp"
#include "runtime/scenario.hpp"
#include "sim/trace.hpp"
#include "tasks/workload.hpp"
#include "util/error.hpp"

namespace {

using namespace prtr;

TEST(TraceTime, MicrosecondsFromPicosecondsIsExact) {
  EXPECT_EQ(obs::microsecondsFromPicoseconds(0), "0");
  EXPECT_EQ(obs::microsecondsFromPicoseconds(1'000'000), "1");
  EXPECT_EQ(obs::microsecondsFromPicoseconds(1'500'000), "1.5");
  EXPECT_EQ(obs::microsecondsFromPicoseconds(1'230'000), "1.23");
  EXPECT_EQ(obs::microsecondsFromPicoseconds(123), "0.000123");
  EXPECT_EQ(obs::microsecondsFromPicoseconds(1), "0.000001");
  EXPECT_EQ(obs::microsecondsFromPicoseconds(-500'000), "-0.5");
  // 3 s of simulated time renders as whole microseconds, no fraction.
  EXPECT_EQ(obs::microsecondsFromPicoseconds(3'000'000'000'000), "3000000");
}

sim::Timeline demoTimeline() {
  sim::Timeline tl;
  const sim::LaneId prr0 = tl.lane("PRR0");
  const sim::LaneId prr1 = tl.lane("PRR1");
  const sim::LabelId compute = tl.label("compute");
  tl.record(prr0, tl.label("config(a)"), 'c', util::Time::zero(),
            util::Time::nanoseconds(1'500));
  tl.record(prr1, compute, '#', util::Time::microseconds(2),
            util::Time::microseconds(2) + util::Time::nanoseconds(250));
  tl.record(prr0, compute, '#', util::Time::microseconds(3),
            util::Time::microseconds(4));
  return tl;
}

TEST(ChromeTrace, GoldenDocumentForAHandBuiltTimeline) {
  obs::ChromeTrace trace;
  trace.add("demo", demoTimeline());
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"demo\"}},"
      "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"sort_index\":1}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"PRR0\"}},"
      "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"sort_index\":1}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"PRR1\"}},"
      "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"sort_index\":2}},"
      "{\"name\":\"config(a)\",\"cat\":\"PRR0\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":0,\"dur\":1.5},"
      "{\"name\":\"compute\",\"cat\":\"PRR1\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":2,\"ts\":2,\"dur\":0.25},"
      "{\"name\":\"compute\",\"cat\":\"PRR0\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":3,\"dur\":1}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(trace.toJson(), expected);
}

TEST(ChromeTrace, CounterTracksEmitCEventsUnderTheOwningProcess) {
  obs::ChromeTrace trace;
  trace.add("demo", demoTimeline());
  trace.addCounters(
      "demo", {obs::CounterTrack{"icap.busy",
                                 {{0, 0.5}, {1'000'000, 0.25}, {2'000'000, 0.0}}}});
  // Attaching to an existing process shares its pid instead of minting one.
  EXPECT_EQ(trace.processCount(), 1u);
  const std::string json = trace.toJson();
  EXPECT_NE(json.find("{\"name\":\"icap.busy\",\"ph\":\"C\",\"pid\":1,"
                      "\"ts\":0,\"args\":{\"value\":0.5}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":1,\"args\":{\"value\":0.25}"), std::string::npos);

  // A counter-only process mints a fresh pid.
  obs::ChromeTrace own;
  own.addCounters("counters", {obs::CounterTrack{"x", {{0, 1.0}}}});
  EXPECT_EQ(own.processCount(), 1u);
  EXPECT_NE(own.toJson().find("\"ph\":\"C\""), std::string::npos);
}

TEST(ChromeTrace, EmptyAndProcessCount) {
  obs::ChromeTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.processCount(), 0u);
  trace.add("a", demoTimeline());
  trace.add("b", demoTimeline());
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.processCount(), 2u);
  // Two processes get distinct pids in registration order.
  const std::string json = trace.toJson();
  EXPECT_NE(json.find("\"args\":{\"name\":\"a\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"b\"}"), std::string::npos);
  EXPECT_LT(json.find("\"name\":\"a\""), json.find("\"name\":\"b\""));
}

TEST(ChromeTrace, OutputIsStableAcrossIdenticalBuilds) {
  obs::ChromeTrace first;
  first.add("run", demoTimeline());
  obs::ChromeTrace second;
  second.add("run", demoTimeline());
  EXPECT_EQ(first.toJson(), second.toJson());
}

TEST(ChromeTrace, WriteFileRejectsUnopenablePaths) {
  obs::ChromeTrace trace;
  trace.add("demo", demoTimeline());
  EXPECT_THROW(trace.writeFile("/nonexistent-dir/out.json"), util::Error);
}

TEST(ChromeTrace, ScenarioHookPopulatesTheTrace) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  obs::ChromeTrace trace;
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  so.hooks.trace = &trace;
  const auto result = runtime::runScenario(registry, workload, so);
  (void)result;
  // With only the trace hook set, the run records into internal timelines
  // and still delivers populated processes.
  EXPECT_FALSE(trace.empty());
  const std::string json = trace.toJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
