// Tests for the discrete-event kernel: scheduling, coroutine processes,
// synchronization primitives, channels, links, and the timeline tracer.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "sim/channel.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace prtr::sim {
namespace {

using util::Time;

Process delayAndMark(Simulator& sim, Time delay, std::vector<int>& order,
                     int tag) {
  co_await sim.delay(delay);
  order.push_back(tag);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.spawn(delayAndMark(sim, Time::microseconds(30), order, 3));
  sim.spawn(delayAndMark(sim, Time::microseconds(10), order, 1));
  sim.spawn(delayAndMark(sim, Time::microseconds(20), order, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::microseconds(30));
}

TEST(SimulatorTest, TiesBreakInSpawnOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn(delayAndMark(sim, Time::microseconds(7), order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  bool ran = false;
  auto proc = [](Simulator& s, bool& flag) -> Process {
    co_await s.delay(Time::zero());
    flag = true;
  };
  sim.spawn(proc(sim, ran));
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.spawn(delayAndMark(sim, Time::milliseconds(1), order, 1));
  sim.spawn(delayAndMark(sim, Time::milliseconds(5), order, 5));
  sim.runUntil(Time::milliseconds(2));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), Time::milliseconds(2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SimulatorTest, ChildProcessesComposeSequentially) {
  Simulator sim;
  auto child = [](Simulator& s) -> Process {
    co_await s.delay(Time::microseconds(5));
  };
  Time finished;
  auto parent = [&](Simulator& s) -> Process {
    co_await child(s);
    co_await child(s);
    finished = s.now();
  };
  sim.spawn(parent(sim));
  sim.run();
  EXPECT_EQ(finished, Time::microseconds(10));
}

TEST(SimulatorTest, ChildExceptionPropagatesToParent) {
  Simulator sim;
  auto thrower = [](Simulator& s) -> Process {
    co_await s.delay(Time::microseconds(1));
    throw util::SimulationError{"boom"};
  };
  bool caught = false;
  auto parent = [&](Simulator& s) -> Process {
    try {
      co_await thrower(s);
    } catch (const util::SimulationError&) {
      caught = true;
    }
  };
  sim.spawn(parent(sim));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(SimulatorTest, RootExceptionSurfacesFromRun) {
  Simulator sim;
  auto thrower = [](Simulator& s) -> Process {
    co_await s.delay(Time::microseconds(1));
    throw util::SimulationError{"root boom"};
  };
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), util::SimulationError);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  auto late = [](Simulator& s) -> Process {
    co_await s.delay(Time::microseconds(5));
    s.scheduleAt(Time::microseconds(1), std::noop_coroutine());
  };
  sim.spawn(late(sim));
  EXPECT_THROW(sim.run(), util::SimulationError);
}

TEST(SimulatorTest, ManyShortProcessesAreReaped) {
  Simulator sim;
  auto quick = [](Simulator& s) -> Process { co_await s.delay(Time::zero()); };
  auto spawner = [&](Simulator& s) -> Process {
    for (int i = 0; i < 10000; ++i) {
      s.spawn(quick(s));
      co_await s.delay(Time::nanoseconds(1));
    }
  };
  sim.spawn(spawner(sim));
  sim.run();
  // Finished roots must have been reclaimed along the way.
  EXPECT_LT(sim.rootCount(), 10001u);
  EXPECT_GT(sim.eventsProcessed(), 10000u);
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Simulator sim;
  Condition cond{sim};
  int woken = 0;
  auto waiter = [&](Simulator&) -> Process {
    co_await cond.wait();
    ++woken;
  };
  auto notifier = [&](Simulator& s) -> Process {
    co_await s.delay(Time::microseconds(3));
    cond.notifyAll();
  };
  sim.spawn(waiter(sim));
  sim.spawn(waiter(sim));
  sim.spawn(notifier(sim));
  sim.run();
  EXPECT_EQ(woken, 2);
}

TEST(SemaphoreTest, MutualExclusionSerializes) {
  Simulator sim;
  Semaphore sem{sim, 1};
  std::vector<Time> entries;
  auto worker = [&](Simulator& s) -> Process {
    co_await sem.acquire();
    entries.push_back(s.now());
    co_await s.delay(Time::microseconds(10));
    sem.release();
  };
  for (int i = 0; i < 3; ++i) sim.spawn(worker(sim));
  sim.run();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], Time::zero());
  EXPECT_EQ(entries[1], Time::microseconds(10));
  EXPECT_EQ(entries[2], Time::microseconds(20));
}

TEST(SemaphoreTest, CountingAllowsParallelism) {
  Simulator sim;
  Semaphore sem{sim, 2};
  std::vector<Time> entries;
  auto worker = [&](Simulator& s) -> Process {
    co_await sem.acquire();
    entries.push_back(s.now());
    co_await s.delay(Time::microseconds(10));
    sem.release();
  };
  for (int i = 0; i < 3; ++i) sim.spawn(worker(sim));
  sim.run();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], Time::zero());
  EXPECT_EQ(entries[1], Time::zero());
  EXPECT_EQ(entries[2], Time::microseconds(10));
}

TEST(WaitGroupTest, WaitsForAllWork) {
  Simulator sim;
  WaitGroup wg{sim};
  wg.add(2);
  auto worker = [&](Simulator& s, Time d) -> Process {
    co_await s.delay(d);
    wg.done();
  };
  Time joined;
  auto joiner = [&](Simulator& s) -> Process {
    co_await wg.wait();
    joined = s.now();
  };
  sim.spawn(worker(sim, Time::microseconds(5)));
  sim.spawn(worker(sim, Time::microseconds(9)));
  sim.spawn(joiner(sim));
  sim.run();
  EXPECT_EQ(joined, Time::microseconds(9));
  EXPECT_EQ(wg.pending(), 0);
}

TEST(ChannelTest, BackpressureThrottlesProducer) {
  Simulator sim;
  auto ch = std::make_unique<Channel<int>>(sim, 2);
  long sum = 0;
  auto producer = [&](Simulator& s) -> Process {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(Time::microseconds(1));
      co_await ch->put(i);
    }
  };
  auto consumer = [&](Simulator& s) -> Process {
    for (int i = 0; i < 10; ++i) {
      const int v = co_await ch->get();
      sum += v;
      co_await s.delay(Time::microseconds(3));
    }
  };
  sim.spawn(producer(sim));
  sim.spawn(consumer(sim));
  sim.run();
  EXPECT_EQ(sum, 45);
  // Consumer paced at 3 us/item: last item consumed at ~31 us.
  EXPECT_EQ(sim.now(), Time::microseconds(31));
  EXPECT_TRUE(ch->empty());
}

TEST(ChannelTest, ConsumerBlocksOnEmpty) {
  Simulator sim;
  auto ch = std::make_unique<Channel<int>>(sim, 4);
  Time got;
  auto consumer = [&](Simulator& s) -> Process {
    (void)co_await ch->get();
    got = s.now();
  };
  auto producer = [&](Simulator& s) -> Process {
    co_await s.delay(Time::microseconds(8));
    co_await ch->put(1);
  };
  sim.spawn(consumer(sim));
  sim.spawn(producer(sim));
  sim.run();
  EXPECT_EQ(got, Time::microseconds(8));
}

TEST(ChannelTest, RejectsZeroCapacity) {
  Simulator sim;
  EXPECT_THROW((Channel<int>{sim, 0}), util::DomainError);
}

TEST(LinkTest, TransferTimeMatchesRate) {
  Simulator sim;
  SimplexLink link{sim, "test", util::DataRate::megabytesPerSecond(100)};
  auto xfer = [&](Simulator&) -> Process {
    co_await link.transfer(util::Bytes{1'000'000});
  };
  sim.spawn(xfer(sim));
  sim.run();
  EXPECT_EQ(sim.now(), Time::milliseconds(10));
  EXPECT_EQ(link.totalBytes().count(), 1'000'000u);
  EXPECT_EQ(link.totalTransfers(), 1u);
}

TEST(LinkTest, ConcurrentTransfersSerialize) {
  Simulator sim;
  SimplexLink link{sim, "test", util::DataRate::megabytesPerSecond(100)};
  auto xfer = [&](Simulator&) -> Process {
    co_await link.transfer(util::Bytes{500'000});
  };
  sim.spawn(xfer(sim));
  sim.spawn(xfer(sim));
  sim.run();
  EXPECT_EQ(sim.now(), Time::milliseconds(10));  // 2 x 5 ms, serialized
}

TEST(LinkTest, LatencyAddsPerTransfer) {
  Simulator sim;
  SimplexLink link{sim, "lat", util::DataRate::megabytesPerSecond(100),
                   Time::microseconds(2)};
  EXPECT_EQ(link.occupancy(util::Bytes{100'000}),
            Time::microseconds(1002));
}

TEST(TimelineTest, RecordsAndRenders) {
  Timeline tl;
  tl.record(tl.lane("PRR0"), tl.label("median"), '#', Time::zero(),
            Time::milliseconds(5));
  tl.record(tl.lane("config"), tl.label("partial"), 'P', Time::milliseconds(1),
            Time::milliseconds(3));
  EXPECT_EQ(tl.spans().size(), 2u);
  EXPECT_EQ(tl.laneBusy("PRR0"), Time::milliseconds(5));
  EXPECT_EQ(tl.horizon(), Time::milliseconds(5));
  const std::string gantt = tl.renderGantt(60);
  EXPECT_NE(gantt.find("PRR0"), std::string::npos);
  EXPECT_NE(gantt.find("config"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find('P'), std::string::npos);
}

TEST(TimelineTest, RejectsNegativeSpan) {
  Timeline tl;
  EXPECT_THROW(tl.record(tl.lane("x"), tl.label("y"), '#',
                         Time::milliseconds(2), Time::milliseconds(1)),
               util::DomainError);
}

// Dependent form so the negative check SFINAEs instead of hard-erroring.
template <typename T>
concept RecordsByStringName = requires(T t, std::string_view name) {
  t.record(name, name, '#', Time::zero(), Time::milliseconds(5));
};

TEST(TimelineTest, StringRecordShimIsGone) {
  // The PR 7 string-name record() shim is removed: record() takes interned
  // ids only. The static_assert pins the removal; the id path below is the
  // one way to write a span.
  static_assert(!RecordsByStringName<Timeline>);
  Timeline tl;
  tl.record(tl.lane("PRR0"), tl.label("median"), '#', Time::zero(),
            Time::milliseconds(5));
  ASSERT_EQ(tl.spans().size(), 1u);
  EXPECT_EQ(tl.laneName(tl.spans()[0].lane), "PRR0");
}

}  // namespace
}  // namespace prtr::sim
