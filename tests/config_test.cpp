// Tests for configuration ports, configuration memory, the vendor-API
// emulation (partial-rejection behaviour of paper section 4.1), and the
// ICAP controller timing calibration.
#include <gtest/gtest.h>

#include "bitstream/builder.hpp"
#include "config/icap_controller.hpp"
#include "config/manager.hpp"
#include "config/memory.hpp"
#include "config/port.hpp"
#include "config/vendor_api.hpp"
#include "fabric/floorplan.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace prtr::config {
namespace {

using util::Time;

TEST(PortTest, SelectMapThroughputIs66MBps) {
  const Port port = makeSelectMap();
  EXPECT_NEAR(port.rawThroughput().toMegabytesPerSecond(), 66.0, 1e-9);
  EXPECT_FALSE(port.internal());
  EXPECT_TRUE(port.supportsPartial());
}

TEST(PortTest, JtagIsSerialAndSlow) {
  const Port port = makeJtag();
  EXPECT_EQ(port.widthBits(), 1u);
  EXPECT_NEAR(port.rawThroughput().toMegabytesPerSecond(), 33.0 / 8.0, 1e-9);
}

TEST(PortTest, IcapV2MatchesSelectMapRate) {
  const Port port = makeIcapV2();
  EXPECT_TRUE(port.internal());
  EXPECT_NEAR(port.rawThroughput().toMegabytesPerSecond(), 66.0, 1e-9);
}

TEST(PortTest, EstimatedTable2Times) {
  const Port selectMap = makeSelectMap();
  // Table 2 estimated column: 36.09 / 13.45 / 6.12 ms.
  EXPECT_NEAR(selectMap.transferTime(util::Bytes{2'381'764}).toMilliseconds(),
              36.09, 0.01);
  EXPECT_NEAR(selectMap.transferTime(util::Bytes{887'444}).toMilliseconds(),
              13.45, 0.01);
  EXPECT_NEAR(selectMap.transferTime(util::Bytes{404'388}).toMilliseconds(),
              6.12, 0.01);
}

class ConfigFixture : public ::testing::Test {
 protected:
  fabric::Floorplan plan_ = fabric::makeDualPrrLayout();
  bitstream::Builder builder_{plan_.device()};
  sim::Simulator sim_;
  ConfigMemory memory_{plan_.device()};
};

TEST_F(ConfigFixture, MemoryStartsUnconfigured) {
  EXPECT_FALSE(memory_.done());
  EXPECT_EQ(memory_.frameOwner(0), 0u);
  EXPECT_EQ(memory_.framesWritten(), 0u);
}

TEST_F(ConfigFixture, PartialBeforeFullIsRejected) {
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  const auto parsed = bitstream::parse(part, plan_.device());
  EXPECT_THROW(memory_.applyPartial(parsed), util::ConfigError);
}

TEST_F(ConfigFixture, FullThenPartialUpdatesOnlyRegionFrames) {
  const auto full = builder_.buildFull(1);
  memory_.applyFull(bitstream::parse(full, plan_.device()));
  EXPECT_TRUE(memory_.done());

  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));

  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());
  EXPECT_EQ(memory_.frameOwner(range.first), 7u);
  EXPECT_EQ(memory_.frameOwner(range.end()), 1u);  // static frame untouched
}

TEST_F(ConfigFixture, ResetClearsState) {
  const auto full = builder_.buildFull(1);
  memory_.applyFull(bitstream::parse(full, plan_.device()));
  memory_.reset();
  EXPECT_FALSE(memory_.done());
  EXPECT_EQ(memory_.frameOwner(0), 0u);
}

TEST_F(ConfigFixture, VendorApiRejectsPartialBySize) {
  // The paper's key finding: the stock API checks the bitstream size and
  // errors out for partial streams.
  VendorApi api{sim_, memory_};
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  EXPECT_EQ(api.check(part), ApiStatus::kRejectedSize);

  ApiStatus status = ApiStatus::kOk;
  auto load = [&](VendorApi& a, const bitstream::Bitstream& s,
                  ApiStatus& st) -> sim::Process { co_await a.load(s, st); };
  sim_.spawn(load(api, part, status));
  sim_.run();
  EXPECT_EQ(status, ApiStatus::kRejectedSize);
  EXPECT_FALSE(memory_.done());
  // Rejection still costs the fixed driver overhead.
  EXPECT_EQ(sim_.now(), api.timing().fixedOverhead);
}

TEST_F(ConfigFixture, VendorApiAcceptsFullAndMatchesCalibration) {
  VendorApi api{sim_, memory_};
  const auto full = builder_.buildFull(1);
  ApiStatus status = ApiStatus::kRejectedDone;
  auto load = [&](VendorApi& a, const bitstream::Bitstream& s,
                  ApiStatus& st) -> sim::Process { co_await a.load(s, st); };
  sim_.spawn(load(api, full, status));
  sim_.run();
  EXPECT_EQ(status, ApiStatus::kOk);
  EXPECT_TRUE(memory_.done());
  // Table 2 measured full configuration: 1678.04 ms.
  EXPECT_NEAR(sim_.now().toMilliseconds(), 1678.04, 1678.04 * 0.001);
  EXPECT_EQ(api.loadsPerformed(), 1u);
}

TEST_F(ConfigFixture, ModifiedLoaderAcceptsPartials) {
  const auto full = builder_.buildFull(1);
  memory_.applyFull(bitstream::parse(full, plan_.device()));
  VendorApi api{sim_, memory_, ApiTiming{}, /*modifiedLoader=*/true};
  const auto part = builder_.buildModulePartial(plan_.prr(1), 9);
  EXPECT_EQ(api.check(part), ApiStatus::kOk);
  ApiStatus status = ApiStatus::kRejectedSize;
  auto load = [&](VendorApi& a, const bitstream::Bitstream& s,
                  ApiStatus& st) -> sim::Process { co_await a.load(s, st); };
  sim_.spawn(load(api, part, status));
  sim_.run();
  EXPECT_EQ(status, ApiStatus::kOk);
  const auto range = plan_.prr(1).frames(plan_.device());
  EXPECT_EQ(memory_.frameOwner(range.first), 9u);
}

TEST_F(ConfigFixture, IcapEffectiveThroughputMatchesCalibration) {
  sim::SimplexLink link{sim_, "HT-in",
                        util::DataRate::megabytesPerSecond(1400)};
  IcapController icap{sim_, memory_, link};
  // Calibration: (4+9) cycles per 4-byte word at 66 MHz -> 20.31 MB/s.
  EXPECT_NEAR(icap.effectiveThroughput().toMegabytesPerSecond(), 20.31, 0.01);
  // Table 2 measured partials: ~43.48 ms (single) and ~19.77 ms (dual).
  EXPECT_NEAR(icap.drainTime(util::Bytes{887'444}).toMilliseconds(), 43.48,
              43.48 * 0.011);
  EXPECT_NEAR(icap.drainTime(util::Bytes{404'388}).toMilliseconds(), 19.77,
              19.77 * 0.011);
}

TEST_F(ConfigFixture, IcapLoadRunsPipelineAndApplies) {
  const auto full = builder_.buildFull(1);
  memory_.applyFull(bitstream::parse(full, plan_.device()));

  sim::SimplexLink link{sim_, "HT-in",
                        util::DataRate::megabytesPerSecond(1400)};
  IcapController icap{sim_, memory_, link};
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);

  auto load = [&](IcapController& c, const bitstream::Bitstream& s)
      -> sim::Process { co_await c.load(s); };
  sim_.spawn(load(icap, part));
  sim_.run();

  // End-to-end time is drain-dominated: within a chunk of the drain time.
  const double drainMs = icap.drainTime(part.size()).toMilliseconds();
  EXPECT_NEAR(sim_.now().toMilliseconds(), drainMs, drainMs * 0.02);
  const auto range = plan_.prr(0).frames(plan_.device());
  EXPECT_EQ(memory_.frameOwner(range.first), 7u);
  EXPECT_EQ(icap.loadsPerformed(), 1u);
  // The partial bitstream went over the host link.
  EXPECT_EQ(link.totalBytes().count(), part.size().count());
}

TEST_F(ConfigFixture, IcapRejectsFullStreams) {
  sim::SimplexLink link{sim_, "HT-in",
                        util::DataRate::megabytesPerSecond(1400)};
  IcapController icap{sim_, memory_, link};
  const auto full = builder_.buildFull(1);
  auto load = [&](IcapController& c, const bitstream::Bitstream& s)
      -> sim::Process { co_await c.load(s); };
  sim_.spawn(load(icap, full));
  EXPECT_THROW(sim_.run(), util::ConfigError);
}

TEST_F(ConfigFixture, ManagerRoutesAndTracksModules) {
  sim::SimplexLink link{sim_, "HT-in",
                        util::DataRate::megabytesPerSecond(1400)};
  VendorApi api{sim_, memory_};
  IcapController icap{sim_, memory_, link};
  Manager manager{sim_, plan_, api, icap};

  const auto full = builder_.buildFull(1);
  const auto partA = builder_.buildModulePartial(plan_.prr(0), 7);
  const auto partB = builder_.buildModulePartial(plan_.prr(1), 9);

  auto scenario = [&]() -> sim::Process {
    co_await manager.fullConfigure(full);
    EXPECT_EQ(manager.loadedModule(0), std::nullopt);
    co_await manager.loadModule(0, 7, partA);
    co_await manager.loadModule(1, 9, partB);
  };
  sim_.spawn(scenario());
  sim_.run();

  EXPECT_EQ(manager.loadedModule(0), std::optional<bitstream::ModuleId>{7});
  EXPECT_EQ(manager.loadedModule(1), std::optional<bitstream::ModuleId>{9});
  EXPECT_EQ(manager.findModule(9), std::optional<std::size_t>{1});
  EXPECT_EQ(manager.findModule(42), std::nullopt);
  EXPECT_EQ(manager.fullConfigCount(), 1u);
  EXPECT_EQ(manager.partialConfigCount(), 2u);
  EXPECT_FALSE(manager.reconfiguring(0));
}

TEST_F(ConfigFixture, ManagerRejectsStreamOutsideTargetPrr) {
  sim::SimplexLink link{sim_, "HT-in",
                        util::DataRate::megabytesPerSecond(1400)};
  VendorApi api{sim_, memory_};
  IcapController icap{sim_, memory_, link};
  Manager manager{sim_, plan_, api, icap};

  const auto full = builder_.buildFull(1);
  const auto partA = builder_.buildModulePartial(plan_.prr(0), 7);
  auto scenario = [&]() -> sim::Process {
    co_await manager.fullConfigure(full);
    co_await manager.loadModule(1, 7, partA);  // PRR0 stream into PRR1
  };
  sim_.spawn(scenario());
  EXPECT_THROW(sim_.run(), util::ConfigError);
}

}  // namespace
}  // namespace prtr::config
