// Failure injection: corrupted/truncated/foreign bitstreams, API
// rejections, and protocol misuse must fail loudly and leave hardware
// state untouched.
#include <gtest/gtest.h>

#include "bitstream/builder.hpp"
#include "bitstream/parser.hpp"
#include "config/icap_controller.hpp"
#include "config/manager.hpp"
#include "config/vendor_api.hpp"
#include "fabric/floorplan.hpp"
#include "sim/link.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr {
namespace {

class FailureFixture : public ::testing::Test {
 protected:
  fabric::Floorplan plan_ = fabric::makeDualPrrLayout();
  bitstream::Builder builder_{plan_.device()};
  sim::Simulator sim_;
  config::ConfigMemory memory_{plan_.device()};
  sim::SimplexLink link_{sim_, "HT-in",
                         util::DataRate::megabytesPerSecond(1400)};
  config::VendorApi api_{sim_, memory_};
  config::IcapController icap_{sim_, memory_, link_};
  config::Manager manager_{sim_, plan_, api_, icap_};

  void fullConfigure() {
    memory_.applyFull(bitstream::parse(builder_.buildFull(1), plan_.device()));
  }

  bitstream::Bitstream corrupt(bitstream::Bitstream stream, std::size_t at) {
    auto bytes = stream.bytes();
    bytes.at(at) ^= 0x5A;
    return bitstream::Bitstream{stream.header(), std::move(bytes)};
  }
};

TEST_F(FailureFixture, CorruptPayloadRejectedBeforeHardwareTouch) {
  fullConfigure();
  const auto clean = builder_.buildModulePartial(plan_.prr(0), 7);
  const auto bad = corrupt(clean, clean.bytes().size() / 2);
  const std::uint64_t framesBefore = memory_.framesWritten();

  auto load = [&](const bitstream::Bitstream& s) -> sim::Process {
    co_await icap_.load(s);
  };
  sim_.spawn(load(bad));
  EXPECT_THROW(sim_.run(), util::BitstreamError);
  EXPECT_EQ(memory_.framesWritten(), framesBefore);
  EXPECT_EQ(icap_.loadsPerformed(), 0u);
}

TEST_F(FailureFixture, EveryCorruptionOffsetIsCaught) {
  fullConfigure();
  const auto clean = builder_.buildModulePartial(plan_.prr(1), 9);
  util::Rng rng{321};
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t at = rng.below(clean.bytes().size());
    const auto bad = corrupt(clean, at);
    EXPECT_THROW((void)bitstream::parse(bad, plan_.device()),
                 util::BitstreamError)
        << "offset " << at;
  }
}

TEST_F(FailureFixture, TruncatedStreamsRejectedAtEveryLength) {
  const auto clean = builder_.buildModulePartial(plan_.prr(0), 7);
  for (const double fraction : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const auto length =
        static_cast<std::size_t>(fraction * static_cast<double>(clean.bytes().size()));
    const std::vector<std::uint8_t> cut(clean.bytes().begin(),
                                        clean.bytes().begin() +
                                            static_cast<std::ptrdiff_t>(length));
    EXPECT_THROW((void)bitstream::parse(std::span{cut}, plan_.device()),
                 util::BitstreamError);
  }
}

TEST_F(FailureFixture, ForeignDeviceStreamRejectedByManager) {
  fullConfigure();
  const fabric::Device other = fabric::makeXc2vp30();
  const bitstream::Builder otherBuilder{other};
  fabric::Region foreign{"f", fabric::RegionRole::kPrr, 2, 5};
  const auto stream = otherBuilder.buildModulePartial(foreign, 7);

  auto load = [&](const bitstream::Bitstream& s) -> sim::Process {
    co_await manager_.loadModule(0, 7, s);
  };
  sim_.spawn(load(stream));
  // Either the frame-range guard or the device tag fires; both are errors.
  EXPECT_ANY_THROW(sim_.run());
  EXPECT_EQ(manager_.partialConfigCount(), 0u);
}

TEST_F(FailureFixture, VendorRejectionPropagatesAsConfigError) {
  const auto partial = builder_.buildModulePartial(plan_.prr(0), 7);
  auto load = [&](const bitstream::Bitstream& s) -> sim::Process {
    co_await manager_.fullConfigure(s);  // partial via the full-config API
  };
  sim_.spawn(load(partial));
  EXPECT_THROW(sim_.run(), util::ConfigError);
  EXPECT_FALSE(memory_.done());
  EXPECT_EQ(manager_.fullConfigCount(), 0u);
}

TEST_F(FailureFixture, PartialIntoUnconfiguredDeviceFails) {
  const auto partial = builder_.buildModulePartial(plan_.prr(0), 7);
  auto load = [&](const bitstream::Bitstream& s) -> sim::Process {
    co_await manager_.loadModule(0, 7, s);
  };
  sim_.spawn(load(partial));
  EXPECT_THROW(sim_.run(), util::ConfigError);
}

TEST_F(FailureFixture, WrongPrrTargetRejectedWithoutSideEffects) {
  fullConfigure();
  const auto partial = builder_.buildModulePartial(plan_.prr(0), 7);
  auto load = [&](const bitstream::Bitstream& s) -> sim::Process {
    co_await manager_.loadModule(1, 7, s);
  };
  sim_.spawn(load(partial));
  EXPECT_THROW(sim_.run(), util::ConfigError);
  EXPECT_EQ(manager_.loadedModule(1), std::nullopt);
}

TEST_F(FailureFixture, HeaderFieldCorruptionDetected) {
  fullConfigure();
  const auto clean = builder_.buildModulePartial(plan_.prr(0), 7);
  // Flip a bit in the frame-count field: CRC catches it even though the
  // payload is untouched.
  auto bytes = clean.bytes();
  bytes[16] ^= 0x01;
  EXPECT_THROW((void)bitstream::parse(std::span{bytes}, plan_.device()),
               util::BitstreamError);
}

TEST_F(FailureFixture, RecoveryAfterRejectedLoad) {
  // A failed load must not poison the device: a subsequent clean load
  // succeeds and configures normally.
  fullConfigure();
  const auto clean = builder_.buildModulePartial(plan_.prr(0), 7);
  const auto bad = corrupt(clean, clean.bytes().size() - 10);

  auto scenario = [&]() -> sim::Process {
    try {
      co_await icap_.load(bad);
    } catch (const util::BitstreamError&) {
      // expected; retry with the clean stream
    }
    co_await icap_.load(clean);
  };
  sim_.spawn(scenario());
  sim_.run();
  EXPECT_EQ(icap_.loadsPerformed(), 1u);
  EXPECT_EQ(memory_.frameOwner(plan_.prr(0).frames(plan_.device()).first), 7u);
}

}  // namespace
}  // namespace prtr
