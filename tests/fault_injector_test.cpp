// fault::Injector edge cases: plans that inject nothing must perturb
// nothing (zero rates; fixed-period schedules whose first arrival lies
// beyond the scenario horizon), and per-node plan derivation
// (fault::Plan::forNode) must give every node its own independent,
// reproducible injection stream.
#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hpp"
#include "hprc/chassis.hpp"
#include "runtime/scenario.hpp"
#include "tasks/hwfunction.hpp"
#include "tasks/workload.hpp"

namespace prtr {
namespace {

std::string renderChaos(const fault::Plan& plan) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 12, util::Bytes{500'000});
  runtime::ScenarioOptions options;
  options.sides = runtime::ScenarioSides::kPrtrOnly;
  options.forceMiss = true;
  options.faults = plan;
  options.recovery.enabled = plan.active();
  const auto result = runtime::runScenario(registry, workload, options);
  return result.toString() + result.metrics.toString();
}

std::uint64_t injectedTotal(const obs::MetricsSnapshot& metrics,
                            const std::string& prefix = {}) {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
    total += metrics.counterOr(prefix + "fault.injected." +
                               fault::metricSuffix(
                                   static_cast<fault::FaultKind>(k)));
  }
  return total;
}

TEST(FaultInjectorEdgeTest, ZeroRatePlanInjectsNothingAndIgnoresItsSeed) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 12, util::Bytes{500'000});
  runtime::ScenarioOptions options;
  options.sides = runtime::ScenarioSides::kPrtrOnly;
  options.faults.seed = 1;
  options.recovery.enabled = true;
  const auto a = runtime::runScenario(registry, workload, options);
  EXPECT_EQ(injectedTotal(a.metrics), 0u);
  EXPECT_EQ(a.metrics.counterOr("prtr.fault.injected.total"), 0u);

  // An inactive plan installs no hooks, so its seed cannot matter.
  options.faults.seed = 0xDEADBEEF;
  const auto b = runtime::runScenario(registry, workload, options);
  EXPECT_EQ(a.toString() + a.metrics.toString(),
            b.toString() + b.metrics.toString());
}

TEST(FaultInjectorEdgeTest, FixedPeriodBeyondHorizonIsANoOp) {
  fault::Plan plan;
  plan.arrival = fault::Arrival::kFixedPeriod;
  // The scenario performs tens of eligible events; the trillion-th never
  // arrives, so an aggressive rate still injects nothing.
  plan.fixedPeriod = 1'000'000'000'000ULL;
  plan.icapAbortRate = 0.9;
  plan.transferTimeoutRate = 0.9;
  plan.apiRejectRate = 0.9;
  plan.linkStallRate = 0.9;

  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 12, util::Bytes{500'000});
  runtime::ScenarioOptions options;
  options.sides = runtime::ScenarioSides::kPrtrOnly;
  options.forceMiss = true;
  options.faults = plan;
  options.recovery.enabled = true;
  const auto result = runtime::runScenario(registry, workload, options);
  EXPECT_EQ(injectedTotal(result.metrics), 0u);
  EXPECT_EQ(result.metrics.counterOr("prtr.recovery.faults_absorbed"), 0u);
  EXPECT_GT(result.prtr.calls, 0u);
}

TEST(FaultInjectorEdgeTest, ForNodeDerivesIndependentReproducibleStreams) {
  fault::Plan base;
  base.seed = 4242;
  base.icapAbortRate = 0.2;
  base.wordFlipRate = 1e-5;

  // Node 0 keeps the plan's own seed (single-node traces unchanged);
  // other nodes get distinct derived seeds, stable across calls.
  EXPECT_EQ(base.forNode(0).seed, base.seed);
  EXPECT_NE(base.forNode(1).seed, base.seed);
  EXPECT_NE(base.forNode(1).seed, base.forNode(2).seed);
  EXPECT_EQ(base.forNode(1).seed, base.forNode(1).seed);
  // Rates are shared verbatim.
  EXPECT_DOUBLE_EQ(base.forNode(3).icapAbortRate, base.icapAbortRate);

  // Each node's stream is reproducible on its own...
  const std::string node1a = renderChaos(base.forNode(1));
  const std::string node1b = renderChaos(base.forNode(1));
  EXPECT_EQ(node1a, node1b);
  // ...and distinct nodes actually draw different faults.
  EXPECT_NE(node1a, renderChaos(base.forNode(2)));
}

TEST(FaultInjectorEdgeTest, ChassisBladesDrawIndependentInjectionStreams) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 24, util::Bytes{500'000});
  hprc::ChassisOptions options;
  options.blades = 2;
  options.partition = hprc::Partition::kRoundRobin;
  options.scenario.forceMiss = true;
  options.scenario.faults.seed = 99;
  options.scenario.faults.icapAbortRate = 0.25;
  options.scenario.recovery.enabled = true;

  const auto a = hprc::runChassis(registry, workload, options);
  const auto b = hprc::runChassis(registry, workload, options);
  EXPECT_EQ(a.metrics.toString(), b.metrics.toString());

  // Both blades saw faults, but from independent per-node streams: the
  // same symmetric workload yields different injection traces per blade.
  const std::uint64_t blade0 = injectedTotal(a.metrics, "blade0.");
  const std::uint64_t blade1 = injectedTotal(a.metrics, "blade1.");
  EXPECT_GT(blade0, 0u);
  EXPECT_GT(blade1, 0u);
  EXPECT_NE(a.metrics.toString().find("blade0.fault.injected"),
            std::string::npos);
}

}  // namespace
}  // namespace prtr
