// Tests for the verify timeline invariant analyzer (TL0xx rules), the
// Chrome-trace loader it feeds on post-hoc runs, the trace diff (DT002),
// and the inline ScenarioOptions::verify gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "obs/trace_export.hpp"
#include "runtime/scenario.hpp"
#include "sim/trace.hpp"
#include "tasks/workload.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "verify/timeline_rules.hpp"
#include "verify/trace_load.hpp"

namespace prtr {
namespace {

using analyze::DiagnosticSink;
using verify::LaneKind;

util::Time us(long long v) { return util::Time::microseconds(v); }

sim::NamedSpan span(std::string lane, std::string label, long long startUs,
                    long long endUs) {
  return sim::NamedSpan{std::move(lane), std::move(label), '#', us(startUs),
                        us(endUs)};
}

DiagnosticSink check(const std::vector<sim::NamedSpan>& spans) {
  DiagnosticSink sink;
  verify::checkSpans("test", spans, sink);
  return sink;
}

bool has(const DiagnosticSink& sink, const std::string& code) {
  const auto codes = sink.codes();
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

TEST(LaneClassification, FollowsExecutorConventions) {
  EXPECT_EQ(verify::classifyLane("config"), LaneKind::kConfigPort);
  EXPECT_EQ(verify::classifyLane("PRR0"), LaneKind::kComputeRegion);
  EXPECT_EQ(verify::classifyLane("PRR12"), LaneKind::kComputeRegion);
  EXPECT_EQ(verify::classifyLane("FPGA"), LaneKind::kComputeRegion);
  EXPECT_EQ(verify::classifyLane("HT-in"), LaneKind::kLink);
  EXPECT_EQ(verify::classifyLane("HT-out"), LaneKind::kLink);
  EXPECT_EQ(verify::classifyLane("recovery"), LaneKind::kRecovery);
  EXPECT_EQ(verify::classifyLane("CPU"), LaneKind::kSerial);
}

TEST(TimelineRules, CleanTimelineHasNoFindings) {
  const DiagnosticSink sink = check({
      span("CPU", "call(0)", 0, 10),
      span("config", "sobel", 0, 4),
      span("PRR0", "compute", 4, 9),
      span("CPU", "call(1)", 10, 20),
      span("config", "median", 10, 14),  // touches nothing: [10,14) after [0,4)
      span("PRR0", "compute", 14, 19),
  });
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
}

TEST(TimelineRules, TouchingEndpointsAreNotAnOverlap) {
  const DiagnosticSink sink = check({
      span("config", "a", 0, 5),
      span("config", "b", 5, 10),  // half-open: back-to-back loads are legal
  });
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
}

TEST(TimelineRules, SpanEndingBeforeStartIsTl001) {
  const DiagnosticSink sink = check({span("CPU", "bad", 10, 5)});
  EXPECT_TRUE(has(sink, "TL001")) << sink.toText();
  EXPECT_TRUE(sink.hasErrors());
}

TEST(TimelineRules, OutOfOrderLaneRecordingIsTl002) {
  const DiagnosticSink sink = check({
      span("CPU", "late", 10, 12),
      span("CPU", "early", 0, 3),
  });
  EXPECT_TRUE(has(sink, "TL002")) << sink.toText();
  EXPECT_FALSE(has(sink, "TL003"));  // [0,3) and [10,12) do not overlap
}

TEST(TimelineRules, SerialLaneOverlapIsTl003) {
  const DiagnosticSink sink = check({
      span("CPU", "a", 0, 10),
      span("CPU", "b", 5, 15),
  });
  EXPECT_TRUE(has(sink, "TL003")) << sink.toText();
}

TEST(TimelineRules, PrrDoubleResidencyIsTl004) {
  const DiagnosticSink sink = check({
      span("PRR0", "sobel", 0, 10),
      span("PRR0", "median", 5, 15),
      span("PRR1", "edge", 5, 15),  // different region: legal
  });
  EXPECT_TRUE(has(sink, "TL004")) << sink.toText();
  EXPECT_EQ(sink.codes().size(), 1u);
}

TEST(TimelineRules, IcapOverlapIsTl005) {
  const DiagnosticSink sink = check({
      span("config", "sobel", 0, 10),
      span("config", "median", 5, 15),
  });
  EXPECT_TRUE(has(sink, "TL005")) << sink.toText();
}

TEST(TimelineRules, SimplexLinkOverlapIsTl006) {
  const DiagnosticSink sink = check({
      span("HT-in", "in(a)", 0, 10),
      span("HT-in", "in(b)", 5, 15),
      span("HT-out", "out(a)", 5, 15),  // the other direction is independent
  });
  EXPECT_TRUE(has(sink, "TL006")) << sink.toText();
  EXPECT_EQ(sink.codes().size(), 1u);
}

TEST(TimelineRules, UnpairedRecoveryIsTl007) {
  const DiagnosticSink paired = check({
      span("config", "retry(sobel)", 5, 8),
      span("recovery", "episode", 4, 9),
  });
  EXPECT_TRUE(paired.codes().empty()) << paired.toText();

  const DiagnosticSink unpaired = check({
      span("config", "load", 0, 3),
      span("recovery", "episode", 10, 20),
  });
  EXPECT_TRUE(has(unpaired, "TL007")) << unpaired.toText();
  EXPECT_FALSE(unpaired.hasErrors());  // TL007 is a warning
}

TEST(TimelineRules, RecoveryRuleNeedsAConfigLane) {
  // Without the config lane captured, pairing is not checkable at all.
  const DiagnosticSink sink = check({span("recovery", "episode", 10, 20)});
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
}

TEST(TimelineRules, TimelineOverloadMatchesSpanOverload) {
  sim::Timeline timeline;
  const sim::LaneId config = timeline.lane("config");
  timeline.record(config, timeline.label("sobel"), '#', us(0), us(10));
  timeline.record(config, timeline.label("median"), '#', us(5), us(15));
  DiagnosticSink sink;
  verify::checkTimeline("live", timeline, sink);
  EXPECT_TRUE(has(sink, "TL005"));
}

// ---------------------------------------------------------------------------
// Chrome-trace loading
// ---------------------------------------------------------------------------

TEST(TraceLoad, RoundTripsAnExportedTimeline) {
  sim::Timeline timeline;
  timeline.record(timeline.lane("CPU"), timeline.label("call(0)"), '#', us(0),
                  us(10));
  timeline.record(timeline.lane("config"), timeline.label("sobel"), '#', us(2),
                  us(6));
  obs::ChromeTrace trace;
  trace.add("prtr", timeline);

  const auto processes = verify::loadChromeTrace(trace.toJson());
  ASSERT_EQ(processes.size(), 1u);
  EXPECT_EQ(processes[0].name, "prtr");
  ASSERT_EQ(processes[0].spans.size(), 2u);
  EXPECT_EQ(processes[0].spans[0].lane, "CPU");
  EXPECT_EQ(processes[0].spans[0].label, "call(0)");
  EXPECT_EQ(processes[0].spans[0].start, us(0));
  EXPECT_EQ(processes[0].spans[0].end, us(10));
  EXPECT_EQ(processes[0].spans[1].lane, "config");
  EXPECT_EQ(processes[0].spans[1].start, us(2));
  EXPECT_EQ(processes[0].spans[1].end, us(6));

  DiagnosticSink sink;
  verify::checkTrace(processes, sink);
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
}

TEST(TraceLoad, NegativeDurationSurvivesLoadingAndIsTl001) {
  // A causality-violating trace cannot come from sim::Timeline (record()
  // rejects it); post-hoc verification must still load and diagnose it.
  const std::string json =
      R"({"traceEvents":[)"
      R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"prtr"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"CPU"}},)"
      R"({"name":"bad","cat":"CPU","ph":"X","pid":1,"tid":1,"ts":10,"dur":-4}]})";
  const auto processes = verify::loadChromeTrace(json);
  ASSERT_EQ(processes.size(), 1u);
  ASSERT_EQ(processes[0].spans.size(), 1u);
  EXPECT_LT(processes[0].spans[0].end, processes[0].spans[0].start);
  DiagnosticSink sink;
  verify::checkTrace(processes, sink);
  EXPECT_TRUE(has(sink, "TL001")) << sink.toText();
}

TEST(TraceLoad, MalformedJsonThrows) {
  EXPECT_THROW((void)verify::loadChromeTrace("{"), util::DomainError);
  EXPECT_THROW((void)verify::loadChromeTrace(R"({"events":[]})"),
               util::DomainError);
  EXPECT_THROW((void)verify::loadChromeTraceFile("/nonexistent/trace.json"),
               util::Error);
}

TEST(TraceDiff, IdenticalTracesHaveNoFindings) {
  const std::vector<verify::TraceProcess> capture{
      {"prtr", {span("CPU", "a", 0, 1), span("config", "b", 1, 2)}}};
  DiagnosticSink sink;
  verify::compareTraces(capture, capture, sink);
  EXPECT_TRUE(sink.codes().empty()) << sink.toText();
}

TEST(TraceDiff, DifferencesAreDt002) {
  const std::vector<verify::TraceProcess> left{
      {"prtr", {span("CPU", "a", 0, 1)}}};
  const std::vector<verify::TraceProcess> endDiffers{
      {"prtr", {span("CPU", "a", 0, 2)}}};
  DiagnosticSink sink;
  verify::compareTraces(left, endDiffers, sink);
  EXPECT_TRUE(has(sink, "DT002")) << sink.toText();

  const std::vector<verify::TraceProcess> spanCountDiffers{
      {"prtr", {span("CPU", "a", 0, 1), span("CPU", "b", 1, 2)}}};
  DiagnosticSink sink2;
  verify::compareTraces(left, spanCountDiffers, sink2);
  EXPECT_TRUE(has(sink2, "DT002")) << sink2.toText();
}

// ---------------------------------------------------------------------------
// Inline scenario verification
// ---------------------------------------------------------------------------

TEST(ScenarioVerify, CleanScenarioPassesWithNoOtherHooks) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 6, util::Bytes{1'000'000});
  runtime::ScenarioOptions options;
  options.verify = true;
  const runtime::ScenarioResult result =
      runtime::runScenario(registry, workload, options);
  EXPECT_GT(result.speedup, 1.0);
}

TEST(ScenarioVerify, VerifiedTimelinesMatchHookProvidedOnes) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{500'000});
  sim::Timeline prtrTimeline;
  runtime::ScenarioOptions options;
  options.verify = true;
  options.hooks.timeline = &prtrTimeline;
  (void)runtime::runScenario(registry, workload, options);
  // The checker ran over the caller's timeline, which really was recorded.
  EXPECT_FALSE(prtrTimeline.empty());
  DiagnosticSink sink;
  verify::checkTimeline("prtr", prtrTimeline, sink);
  EXPECT_FALSE(sink.hasErrors()) << sink.toText();
}

}  // namespace
}  // namespace prtr
