// Determinism contract of chaos runs (satellite of the fault subsystem):
// for a fixed fault seed, a full runScenario under injection must produce
// byte-identical reports and metrics at any exec-pool width, at every
// chaos rate including zero; rate 0 with recovery enabled must match the
// recovery-disabled baseline exactly (zero overhead when healthy); and the
// artifact cache must never serve an artifact whose build failed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bitstream/builder.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "fabric/floorplan.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/error.hpp"

namespace prtr {
namespace {

/// Dual-PRR forced-miss scenario (the paper's Figure-9 shape) under the
/// given word-flip rate, rendered to the full report + metrics string —
/// every number the run publishes, including the fault.injected.* and
/// recovery.* counters.
std::string chaosRender(double rate, std::uint64_t seed, bool recovery) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 18, util::Bytes{1'000'000});
  runtime::ScenarioOptions options;
  options.layout = xd1::Layout::kDualPrr;
  options.basis = model::ConfigTimeBasis::kMeasured;
  options.forceMiss = true;
  options.faults.seed = seed;
  options.faults.wordFlipRate = rate;
  options.faults.icapAbortRate = rate > 0.0 ? 0.01 : 0.0;
  options.recovery.enabled = recovery;
  const runtime::ScenarioResult result =
      runtime::runScenario(registry, workload, options);
  return result.toString() + result.metrics.toString();
}

/// Renders every chaos rate through the exec pool at the given width and
/// concatenates; pool width must never change a byte.
std::string sweepRender(std::size_t threads) {
  const std::vector<double> rates = {0.0, 1e-6, 1e-4};
  exec::ForOptions options;
  options.threads = threads;
  const auto rendered = exec::parallelMap(
      rates,
      [](double rate) { return chaosRender(rate, 24091, /*recovery=*/true); },
      options);
  std::string joined;
  for (const std::string& r : rendered) joined += r;
  return joined;
}

TEST(ChaosDeterminismTest, SweepIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = sweepRender(1);
  EXPECT_EQ(sweepRender(8), serial);
}

TEST(ChaosDeterminismTest, RepeatedRunsAreByteIdenticalPerSeed) {
  EXPECT_EQ(chaosRender(1e-4, 24091, true), chaosRender(1e-4, 24091, true));
  EXPECT_NE(chaosRender(1e-4, 24091, true), chaosRender(1e-4, 7, true));
}

TEST(ChaosDeterminismTest, RateZeroWithRecoveryMatchesBaselineBytes) {
  // The zero-overhead-when-healthy acceptance criterion: enabling the
  // recovery runtime without any injection reproduces the pre-fault
  // baseline report byte-for-byte — recovery.* counters are only emitted
  // when the policy is enabled, so strip them before comparing.
  const std::string baseline = chaosRender(0.0, 24091, /*recovery=*/false);
  std::string healthy = chaosRender(0.0, 24091, /*recovery=*/true);
  std::string stripped;
  std::size_t start = 0;
  while (start <= healthy.size()) {
    const std::size_t end = healthy.find('\n', start);
    const std::string line = healthy.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    if (line.find("recovery.") == std::string::npos) {
      stripped += line;
      if (end != std::string::npos) stripped += '\n';
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  EXPECT_EQ(stripped, baseline);
}

TEST(ChaosDeterminismTest, ChaosRunCompletesViaLadderAndReportsLanding) {
  // At 1e-4/word the dual-PRR scenario sees ~10 flips per partial load;
  // the run must still complete, absorbing them through verify/repair and
  // (for aborts) the ladder, and say where it landed.
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 18, util::Bytes{1'000'000});
  runtime::ScenarioOptions options;
  options.layout = xd1::Layout::kDualPrr;
  options.forceMiss = true;
  options.faults.seed = 24091;
  options.faults.wordFlipRate = 1e-4;
  options.faults.icapAbortRate = 0.01;
  options.recovery.enabled = true;
  const runtime::ScenarioResult result =
      runtime::runScenario(registry, workload, options);

  const auto& counters = result.metrics.counters;
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0u : it->second;
  };
  EXPECT_GT(counter("prtr.fault.injected.total"), 0u);
  EXPECT_GT(counter("prtr.recovery.requests"), 0u);
  EXPECT_GT(counter("prtr.recovery.verifications"), 0u);
  EXPECT_GT(counter("prtr.recovery.degraded_to"), 0u);  // landed on some rung
  EXPECT_GT(result.speedup, 1.0);  // PRTR still wins under chaos
}

TEST(ChaosDeterminismTest, FailedArtifactBuildsAreNeverCached) {
  // Single-flight failure contract: a build that throws must propagate to
  // the caller and leave nothing resident, so the next caller rebuilds
  // (and can succeed) instead of being served a phantom artifact.
  exec::ArtifactCache cache;
  const exec::ArtifactCache::Key key = 0xBAD5EEDu;
  EXPECT_THROW(
      (void)cache.bitstream(key,
                            []() -> bitstream::Bitstream {
                              throw util::FaultError{
                                  "injected fault during artifact build"};
                            }),
      util::FaultError);
  EXPECT_EQ(cache.stats().entries, 0u);

  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{plan.device()};
  const auto stream = cache.bitstream(
      key, [&] { return builder.buildModulePartial(plan.prr(0), 7); });
  ASSERT_NE(stream, nullptr);
  // Two builder invocations (the failure was not cached), then a real hit.
  EXPECT_EQ(cache.stats().misses, 2u);
  const auto again = cache.bitstream(key, [&]() -> bitstream::Bitstream {
    throw util::FaultError{"builder must not run on a hit"};
  });
  EXPECT_EQ(again->bytes(), stream->bytes());
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace prtr
