// Recovery-runtime unit tests: bounded retry with backoff over injected
// ICAP aborts, readback-verify + frame-granular repair of word flips, the
// degradation ladder (module partial -> full-PRR reload -> full device),
// and the healthy-path contract that an enabled-but-unused recovery policy
// changes nothing about simulated time. Fixed-period arrival plans make the
// fault schedule exact, so every assertion is on deterministic counts.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>

#include "bitstream/library.hpp"
#include "config/manager.hpp"
#include "config/recovery.hpp"
#include "config/scrubber.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "xd1/node.hpp"

namespace prtr {
namespace {

using config::RecoveryRung;
using config::RecoveryStreams;
using config::VerifyMode;

constexpr std::size_t rungIdx(RecoveryRung rung) {
  return static_cast<std::size_t>(rung);
}

/// One XD1 blade plus a bitstream library over its floorplan, with the
/// fault plan / recovery policy injected through NodeConfig exactly as
/// runtime::runScenario does it.
struct Blade {
  explicit Blade(xd1::NodeConfig config = {})
      : node(sim, std::move(config)),
        library(node.floorplan(),
                {{7, "seven", 1.0}, {9, "nine", 1.0}}) {}

  /// Runs one coroutine to completion.
  template <typename Coro>
  void run(Coro&& coro) {
    sim.spawn(std::forward<Coro>(coro));
    sim.run();
  }

  RecoveryStreams streamsFor(std::size_t prr, bitstream::ModuleId module,
                             bool withLadder) {
    RecoveryStreams streams;
    streams.modulePartial = &library.modulePartial(prr, module);
    if (withLadder) {
      streams.fullPrr = &library.prrReload(prr, module);
      streams.fullDevice = &library.full();
    }
    return streams;
  }

  sim::Simulator sim;
  xd1::Node node;
  bitstream::Library library;
};

xd1::NodeConfig chaosConfig(const fault::Plan& plan,
                            const config::RecoveryPolicy& policy) {
  xd1::NodeConfig config;
  config.faults = plan;
  config.recovery = policy;
  return config;
}

TEST(FaultRecoveryTest, DisabledPolicyIsAPlainLoadWithZeroAccounting) {
  Blade blade;
  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModuleRecovering(
        0, 7, blade.streamsFor(0, 7, /*withLadder=*/false));
  };
  blade.run(script());
  EXPECT_EQ(blade.node.manager().loadedModule(0), 7u);
  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_EQ(stats.degradedTo, RecoveryRung::kNone);
}

TEST(FaultRecoveryTest, HealthyRecoveringRunMatchesPlainSimTime) {
  // Zero-overhead-when-healthy: recovery enabled with kOnFault verify and
  // no faults must finish at the exact same simulated instant as the
  // recovery-disabled blade running the identical sequence.
  Blade plain;
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.verify = VerifyMode::kOnFault;
  Blade recovering{chaosConfig(fault::Plan{}, policy)};

  auto script = [](Blade& blade) -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModuleRecovering(
        0, 7, blade.streamsFor(0, 7, /*withLadder=*/true));
    co_await blade.node.manager().loadModuleRecovering(
        1, 9, blade.streamsFor(1, 9, /*withLadder=*/true));
  };
  plain.run(script(plain));
  recovering.run(script(recovering));

  EXPECT_EQ(recovering.sim.now(), plain.sim.now());
  const config::RecoveryStats& stats =
      recovering.node.manager().recoveryStats();
  EXPECT_EQ(stats.requests, 3u);  // one full configure + two module loads
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.verifications, 0u);  // kOnFault saw no upsets
  EXPECT_EQ(stats.backoffTime, util::Time::zero());
}

TEST(FaultRecoveryTest, IcapAbortIsRetriedWithExponentialBackoff) {
  // Fixed period 2: ICAP loads 2, 4, 6... abort. The first module load
  // succeeds outright; the second absorbs one abort and lands on retry.
  fault::Plan plan;
  plan.arrival = fault::Arrival::kFixedPeriod;
  plan.fixedPeriod = 2;
  plan.icapAbortRate = 1.0;
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.verify = VerifyMode::kOff;
  Blade blade{chaosConfig(plan, policy)};

  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModuleRecovering(
        0, 7, blade.streamsFor(0, 7, /*withLadder=*/false));  // ICAP #1: ok
    co_await blade.node.manager().loadModuleRecovering(
        1, 9, blade.streamsFor(1, 9, /*withLadder=*/false));  // #2 abort, #3 ok
  };
  blade.run(script());

  EXPECT_EQ(blade.node.manager().loadedModule(1), 9u);
  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.faultsAbsorbed, 1u);
  EXPECT_EQ(stats.backoffTime, policy.backoffBase);  // first retry: base pause
  EXPECT_EQ(stats.landedOnRung[rungIdx(RecoveryRung::kModulePartial)], 2u);
  EXPECT_EQ(stats.degradedTo, RecoveryRung::kModulePartial);
  ASSERT_NE(blade.node.injector(), nullptr);
  EXPECT_EQ(blade.node.injector()->injected(fault::FaultKind::kIcapAbort), 1u);
}

TEST(FaultRecoveryTest, ExhaustedRetriesWithoutLadderThrowFaultError) {
  fault::Plan plan;
  plan.arrival = fault::Arrival::kFixedPeriod;
  plan.fixedPeriod = 1;  // every ICAP load aborts
  plan.icapAbortRate = 1.0;
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 1;
  policy.ladder = false;
  policy.verify = VerifyMode::kOff;
  Blade blade{chaosConfig(plan, policy)};

  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModuleRecovering(
        0, 7, blade.streamsFor(0, 7, /*withLadder=*/false));
  };
  blade.sim.spawn(script());
  EXPECT_THROW(blade.sim.run(), util::FaultError);

  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_EQ(stats.attempts, 3u);        // full configure + 2 module attempts
  EXPECT_EQ(stats.faultsAbsorbed, 2u);  // both module attempts aborted
  EXPECT_EQ(stats.escalations, 0u);
  EXPECT_EQ(stats.degradedTo, RecoveryRung::kNone);  // never landed
}

TEST(FaultRecoveryTest, LadderEscalatesPastAFailingRung) {
  // Burn ICAP load #1 with a plain load so the recovering request's first
  // attempt is ICAP #2 (aborts under fixed period 2); with zero retries the
  // module rung fails and the ladder lands on the full-PRR reload (#3).
  fault::Plan plan;
  plan.arrival = fault::Arrival::kFixedPeriod;
  plan.fixedPeriod = 2;
  plan.icapAbortRate = 1.0;
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 0;
  policy.verify = VerifyMode::kOff;
  Blade blade{chaosConfig(plan, policy)};

  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModule(
        0, 7, blade.library.modulePartial(0, 7));  // ICAP #1: ok
    co_await blade.node.manager().loadModuleRecovering(
        1, 9, blade.streamsFor(1, 9, /*withLadder=*/true));
  };
  blade.run(script());

  EXPECT_EQ(blade.node.manager().loadedModule(1), 9u);
  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_EQ(stats.escalations, 1u);
  EXPECT_EQ(stats.faultsAbsorbed, 1u);
  EXPECT_EQ(stats.landedOnRung[rungIdx(RecoveryRung::kFullPrrReload)], 1u);
  EXPECT_EQ(stats.degradedTo, RecoveryRung::kFullPrrReload);
  EXPECT_EQ(stats.fullDeviceFallbacks, 0u);
}

TEST(FaultRecoveryTest, DifferenceRungIsPreferredWhenSupplied) {
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.verify = VerifyMode::kOff;
  Blade blade{chaosConfig(fault::Plan{}, policy)};
  blade.library.buildDifferenceFlow();

  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModuleRecovering(
        0, 7, blade.streamsFor(0, 7, /*withLadder=*/true));
    RecoveryStreams streams = blade.streamsFor(0, 9, /*withLadder=*/true);
    streams.difference = &blade.library.differencePartial(0, 7, 9);
    co_await blade.node.manager().loadModuleRecovering(0, 9, streams);
  };
  blade.run(script());

  EXPECT_EQ(blade.node.manager().loadedModule(0), 9u);
  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_EQ(stats.landedOnRung[rungIdx(RecoveryRung::kDifferencePartial)], 1u);
  EXPECT_EQ(stats.landedOnRung[rungIdx(RecoveryRung::kModulePartial)], 1u);
}

TEST(FaultRecoveryTest, WordFlipsAreVerifiedAndRepairedFrameGranular) {
  // ~23k words per dual-PRR partial at 1e-3/word => ~23 expected flips per
  // load; a whole-stream retry would essentially never come back clean, so
  // a converging run proves the repair loop is frame-granular.
  fault::Plan plan;
  plan.seed = 2409;
  plan.wordFlipRate = 1e-3;
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.verify = VerifyMode::kOnFault;
  Blade blade{chaosConfig(plan, policy)};

  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().loadModuleRecovering(
        0, 7, blade.streamsFor(0, 7, /*withLadder=*/true));
  };
  blade.run(script());

  EXPECT_EQ(blade.node.manager().loadedModule(0), 7u);
  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_GE(stats.verifications, 1u);
  EXPECT_GE(stats.verifyFailures, 1u);
  EXPECT_GE(stats.frameRepairs, 1u);
  EXPECT_GT(stats.verifyTime, util::Time::zero());
  EXPECT_GT(stats.repairTime, util::Time::zero());
  // The landed region really is clean: readback against the golden stream.
  EXPECT_TRUE(config::verifyRegion(blade.node.configMemory(),
                                   blade.library.modulePartial(0, 7))
                  .empty());
  ASSERT_NE(blade.node.injector(), nullptr);
  EXPECT_GE(blade.node.injector()->injected(fault::FaultKind::kWordFlip), 1u);
}

TEST(FaultRecoveryTest, TransientApiRejectIsAbsorbedByFullConfigure) {
  // Fixed period 2 on the vendor API: the second full configure is rejected
  // transiently and succeeds on its retry.
  fault::Plan plan;
  plan.arrival = fault::Arrival::kFixedPeriod;
  plan.fixedPeriod = 2;
  plan.apiRejectRate = 1.0;
  config::RecoveryPolicy policy;
  policy.enabled = true;
  policy.verify = VerifyMode::kOff;
  Blade blade{chaosConfig(plan, policy)};

  auto script = [&]() -> sim::Process {
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
    co_await blade.node.manager().fullConfigureRecovering(blade.library.full());
  };
  blade.run(script());

  const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.faultsAbsorbed, 1u);
  EXPECT_EQ(blade.node.vendorApi().transientFaults(), 1u);
}

TEST(FaultRecoveryTest, DeterministicChaosRunsAreByteIdenticalPerSeed) {
  // Same plan + seed => identical counters and identical final sim time;
  // a different seed moves the Poisson draws.
  auto runOnce = [](std::uint64_t seed) {
    fault::Plan plan;
    plan.seed = seed;
    plan.wordFlipRate = 1e-3;
    plan.icapAbortRate = 0.2;
    config::RecoveryPolicy policy;
    policy.enabled = true;
    Blade blade{chaosConfig(plan, policy)};
    auto script = [&]() -> sim::Process {
      co_await blade.node.manager().fullConfigureRecovering(
          blade.library.full());
      co_await blade.node.manager().loadModuleRecovering(
          0, 7, blade.streamsFor(0, 7, /*withLadder=*/true));
      co_await blade.node.manager().loadModuleRecovering(
          1, 9, blade.streamsFor(1, 9, /*withLadder=*/true));
    };
    blade.run(script());
    const config::RecoveryStats& stats = blade.node.manager().recoveryStats();
    return std::tuple{blade.sim.now(), stats.attempts, stats.frameRepairs,
                      blade.node.injector()->totalInjected()};
  };
  EXPECT_EQ(runOnce(7), runOnce(7));
  EXPECT_NE(runOnce(7), runOnce(8));
}

}  // namespace
}  // namespace prtr
