// Tests for the analysis helpers: parallel sweeps and figure emitters.
// The parallel shims are deprecated (they forward to exec::Pool) but must
// keep working until external callers migrate, so we test them as-is.
#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/figures.hpp"
#include "analysis/parallel.hpp"
#include "util/error.hpp"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace prtr::analysis {
namespace {

TEST(ParallelTest, ForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, MapPreservesOrder) {
  std::vector<int> inputs(100);
  for (int i = 0; i < 100; ++i) inputs[static_cast<std::size_t>(i)] = i;
  const auto out = parallelMap(inputs, [](int x) { return x * x; });
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ParallelTest, MapSupportsNonDefaultConstructibleResults) {
  // Regression: the old implementation required R to be default-constructible
  // because it pre-sized a std::vector<R>. The exec-backed version stores
  // results in optional slots, so this must compile and preserve order.
  struct Wrapped {
    explicit Wrapped(int v) : value(v) {}
    int value;
  };
  std::vector<int> inputs{3, 1, 4, 1, 5, 9, 2, 6};
  const auto out =
      parallelMap(inputs, [](int x) { return Wrapped{x * 10}; }, 2);
  ASSERT_EQ(out.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(out[i].value, inputs[i] * 10);
  }
}

TEST(ParallelTest, ExceptionsPropagate) {
  EXPECT_THROW(parallelFor(64,
                           [](std::size_t i) {
                             if (i == 13) throw util::DomainError{"unlucky"};
                           }),
               util::DomainError);
}

TEST(ParallelTest, SingleThreadFallback) {
  int sum = 0;
  parallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelTest, ShimsWarnOncePerCallSite) {
  // Each deprecated shim logs one pointer at its exec:: replacement per
  // distinct call site, then stays silent so hot sweep loops don't flood
  // the log. Capture std::clog (the util::Log sink) around two sites.
  std::ostringstream captured;
  std::streambuf* const old = std::clog.rdbuf(captured.rdbuf());
  for (int repeat = 0; repeat < 3; ++repeat) {
    parallelFor(4, [](std::size_t) {}, 1);  // one site, called three times
  }
  parallelFor(4, [](std::size_t) {}, 1);  // a second, distinct site
  const std::vector<int> inputs{1, 2, 3};
  for (int repeat = 0; repeat < 2; ++repeat) {
    (void)parallelMap(inputs, [](int x) { return x; }, 1);
  }
  std::clog.rdbuf(old);

  const std::string log = captured.str();
  std::size_t warnings = 0;
  for (std::size_t pos = log.find(" is deprecated");
       pos != std::string::npos; pos = log.find(" is deprecated", pos + 1)) {
    ++warnings;
  }
  EXPECT_EQ(warnings, 3u);  // two parallelFor sites + one parallelMap site
  EXPECT_NE(log.find("analysis::parallelFor"), std::string::npos);
  EXPECT_NE(log.find("analysis::parallelMap"), std::string::npos);
  EXPECT_NE(log.find("use exec::parallelFor instead"), std::string::npos);
}

TEST(LogGridTest, EndpointsAndMonotonicity) {
  const auto grid = logGrid(1e-3, 100.0, 26);
  ASSERT_EQ(grid.size(), 26u);
  EXPECT_NEAR(grid.front(), 1e-3, 1e-9);
  EXPECT_NEAR(grid.back(), 100.0, 1e-6);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(Fig5Test, SeriesNamesEncodeHitRatio) {
  const auto series = makeFig5Series(0.1, {0.0, 0.25}, 11);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "H=0");
  EXPECT_EQ(series[1].name, "H=0.25");
}

TEST(Fig9Test, SmallSweepProducesConsistentPoints) {
  Fig9Options opts;
  opts.basis = model::ConfigTimeBasis::kEstimated;
  opts.points = 5;
  opts.xTaskLo = 0.05;
  opts.xTaskHi = 5.0;
  opts.nCalls = 30;
  const auto points = makeFig9(opts);
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    EXPECT_GT(p.simSpeedup, 0.9);
    EXPECT_GT(p.modelSpeedup, 0.9);
    // Simulation and finite-call model agree (shape reproduction).
    EXPECT_NEAR(p.simSpeedup, p.modelSpeedup, p.modelSpeedup * 0.1);
    // eq.7 bounds eq.6 from above (initial config only hurts finite runs).
    EXPECT_GE(p.modelAsymptote, p.modelSpeedup - 1e-9);
  }
  const auto table = fig9Table(points);
  EXPECT_EQ(table.rowCount(), 5u);
  const std::string plot = fig9Plot(points, "test");
  EXPECT_NE(plot.find("simulated"), std::string::npos);
}

}  // namespace
}  // namespace prtr::analysis

#pragma GCC diagnostic pop
