// Tests for the analysis figure emitters. (The deprecated parallel shims
// that used to live alongside them were removed in PR 6; the sweep
// machinery they forwarded to is covered by exec_pool_test.cpp.)
#include <gtest/gtest.h>

#include <string>

#include "analysis/figures.hpp"

namespace prtr::analysis {
namespace {

TEST(LogGridTest, EndpointsAndMonotonicity) {
  const auto grid = logGrid(1e-3, 100.0, 26);
  ASSERT_EQ(grid.size(), 26u);
  EXPECT_NEAR(grid.front(), 1e-3, 1e-9);
  EXPECT_NEAR(grid.back(), 100.0, 1e-6);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(Fig5Test, SeriesNamesEncodeHitRatio) {
  const auto series = makeFig5Series(0.1, {0.0, 0.25}, 11);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "H=0");
  EXPECT_EQ(series[1].name, "H=0.25");
}

TEST(Fig9Test, SmallSweepProducesConsistentPoints) {
  Fig9Options opts;
  opts.basis = model::ConfigTimeBasis::kEstimated;
  opts.points = 5;
  opts.xTaskLo = 0.05;
  opts.xTaskHi = 5.0;
  opts.nCalls = 30;
  const auto points = makeFig9(opts);
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    EXPECT_GT(p.simSpeedup, 0.9);
    EXPECT_GT(p.modelSpeedup, 0.9);
    // Simulation and finite-call model agree (shape reproduction).
    EXPECT_NEAR(p.simSpeedup, p.modelSpeedup, p.modelSpeedup * 0.1);
    // eq.7 bounds eq.6 from above (initial config only hurts finite runs).
    EXPECT_GE(p.modelAsymptote, p.modelSpeedup - 1e-9);
  }
  const auto table = fig9Table(points);
  EXPECT_EQ(table.rowCount(), 5u);
  const std::string plot = fig9Plot(points, "test");
  EXPECT_NE(plot.find("simulated"), std::string::npos);
}

}  // namespace
}  // namespace prtr::analysis
