// prtr::trace integration tests over the fleet simulator: the recorder is
// a pure observer (core bytes identical with tracing on or off), the kept
// trace set and its Perfetto export are byte-identical at any --threads,
// tail retention is total by construction, the per-cell sampled cap only
// ever trims hash-sampled keeps, the per-user token-bucket limiter sheds
// deterministically, the exported trace satisfies the TL/RQ invariant
// rules, and the SLO burn-rate gate produces a populated verdict.
#include <gtest/gtest.h>

#include <string>

#include "fleet/fleet.hpp"
#include "obs/trace_export.hpp"
#include "tasks/hwfunction.hpp"
#include "verify/trace_load.hpp"

namespace prtr {
namespace {

const tasks::FunctionRegistry& paperRegistry() {
  static const tasks::FunctionRegistry registry = tasks::makePaperFunctions();
  return registry;
}

const fleet::BladeProfile& sharedProfile() {
  static const fleet::BladeProfile profile = fleet::calibrateBladeProfile(
      paperRegistry(), runtime::ScenarioOptions{}, util::Bytes::kibi(64));
  return profile;
}

fleet::FleetOptions smallFleet() {
  fleet::FleetOptions options;
  options.cells = 4;
  options.bladesPerCell = 3;
  options.requests = 20'000;
  options.payloadBytes = util::Bytes::kibi(64);
  options.users = 32;
  return options;
}

fault::Plan hostilePlan() {
  fault::Plan plan;
  plan.seed = 77;
  plan.icapAbortRate = 0.30;
  plan.transferTimeoutRate = 0.10;
  plan.linkStallRate = 0.05;
  return plan;
}

/// A fleet with every trace-relevant mechanism engaged: hostile blades for
/// failures/retries, hedging for hedge-won tails, a tight per-user limiter
/// for rate-limit sheds.
fleet::FleetOptions tracedFleet() {
  fleet::FleetOptions options = smallFleet();
  options.degradedFraction = 0.25;
  options.degradedFaults = hostilePlan();
  options.hedge.enabled = true;
  options.rateLimit.enabled = true;
  options.rateLimit.ratePerSecond = 4.5;
  options.rateLimit.burst = 10.0;
  options.tracing.enabled = true;
  options.tracing.sampleRate = 0.02;
  options.tracing.slowMinSamples = 500;
  return options;
}

TEST(FleetTraceTest, ExportIsByteIdenticalAcrossThreadCounts) {
  fleet::FleetOptions options = tracedFleet();
  options.slo.enabled = true;

  obs::ChromeTrace serialTrace;
  options.threads = 1;
  options.hooks.trace = &serialTrace;
  const fleet::FleetReport serial =
      runFleet(paperRegistry(), sharedProfile(), options);

  obs::ChromeTrace parallelTrace;
  options.threads = 4;
  options.hooks.trace = &parallelTrace;
  const fleet::FleetReport parallel =
      runFleet(paperRegistry(), sharedProfile(), options);

  ASSERT_GT(serial.tracesKept, 0u);
  EXPECT_EQ(serial.tracesKept, parallel.tracesKept);
  EXPECT_EQ(serialTrace.toJson(), parallelTrace.toJson());
  EXPECT_EQ(serial.metrics.toString(), parallel.metrics.toString());
  EXPECT_EQ(serial.toString(), parallel.toString());
}

TEST(FleetTraceTest, TracingIsAPureObserver) {
  fleet::FleetOptions options = smallFleet();
  options.degradedFraction = 0.25;
  options.degradedFaults = hostilePlan();
  options.hedge.enabled = true;
  const fleet::FleetReport off =
      runFleet(paperRegistry(), sharedProfile(), options);

  options.tracing.enabled = true;
  options.tracing.sampleRate = 1.0;
  const fleet::FleetReport on =
      runFleet(paperRegistry(), sharedProfile(), options);

  // The simulated bytes must be unperturbed: the recorder consumes no RNG
  // draws, so the report (which excludes trace counters) matches exactly.
  EXPECT_EQ(off.toString(), on.toString());
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.offered, on.offered);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.failed, on.failed);
  EXPECT_EQ(off.tracesKept, 0u) << "tracing off must keep nothing";
  EXPECT_GT(on.tracesKept, 0u);
}

TEST(FleetTraceTest, TailRetentionIsTotal) {
  const fleet::FleetOptions options = tracedFleet();
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  ASSERT_GT(report.shed, 0u) << "the tight limiter must shed";
  // Shed and failed requests are all tail-classified, so the eligible pool
  // is at least that large — and every eligible request is kept.
  EXPECT_GE(report.tailEligible, report.shed + report.failed);
  EXPECT_EQ(report.tracesKeptTail, report.tailEligible);
  EXPECT_DOUBLE_EQ(report.tailRetention(), 1.0);
  EXPECT_EQ(report.tracesKept, report.tracesKeptTail + report.tracesKeptSampled);
  EXPECT_LE(report.tracesKept, report.tracesRecorded);
}

TEST(FleetTraceTest, SampleRateZeroKeepsOnlyTailRequests) {
  fleet::FleetOptions options = tracedFleet();
  options.tracing.sampleRate = 0.0;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_EQ(report.tracesKeptSampled, 0u);
  EXPECT_EQ(report.tracesKept, report.tracesKeptTail);
  EXPECT_GT(report.tracesKept, 0u) << "tails are kept regardless of the rate";
}

TEST(FleetTraceTest, PerCellCapTrimsOnlySampledKeeps) {
  fleet::FleetOptions options = smallFleet();
  options.tracing.enabled = true;
  options.tracing.sampleRate = 1.0;
  options.tracing.maxSampledPerCell = 10;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_LE(report.tracesKeptSampled, 10u * options.cells);
  EXPECT_GT(report.tracesDroppedCap, 0u);
  EXPECT_DOUBLE_EQ(report.tailRetention(), 1.0);
}

TEST(FleetTraceTest, ExportedTracePassesInvariantRules) {
  fleet::FleetOptions options = tracedFleet();
  obs::ChromeTrace trace;
  options.hooks.trace = &trace;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  ASSERT_GT(report.tracesKept, 0u);

  const auto processes = verify::loadChromeTrace(trace.toJson());
  ASSERT_FALSE(processes.empty());
  analyze::DiagnosticSink sink;
  verify::checkTrace(processes, sink);
  EXPECT_TRUE(sink.empty()) << sink.toText();
}

TEST(FleetRateLimitTest, TokenBucketShedsDeterministicallyAndAccountsFully) {
  fleet::FleetOptions options = smallFleet();
  options.rateLimit.enabled = true;
  options.rateLimit.ratePerSecond = 4.5;
  options.rateLimit.burst = 10.0;

  options.threads = 1;
  const fleet::FleetReport serial =
      runFleet(paperRegistry(), sharedProfile(), options);
  options.threads = 4;
  const fleet::FleetReport parallel =
      runFleet(paperRegistry(), sharedProfile(), options);

  ASSERT_GT(serial.shedRateLimited, 0u)
      << "a per-user rate below the offered per-user-per-cell rate must shed";
  EXPECT_LE(serial.shedRateLimited, serial.shed);
  EXPECT_EQ(serial.offered, serial.admitted + serial.shed);
  EXPECT_EQ(serial.shedRateLimited, parallel.shedRateLimited);
  EXPECT_EQ(serial.toString(), parallel.toString());
}

TEST(FleetRateLimitTest, GenerousBucketNeverEngages) {
  fleet::FleetOptions options = smallFleet();
  options.rateLimit.enabled = true;
  options.rateLimit.ratePerSecond = 10'000.0;
  options.rateLimit.burst = 100.0;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_EQ(report.shedRateLimited, 0u);
}

TEST(FleetSloTest, HealthyFleetPassesTheGate) {
  fleet::FleetOptions options = smallFleet();
  options.slo.enabled = true;
  options.slo.objective = 0.99;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_TRUE(report.slo.pass) << "breach windows: " << report.slo.breachWindows;
  EXPECT_GT(report.slo.good, 0u);
  EXPECT_FALSE(report.series.empty());
  EXPECT_EQ(report.series.totalGood() + report.series.totalBad(),
            report.completed + report.failed + report.shed);
  EXPECT_EQ(report.metrics.counterOr("fleet.slo.pass"), 1u);
}

TEST(FleetSloTest, LimiterSurgeBreachesTheGate) {
  fleet::FleetOptions options = smallFleet();
  options.rateLimit.enabled = true;
  options.rateLimit.ratePerSecond = 4.5;
  options.rateLimit.burst = 10.0;
  options.slo.enabled = true;
  options.slo.objective = 0.999;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  ASSERT_GT(report.shedRateLimited, 0u);
  EXPECT_FALSE(report.slo.pass)
      << "sustained limiter sheds must burn the error budget";
  EXPECT_GT(report.slo.breachWindows, 0u);
  EXPECT_LT(report.slo.goodFraction, options.slo.objective);
  EXPECT_GT(report.slo.fastBurnMax, 0.0);
  EXPECT_EQ(report.metrics.counterOr("fleet.slo.pass"), 0u);
}

}  // namespace
}  // namespace prtr
