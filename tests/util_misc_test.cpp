// Tests for CRC-32, the deterministic RNG, statistics, tables, and plots.
#include <gtest/gtest.h>

#include <set>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace prtr::util {
namespace {

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string s = "123456789";
  const auto crc = Crc32::of(
      std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1000);
  Rng rng{42};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  Crc32 inc;
  inc.update(std::span{data.data(), 400});
  inc.update(std::span{data.data() + 400, 600});
  EXPECT_EQ(inc.value(), Crc32::of(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const auto before = Crc32::of(data);
  data[17] ^= 0x04;
  EXPECT_NE(before, Crc32::of(data));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a{7};
  Rng b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng{13};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, RangeInclusive) {
  Rng rng{17};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng{23};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng{31};
  RunningStats whole;
  RunningStats partA;
  RunningStats partB;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    whole.add(x);
    (i % 2 == 0 ? partA : partB).add(x);
  }
  partA.merge(partB);
  EXPECT_EQ(partA.count(), whole.count());
  EXPECT_NEAR(partA.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(partA.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(partA.min(), whole.min());
  EXPECT_DOUBLE_EQ(partA.max(), whole.max());
}

TEST(HistogramTest, BinningAndQuantiles) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.binCount(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h{0.0, 1.0, 4};
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(ExactQuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(exactQuantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(exactQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exactQuantile(v, 1.0), 5.0);
  EXPECT_THROW((void)exactQuantile({}, 0.5), DomainError);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_NEAR(relativeError(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relativeError(1.0, 1.0), 0.0);
}

TEST(TableTest, AlignmentAndCsv) {
  Table t{{"name", "value"}};
  t.row().cell("alpha").cell(3.14159, 3);
  t.row().cell("a,b").cell(std::uint64_t{42});
  const std::string text = t.toString();
  EXPECT_NE(text.find("| alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, RejectsOverfullRow) {
  Table t{{"only"}};
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), DomainError);
}

TEST(PlotTest, RendersSeriesAndLegend) {
  Series s{"line", {1.0, 2.0, 3.0}, {1.0, 4.0, 9.0}};
  PlotOptions opts;
  opts.width = 40;
  opts.height = 10;
  opts.title = "squares";
  const std::string out = renderAsciiPlot({s}, opts);
  EXPECT_NE(out.find("squares"), std::string::npos);
  EXPECT_NE(out.find("[*] line"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(PlotTest, LogAxesSkipNonPositive) {
  Series s{"log", {0.0, 1.0, 10.0, 100.0}, {1.0, 1.0, 2.0, 3.0}};
  PlotOptions opts;
  opts.logX = true;
  EXPECT_NO_THROW(renderAsciiPlot({s}, opts));
}

TEST(PlotTest, RejectsEmpty) {
  EXPECT_THROW(renderAsciiPlot({}, PlotOptions{}), DomainError);
}

TEST(HeatmapTest, RendersRampAndBounds) {
  std::vector<std::vector<double>> grid{{0.0, 0.5, 1.0}, {1.0, 0.5, 0.0}};
  HeatmapOptions opts;
  opts.title = "ramp";
  const std::string out = renderHeatmap(grid, opts);
  EXPECT_NE(out.find("ramp"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // max value glyph
  EXPECT_NE(out.find(' '), std::string::npos);  // min value glyph
  EXPECT_NE(out.find("[0, 1]"), std::string::npos);
}

TEST(HeatmapTest, LogScaleAndValidation) {
  std::vector<std::vector<double>> grid{{1.0, 10.0, 100.0}};
  HeatmapOptions opts;
  opts.logScale = true;
  const std::string out = renderHeatmap(grid, opts);
  EXPECT_NE(out.find("log10"), std::string::npos);
  EXPECT_THROW(renderHeatmap({}, opts), DomainError);
  EXPECT_THROW(renderHeatmap({{1.0, 2.0}, {1.0}}, opts), DomainError);
}

}  // namespace
}  // namespace prtr::util
