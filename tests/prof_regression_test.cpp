// Tests for the bench-regression layer: BenchDoc round-trips the JSON that
// obs::BenchReport emits, and compare() classifies scalar/table deltas under
// the exact-vs-wall-clock noise policy the prtr-report CLI enforces.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_io.hpp"
#include "prof/regression.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace prtr;

std::string tempPath(const std::string& name) {
  return testing::TempDir() + name;
}

/// Emits one bench document through the real BenchReport writer.
std::string writeBenchJson(const std::string& file, double speedup,
                           double wallMs, const std::string& tableCell) {
  const std::string path = tempPath(file);
  const char* argv[] = {"bench", "--json", path.c_str(), "--threads", "2"};
  obs::BenchReport report{"demo", 5, argv};
  report.scalar("peak_sim_speedup", speedup);
  report.scalar("time_total_ms", wallMs);
  report.note("basis", "measured");
  util::Table table{{"X_task", "S"}};
  table.row().cell("0.5").cell(tableCell);
  report.table("grid", table);
  EXPECT_EQ(report.finish(), 0);
  return path;
}

TEST(BenchDoc, RoundTripsTheBenchReportWriter) {
  const std::string path = writeBenchJson("roundtrip.json", 12.5, 100.0, "7.1");
  const prof::BenchDoc doc = prof::BenchDoc::parseFile(path);
  EXPECT_EQ(doc.bench, "demo");
  // "threads" always leads the scalar list; registration order follows.
  ASSERT_GE(doc.scalars.size(), 3u);
  EXPECT_EQ(doc.scalars[0].first, "threads");
  EXPECT_DOUBLE_EQ(doc.scalars[0].second, 2.0);
  ASSERT_NE(doc.findScalar("peak_sim_speedup"), nullptr);
  EXPECT_DOUBLE_EQ(*doc.findScalar("peak_sim_speedup"), 12.5);
  ASSERT_NE(doc.findTable("grid"), nullptr);
  EXPECT_EQ(doc.findTable("grid")->header,
            (std::vector<std::string>{"X_task", "S"}));
  EXPECT_EQ(doc.findTable("grid")->rows.at(0).at(1), "7.1");
  ASSERT_EQ(doc.notes.size(), 1u);
  EXPECT_EQ(doc.notes[0].second, "measured");
}

TEST(BenchDoc, ParseRejectsNonBenchDocuments) {
  EXPECT_THROW((void)prof::BenchDoc::parse(util::json::Value::parse(
                   "{\"scalars\":{}}")),
               util::DomainError);
  EXPECT_THROW((void)prof::BenchDoc::parseFile(tempPath("missing.json")),
               util::Error);
}

TEST(RegressionCompare, SelfComparisonPasses) {
  const std::string path = writeBenchJson("self.json", 12.5, 100.0, "7.1");
  const prof::BenchDoc doc = prof::BenchDoc::parseFile(path);
  const prof::CompareResult result = prof::compare(doc, doc);
  EXPECT_TRUE(result.pass);
  for (const prof::ScalarDelta& d : result.scalars) {
    EXPECT_TRUE(d.kind == prof::DeltaKind::kMatch ||
                d.kind == prof::DeltaKind::kInfo)
        << d.name;
  }
}

TEST(RegressionCompare, SimulatedScalarDriftIsARegression) {
  const prof::BenchDoc baseline = prof::BenchDoc::parseFile(
      writeBenchJson("base.json", 12.5, 100.0, "7.1"));
  const prof::BenchDoc current = prof::BenchDoc::parseFile(
      writeBenchJson("cur.json", 11.9, 100.0, "7.1"));
  const prof::CompareResult result = prof::compare(baseline, current);
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const prof::ScalarDelta& d : result.scalars) {
    if (d.name != "peak_sim_speedup") continue;
    found = true;
    EXPECT_EQ(d.kind, prof::DeltaKind::kRegression);
    EXPECT_LT(d.relDelta, 0.0);
  }
  EXPECT_TRUE(found);
}

TEST(RegressionCompare, WallClockDriftIsInformationalUnlessGated) {
  const prof::BenchDoc baseline = prof::BenchDoc::parseFile(
      writeBenchJson("wbase.json", 12.5, 100.0, "7.1"));
  const prof::BenchDoc current = prof::BenchDoc::parseFile(
      writeBenchJson("wcur.json", 12.5, 170.0, "7.1"));
  const prof::CompareResult loose = prof::compare(baseline, current);
  EXPECT_TRUE(loose.pass);

  prof::ComparePolicy gated;
  gated.gateWallClock = true;
  gated.wallBand = 0.25;
  const prof::CompareResult strict = prof::compare(baseline, current, gated);
  EXPECT_FALSE(strict.pass);  // +70% is outside the 25% band

  gated.wallBand = 2.0;
  EXPECT_TRUE(prof::compare(baseline, current, gated).pass);
}

TEST(RegressionCompare, MissingScalarFailsAndNewScalarIsInformational) {
  prof::BenchDoc baseline;
  baseline.bench = "demo";
  baseline.scalars = {{"a", 1.0}, {"b", 2.0}};
  prof::BenchDoc current;
  current.bench = "demo";
  current.scalars = {{"a", 1.0}, {"c", 3.0}};
  const prof::CompareResult result = prof::compare(baseline, current);
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.scalars.size(), 3u);
  EXPECT_EQ(result.scalars[0].kind, prof::DeltaKind::kMatch);
  EXPECT_EQ(result.scalars[1].kind, prof::DeltaKind::kMissing);
  EXPECT_EQ(result.scalars[2].name, "c");
  EXPECT_EQ(result.scalars[2].kind, prof::DeltaKind::kNew);
}

TEST(RegressionCompare, TableCellDriftReportsTheFirstDifference) {
  const prof::BenchDoc baseline = prof::BenchDoc::parseFile(
      writeBenchJson("tbase.json", 12.5, 100.0, "7.1"));
  const prof::BenchDoc current = prof::BenchDoc::parseFile(
      writeBenchJson("tcur.json", 12.5, 100.0, "7.4"));
  const prof::CompareResult result = prof::compare(baseline, current);
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.tables.size(), 1u);
  EXPECT_EQ(result.tables[0].kind, prof::DeltaKind::kRegression);
  EXPECT_NE(result.tables[0].detail.find("\"7.1\" vs \"7.4\""),
            std::string::npos)
      << result.tables[0].detail;
}

TEST(RegressionCompare, RenderersCarryTheVerdictAndDeltas) {
  const prof::BenchDoc baseline = prof::BenchDoc::parseFile(
      writeBenchJson("rbase.json", 12.5, 100.0, "7.1"));
  const prof::BenchDoc current = prof::BenchDoc::parseFile(
      writeBenchJson("rcur.json", 11.9, 100.0, "7.1"));
  const prof::CompareResult result = prof::compare(baseline, current);

  const std::string text = result.renderText();
  EXPECT_NE(text.find("bench demo: FAIL"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("peak_sim_speedup"), std::string::npos);

  const std::string markdown = result.renderMarkdown();
  EXPECT_NE(markdown.find("### demo — FAIL"), std::string::npos);
  EXPECT_NE(markdown.find("| `peak_sim_speedup` |"), std::string::npos);

  std::ostringstream os;
  util::json::Writer w{os};
  result.writeJson(w);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"pass\":false"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"REGRESSION\""), std::string::npos);
  // The verdict document itself parses back.
  EXPECT_NO_THROW((void)util::json::Value::parse(json));
}

}  // namespace
