// Tests for HW/SW codesign execution (the paper's deferred inclusion of
// software tasks).
#include <gtest/gtest.h>

#include "runtime/hwsw.hpp"
#include "tasks/hwfunction.hpp"
#include "util/error.hpp"

namespace prtr::runtime {
namespace {

struct HwSwHarness {
  sim::Simulator sim;
  xd1::Node node{sim};
  tasks::FunctionRegistry registry = tasks::makePaperFunctions();
  bitstream::Library library{
      node.floorplan(),
      registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};
  LruCache cache{2};

  HwSwReport run(Partitioning policy, const tasks::Workload& workload,
                 CpuModel cpu = {}) {
    HwSwOptions options;
    options.policy = policy;
    options.cpu = cpu;
    HwSwExecutor executor{node, registry, library, cache, options};
    return executor.run(workload);
  }
};

TEST(CpuModelTest, ComputeTimeScalesWithBytes) {
  CpuModel cpu;
  // 2.4 GHz at 35 cycles/byte: 1 MB takes ~14.6 ms.
  EXPECT_NEAR(cpu.computeTime(util::Bytes{1'000'000}).toMilliseconds(), 14.58,
              0.01);
}

TEST(HwSwTest, AlwaysHardwareMatchesPrtrBehaviour) {
  HwSwHarness h;
  const auto w =
      tasks::makeRoundRobinWorkload(h.registry, 12, util::Bytes{2'000'000});
  const HwSwReport r = h.run(Partitioning::kAlwaysHardware, w);
  EXPECT_EQ(r.hardwareCalls, 12u);
  EXPECT_EQ(r.softwareCalls, 0u);
  EXPECT_DOUBLE_EQ(r.hardwareFraction(), 1.0);
  EXPECT_GT(r.base.configurations, 0u);
}

TEST(HwSwTest, AlwaysSoftwareNeverConfiguresPartially) {
  HwSwHarness h;
  const auto w =
      tasks::makeRoundRobinWorkload(h.registry, 12, util::Bytes{2'000'000});
  const HwSwReport r = h.run(Partitioning::kAlwaysSoftware, w);
  EXPECT_EQ(r.hardwareCalls, 0u);
  EXPECT_EQ(r.softwareCalls, 12u);
  EXPECT_EQ(r.base.configurations, 0u);
  // Software time: 12 x 2 MB x 35 cyc/B / 2.4 GHz = 350 ms.
  EXPECT_NEAR(r.softwareTime.toMilliseconds(), 350.0, 1.0);
}

TEST(HwSwTest, AdaptiveSendsTinyTasksToSoftware) {
  // A 10 kB task computes in ~0.15 ms on the CPU but a partial
  // reconfiguration alone costs ~20 ms: adaptive must pick software when
  // the module is not resident.
  HwSwHarness h;
  tasks::Workload w{"tiny", {}};
  for (int i = 0; i < 9; ++i) {
    w.calls.push_back(
        tasks::TaskCall{static_cast<std::size_t>(i % 3), util::Bytes{10'000}});
  }
  const HwSwReport r = h.run(Partitioning::kAdaptive, w);
  EXPECT_EQ(r.softwareCalls, 9u);
  EXPECT_EQ(r.hardwareCalls, 0u);
}

TEST(HwSwTest, AdaptiveSendsBigTasksToHardware) {
  // 50 MB tasks: fabric computes 42x faster; even with a 20 ms partial
  // configuration hardware wins decisively.
  HwSwHarness h;
  const auto w =
      tasks::makeRoundRobinWorkload(h.registry, 6, util::Bytes{50'000'000});
  const HwSwReport r = h.run(Partitioning::kAdaptive, w);
  EXPECT_EQ(r.hardwareCalls, 6u);
  EXPECT_EQ(r.softwareCalls, 0u);
}

TEST(HwSwTest, AdaptiveExploitsResidency) {
  // Mid-sized tasks where HW wins only when already resident: with a
  // single repeated function, call 1 may go to software (config too dear)
  // but once anything is resident the stream should stabilize.
  HwSwHarness h;
  tasks::Workload w{"repeat", {}};
  for (int i = 0; i < 20; ++i) {
    w.calls.push_back(tasks::TaskCall{0, util::Bytes{1'500'000}});
  }
  const HwSwReport r = h.run(Partitioning::kAdaptive, w);
  // HW task time ~ 9.6 ms + control vs SW ~ 21.9 ms; config ~ 20 ms.
  // First call: HW incl config (29.6ms) > SW (21.9ms) -> software; but the
  // module never becomes resident that way, so all calls go software.
  EXPECT_EQ(r.hardwareCalls + r.softwareCalls, 20u);
  EXPECT_TRUE(r.softwareCalls == 20u);
}

TEST(HwSwTest, StaticThresholdAmortizationBlindness) {
  // Static-threshold charges every call a configuration, so it keeps
  // mid-sized repeated tasks in software even though adaptive-with-
  // residency would not be worse. Documented policy difference.
  HwSwHarness h;
  tasks::Workload w{"repeat", {}};
  for (int i = 0; i < 10; ++i) {
    w.calls.push_back(tasks::TaskCall{0, util::Bytes{1'500'000}});
  }
  const HwSwReport r = h.run(Partitioning::kStaticThreshold, w);
  EXPECT_EQ(r.hardwareCalls, 0u);
}

TEST(HwSwTest, AdaptiveBeatsBothPureStrategiesOnMixedWork) {
  // Mixed sizes: tiny tasks favour SW, huge tasks favour HW. Adaptive must
  // be at least as fast as either pure policy.
  auto mixed = [] {
    tasks::Workload w{"mixed", {}};
    for (int i = 0; i < 30; ++i) {
      w.calls.push_back(tasks::TaskCall{
          static_cast<std::size_t>(i % 3),
          (i % 2 == 0) ? util::Bytes{5'000} : util::Bytes{60'000'000}});
    }
    return w;
  }();

  HwSwHarness hwH;
  const double hwTotal =
      hwH.run(Partitioning::kAlwaysHardware, mixed).base.total.toSeconds();
  HwSwHarness swH;
  const double swTotal =
      swH.run(Partitioning::kAlwaysSoftware, mixed).base.total.toSeconds();
  HwSwHarness adH;
  const HwSwReport adaptive = adH.run(Partitioning::kAdaptive, mixed);

  EXPECT_LE(adaptive.base.total.toSeconds(), hwTotal * 1.001);
  EXPECT_LE(adaptive.base.total.toSeconds(), swTotal * 1.001);
  EXPECT_GT(adaptive.softwareCalls, 0u);
  EXPECT_GT(adaptive.hardwareCalls, 0u);
}

TEST(HwSwTest, PolicyNames) {
  EXPECT_STREQ(toString(Partitioning::kAdaptive), "adaptive");
  EXPECT_STREQ(toString(Partitioning::kAlwaysSoftware), "always-sw");
}

}  // namespace
}  // namespace prtr::runtime
