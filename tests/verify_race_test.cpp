// Tests for the verify::RaceDetector vector-clock happens-before checker:
// exactness on synthetic event streams (every RC code, no false positives
// for ordered pairs) and integration through the exec instrumentation seam
// (pool submit/steal/barrier edges, artifact-cache mutex modeling).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "fabric/floorplan.hpp"
#include "verify/race.hpp"

namespace prtr {
namespace {

using verify::Race;
using verify::RaceDetector;

std::vector<std::string> codesOf(const RaceDetector& detector) {
  std::vector<std::string> codes;
  for (const Race& race : detector.races()) codes.push_back(race.code);
  return codes;
}

/// Runs `fn` on a fresh OS thread and joins (a second dense thread index).
void onOtherThread(const std::function<void()>& fn) {
  std::thread thread{fn};
  thread.join();
}

TEST(RaceDetector, SingleThreadIsNeverRacy) {
  RaceDetector detector;
  detector.access(1, "site", true);
  detector.access(1, "site", false);
  detector.access(1, "site", true);
  EXPECT_TRUE(detector.races().empty());
  EXPECT_EQ(detector.stats().threads, 1u);
  EXPECT_EQ(detector.stats().writes, 2u);
  EXPECT_EQ(detector.stats().reads, 1u);
}

TEST(RaceDetector, ReleaseAcquireOrdersCrossThreadAccesses) {
  RaceDetector detector;
  detector.access(7, "site", true);
  detector.release(42);
  onOtherThread([&] {
    detector.acquire(42);
    detector.access(7, "site", true);   // ordered: no RC001
    detector.access(7, "site", false);  // own write: no RC003
  });
  EXPECT_TRUE(detector.races().empty()) << codesOf(detector).front();
  EXPECT_EQ(detector.stats().threads, 2u);
  EXPECT_EQ(detector.stats().releases, 1u);
  EXPECT_EQ(detector.stats().acquires, 1u);
}

TEST(RaceDetector, UnorderedWriteWriteIsRc001) {
  RaceDetector detector;
  detector.access(1, "first", true);
  onOtherThread([&] { detector.access(1, "second", true); });
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races().front().code, "RC001");
  EXPECT_EQ(detector.races().front().objectId, 1u);
}

TEST(RaceDetector, WriteAfterUnorderedReadIsRc002) {
  RaceDetector detector;
  detector.access(2, "reader", false);
  onOtherThread([&] { detector.access(2, "writer", true); });
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races().front().code, "RC002");
}

TEST(RaceDetector, ReadAfterUnorderedWriteIsRc003) {
  RaceDetector detector;
  detector.access(3, "writer", true);
  onOtherThread([&] { detector.access(3, "reader", false); });
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races().front().code, "RC003");
}

TEST(RaceDetector, AcquireOfUnreleasedSyncIsRc004) {
  RaceDetector detector;
  detector.acquire(99);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races().front().code, "RC004");
  EXPECT_EQ(detector.races().front().objectId, 99u);
}

TEST(RaceDetector, RacesAreDeduplicatedPerObjectAndCode) {
  RaceDetector detector;
  detector.access(5, "a", true);
  onOtherThread([&] {
    detector.access(5, "b", true);
    detector.access(5, "c", true);  // same (object, RC001) pair
  });
  EXPECT_EQ(detector.races().size(), 1u);
  // A different object with the same defect is a separate race.
  detector.access(6, "a", true);
  onOtherThread([&] { detector.access(6, "b", true); });
  EXPECT_EQ(detector.races().size(), 2u);
}

TEST(RaceDetector, ReportEmitsRcDiagnostics) {
  RaceDetector detector;
  detector.access(1, "site", true);
  onOtherThread([&] { detector.access(1, "site", true); });
  analyze::DiagnosticSink sink;
  detector.report(sink);
  ASSERT_EQ(sink.codes().size(), 1u);
  EXPECT_EQ(sink.codes().front(), "RC001");
  EXPECT_TRUE(sink.hasErrors());
}

TEST(RaceDetector, ResetDropsEverything) {
  RaceDetector detector;
  detector.access(1, "site", true);
  onOtherThread([&] { detector.access(1, "site", true); });
  ASSERT_FALSE(detector.races().empty());
  detector.reset();
  EXPECT_TRUE(detector.races().empty());
  EXPECT_EQ(detector.stats().threads, 0u);
  EXPECT_EQ(detector.stats().writes, 0u);
}

// ---------------------------------------------------------------------------
// Integration through the exec seam
// ---------------------------------------------------------------------------

TEST(RaceDetectorIntegration, PoolParallelForIsRaceFree) {
  // The detector outlives the pool: a worker can still report a task's
  // completion edge briefly after the barrier releases the caller.
  RaceDetector detector;
  exec::Pool pool{3};
  pool.setRaceChecker(&detector);
  std::vector<int> out(64, 0);
  pool.parallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  pool.setRaceChecker(nullptr);
  EXPECT_TRUE(detector.races().empty())
      << "first: " << codesOf(detector).front();
  // The barrier edges were actually exercised.
  EXPECT_GT(detector.stats().releases, 0u);
  EXPECT_GT(detector.stats().acquires, 0u);
}

TEST(RaceDetectorIntegration, PoolSubmitEdgesAreObserved) {
  RaceDetector detector;
  exec::Pool pool{2};
  pool.setRaceChecker(&detector);
  std::vector<std::future<int>> futures;
  futures.reserve(16u);
  for (std::size_t i = 0; i < 16u; ++i) {
    const int n = static_cast<int>(i);
    futures.push_back(pool.submit([n] { return n * n; }));
  }
  for (std::size_t i = 0; i < 16u; ++i) {
    const int n = static_cast<int>(i);
    EXPECT_EQ(futures[i].get(), n * n);
  }
  pool.setRaceChecker(nullptr);
  EXPECT_TRUE(detector.races().empty());
  // One synchronous release per submission (completion releases may still
  // be landing when the future resolves); one acquire per executed task.
  EXPECT_GE(detector.stats().releases, 16u);
  EXPECT_GE(detector.stats().acquires, 16u);
}

TEST(RaceDetectorIntegration, ArtifactCacheMutexEdgesOrderEntryAccesses) {
  RaceDetector detector;
  exec::ArtifactCache cache;
  exec::Pool pool{4};
  cache.setRaceChecker(&detector);
  pool.setRaceChecker(&detector);
  // Many threads hammer the same key: the insert (write) and every hit
  // (read) are ordered by the modeled cache mutex, so no RC finding.
  pool.parallelFor(32, [&](std::size_t) {
    const auto plan = cache.floorplan(
        1234, [] { return fabric::makeDualPrrLayout(); });
    ASSERT_NE(plan, nullptr);
  });
  pool.setRaceChecker(nullptr);
  cache.setRaceChecker(nullptr);
  EXPECT_TRUE(detector.races().empty())
      << "first: " << codesOf(detector).front();
  EXPECT_GE(detector.stats().writes, 1u);   // the insert
  EXPECT_GT(detector.stats().reads, 0u);    // the hits
}

TEST(RaceDetectorIntegration, FreeFunctionArmsTheGlobalSeam) {
  // Static: the global pool's workers outlive this test body, and a task's
  // completion edge may land just after the parallelFor barrier.
  static RaceDetector detector;
  detector.reset();
  exec::setRaceChecker(&detector);
  std::vector<int> out(32, 0);
  exec::parallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) + 1;
  });
  exec::setRaceChecker(nullptr);
  EXPECT_TRUE(detector.races().empty());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace prtr
