// Tests for break-even, mixed-workload, and sensitivity analyses.
#include <gtest/gtest.h>

#include "model/insights.hpp"
#include "model/model.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/error.hpp"

namespace prtr::model {
namespace {

Params baseParams() {
  Params p;
  p.nCalls = 100;
  p.xTask = 0.5;
  p.xPrtr = 0.1;
  p.hitRatio = 0.0;
  return p;
}

TEST(BreakEvenTest, HandComputed) {
  Params p = baseParams();
  // FRTR per call 1.5; PRTR per call max(0.5, 0.1) = 0.5; gain 1.0/call;
  // leading cost 1.0 -> break-even at 2 calls.
  const auto n = breakEvenCalls(p);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 2u);

  // Verify against the totals directly.
  p.nCalls = *n;
  EXPECT_LT(prtrTotalNormalized(p), frtrTotalNormalized(p));
  p.nCalls = *n - 1;
  EXPECT_GE(prtrTotalNormalized(p), frtrTotalNormalized(p));
}

TEST(BreakEvenTest, NeverWhenOverheadsSwamp) {
  Params p = baseParams();
  p.xDecision = 5.0;  // decision slower than a full configuration
  p.xTask = 10.0;
  // per-call PRTR = max(15, 0.1) = 15 > per-call FRTR = 11.
  EXPECT_EQ(breakEvenCalls(p), std::nullopt);
}

TEST(BreakEvenTest, TinyTasksAmortizeSlowly) {
  Params p = baseParams();
  p.xTask = 0.001;
  p.xPrtr = 0.012;
  // gain/call ~ 1.001 - 0.012 = 0.989 -> break-even at 2.
  const auto fast = breakEvenCalls(p);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, 2u);
  // With a big decision overhead the leading term grows.
  p.xDecision = 0.5;
  const auto slow = breakEvenCalls(p);
  ASSERT_TRUE(slow.has_value());
  EXPECT_GT(*slow, *fast);
}

TEST(MixedTest, SingleClassReducesToCoreModel) {
  MixedParams mixed;
  mixed.nCalls = 100;
  mixed.xPrtr = 0.1;
  mixed.classes = {TaskClass{1.0, 0.5, 0.0}};
  const Params p = baseParams();
  EXPECT_DOUBLE_EQ(mixedFrtrTotalNormalized(mixed), frtrTotalNormalized(p));
  EXPECT_DOUBLE_EQ(mixedPrtrTotalNormalized(mixed), prtrTotalNormalized(p));
  EXPECT_DOUBLE_EQ(mixedSpeedup(mixed), speedup(p));
  EXPECT_DOUBLE_EQ(mixedAsymptoticSpeedup(mixed), asymptoticSpeedup(p));
}

TEST(MixedTest, WeightsNormalizeAndMatter) {
  MixedParams mixed;
  mixed.nCalls = 1000;
  mixed.xPrtr = 0.1;
  mixed.classes = {TaskClass{3.0, 0.05, 0.0}, TaskClass{1.0, 2.0, 0.0}};
  // Scaling all weights together changes nothing.
  MixedParams scaled = mixed;
  scaled.classes[0].weight = 30.0;
  scaled.classes[1].weight = 10.0;
  EXPECT_DOUBLE_EQ(mixedSpeedup(mixed), mixedSpeedup(scaled));
  // The heavy-small-task mix beats a pure large-task workload.
  MixedParams pureLarge = mixed;
  pureLarge.classes = {TaskClass{1.0, 2.0, 0.0}};
  EXPECT_GT(mixedAsymptoticSpeedup(mixed), mixedAsymptoticSpeedup(pureLarge));
}

TEST(MixedTest, MixIsNotTheModelOfTheMeanTask) {
  // Folding a bimodal mix into its average task size (as the paper's
  // single-average model must) misestimates the speedup; the class-
  // weighted form is the exact one. This quantifies the modelling gap.
  MixedParams mixed;
  mixed.nCalls = 1000;
  mixed.xPrtr = 0.1;
  mixed.classes = {TaskClass{0.5, 0.01, 0.0}, TaskClass{0.5, 1.99, 0.0}};
  Params averaged = baseParams();
  averaged.nCalls = 1000;
  averaged.xTask = 1.0;  // mean of 0.01 and 1.99
  averaged.xPrtr = 0.1;
  EXPECT_NE(mixedAsymptoticSpeedup(mixed), asymptoticSpeedup(averaged));
}

TEST(MixedTest, ValidatesInput) {
  MixedParams bad;
  bad.classes = {};
  EXPECT_THROW(bad.validate(), util::DomainError);
  bad.classes = {TaskClass{0.0, 1.0, 0.0}};
  EXPECT_THROW(bad.validate(), util::DomainError);
  bad.classes = {TaskClass{1.0, 1.0, 2.0}};
  EXPECT_THROW(bad.validate(), util::DomainError);
}

TEST(MixedTest, MatchesSimulatorOnBimodalWorkload) {
  // End-to-end: a 50/50 bimodal workload on the simulated XD1; the class-
  // weighted model predicts the measured speedup.
  const auto registry = tasks::makePaperFunctions();
  tasks::Workload workload{"bimodal", {}};
  const util::Bytes small{2'000'000};
  const util::Bytes large{120'000'000};
  for (int i = 0; i < 60; ++i) {
    workload.calls.push_back(tasks::TaskCall{
        static_cast<std::size_t>(i % 3), (i % 2 == 0) ? small : large});
  }
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  const auto result = runtime::runScenario(registry, workload, so);

  // Build the mixed model from the same platform calibration.
  sim::Simulator sim;
  const xd1::Node node{sim};
  const ConfigTimes times = configTimes(node);
  const double tFrtr = times.fullMeasured.toSeconds();
  MixedParams mixed;
  mixed.nCalls = workload.callCount();
  mixed.xPrtr = times.partialMeasured.toSeconds() / tFrtr;
  mixed.xControl = 10e-6 / tFrtr;
  mixed.classes = {
      TaskClass{0.5, taskTime(node, registry.at(0), small).toSeconds() / tFrtr,
                0.0},
      TaskClass{0.5, taskTime(node, registry.at(0), large).toSeconds() / tFrtr,
                0.0}};
  const double predicted = mixedSpeedup(mixed);
  EXPECT_NEAR(result.speedup, predicted, predicted * 0.06);
}

TEST(SensitivityTest, ZeroSigmaIsDeterministic) {
  const Params p = baseParams();
  const SensitivityResult r = sensitivity(p, Perturbation{}, 100, 5);
  EXPECT_NEAR(r.speedup.stddev(), 0.0, 1e-12);
  EXPECT_NEAR(r.p50, asymptoticSpeedup(p), 1e-12);
}

TEST(SensitivityTest, SpreadGrowsWithSigma) {
  const Params p = baseParams();
  Perturbation narrow;
  narrow.xTask = 0.05;
  Perturbation wide;
  wide.xTask = 0.3;
  const auto rNarrow = sensitivity(p, narrow, 4000, 7);
  const auto rWide = sensitivity(p, wide, 4000, 7);
  EXPECT_LT(rNarrow.speedup.stddev(), rWide.speedup.stddev());
  EXPECT_LE(rWide.p05, rWide.p50);
  EXPECT_LE(rWide.p50, rWide.p95);
}

TEST(SensitivityTest, DeterministicForSeed) {
  const Params p = baseParams();
  Perturbation sigma;
  sigma.xTask = 0.1;
  sigma.hitRatio = 0.05;
  const auto a = sensitivity(p, sigma, 500, 42);
  const auto b = sensitivity(p, sigma, 500, 42);
  EXPECT_DOUBLE_EQ(a.speedup.mean(), b.speedup.mean());
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
}

TEST(SensitivityTest, MedianTracksBaseValueAwayFromThePeak) {
  // On a smooth monotone stretch of the curve the median follows the base
  // value. (At the X_task = X_PRTR peak it cannot: every perturbation
  // moves downhill, so the whole distribution sits below the base --
  // exactly why error bars matter near the optimum.)
  Params p = baseParams();  // xTask = 0.5, well right of the 0.1 peak
  Perturbation sigma;
  sigma.xTask = 0.1;
  sigma.xPrtr = 0.1;
  const auto r = sensitivity(p, sigma, 8000, 11);
  EXPECT_NEAR(r.p50, asymptoticSpeedup(p), asymptoticSpeedup(p) * 0.05);

  // And at the peak the median falls below the base value.
  Params atPeak = baseParams();
  atPeak.xTask = 0.1;
  const auto rPeak = sensitivity(atPeak, sigma, 8000, 11);
  EXPECT_LT(rPeak.p50, asymptoticSpeedup(atPeak));
}

}  // namespace
}  // namespace prtr::model
