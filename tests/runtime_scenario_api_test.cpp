// Tests for the redesigned scenario API surface: the typed CachePolicy /
// PrefetcherKind enums and their string boundaries, ScenarioSides, the
// assumedHitRatio option, and the deprecated shims' equivalence with the
// options-driven entry points they forward to.
#include <gtest/gtest.h>

#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

namespace {

using namespace prtr;

TEST(ScenarioApi, CachePolicyNamesRoundTrip) {
  for (const runtime::CachePolicy policy : runtime::allCachePolicies()) {
    const char* name = runtime::toString(policy);
    const auto parsed = runtime::cachePolicyFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(runtime::cachePolicyFromString("clock").has_value());
  EXPECT_FALSE(runtime::cachePolicyFromString("").has_value());
  EXPECT_FALSE(runtime::cachePolicyFromString("LRU").has_value())
      << "names are canonical lower-case; case-mapping is the caller's job";
}

TEST(ScenarioApi, PrefetcherKindNamesRoundTrip) {
  for (const runtime::PrefetcherKind kind : runtime::allPrefetcherKinds()) {
    const char* name = runtime::toString(kind);
    const auto parsed = runtime::prefetcherKindFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(runtime::prefetcherKindFromString("psychic").has_value());
}

TEST(ScenarioApi, ScenarioSidesNames) {
  EXPECT_STREQ(runtime::toString(runtime::ScenarioSides::kBoth), "both");
  EXPECT_STREQ(runtime::toString(runtime::ScenarioSides::kPrtrOnly),
               "prtr-only");
}

runtime::ScenarioOptions baseOptions() {
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  return so;
}

TEST(ScenarioApi, PrtrOnlySkipsTheFrtrSide) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions so = baseOptions();
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto result = runtime::runScenario(registry, workload, so);
  EXPECT_EQ(result.frtr.calls, 0u);
  EXPECT_EQ(result.frtr.total, util::Time::zero());
  EXPECT_EQ(result.speedup, 0.0);
  EXPECT_EQ(result.prtr.calls, 4u);
  EXPECT_GT(result.prtr.total, util::Time::zero());
}

TEST(ScenarioApi, PrtrSideIsIdenticalAcrossSidesSettings) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions both = baseOptions();
  runtime::ScenarioOptions only = baseOptions();
  only.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto withFrtr = runtime::runScenario(registry, workload, both);
  const auto without = runtime::runScenario(registry, workload, only);
  EXPECT_EQ(withFrtr.prtr.total, without.prtr.total);
  EXPECT_EQ(withFrtr.prtr.configurations, without.prtr.configurations);
  EXPECT_EQ(withFrtr.prtr.configStall, without.prtr.configStall);
}

TEST(ScenarioApi, DeprecatedRunPrtrOnlyMatchesTheOptionsForm) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions so = baseOptions();
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  const auto viaOptions = runtime::runScenario(registry, workload, so).prtr;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto viaShim = runtime::runPrtrOnly(registry, workload, baseOptions());
#pragma GCC diagnostic pop
  EXPECT_EQ(viaShim.total, viaOptions.total);
  EXPECT_EQ(viaShim.calls, viaOptions.calls);
  EXPECT_EQ(viaShim.configurations, viaOptions.configurations);
}

TEST(ScenarioApi, AssumedHitRatioFeedsModelDerivation) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions so = baseOptions();
  so.assumedHitRatio = 0.5;
  const auto atHalf = runtime::deriveModelParams(registry, workload, so);
  so.assumedHitRatio.reset();
  const auto atZero = runtime::deriveModelParams(registry, workload, so);
  EXPECT_DOUBLE_EQ(atHalf.hitRatio, 0.5);
  EXPECT_DOUBLE_EQ(atZero.hitRatio, 0.0);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto viaShim = runtime::deriveModelParams(registry, workload, so, 0.5);
#pragma GCC diagnostic pop
  EXPECT_DOUBLE_EQ(viaShim.hitRatio, atHalf.hitRatio);
  EXPECT_DOUBLE_EQ(viaShim.xTask, atHalf.xTask);
  EXPECT_DOUBLE_EQ(viaShim.xPrtr, atHalf.xPrtr);
}

}  // namespace
