// Cross-module validation: three independent implementations of the same
// quantities must agree exactly or within documented bounds —
//   (a) the PRTR executor's measured hit ratio vs the Mattson stack-
//       distance prediction (analytic, one pass over the trace),
//   (b) equation (6) fed with that H vs the simulated speedup,
//   (c) the finite-n speedup's convergence to the eq.-7 asymptote.
#include <gtest/gtest.h>

#include "model/model.hpp"
#include "runtime/scenario.hpp"
#include "tasks/locality.hpp"
#include "tasks/workload.hpp"

namespace prtr {
namespace {

class HitRatioAgreement : public ::testing::TestWithParam<double> {};

TEST_P(HitRatioAgreement, ExecutorMatchesMattsonExactly) {
  // On-demand configuration (no look-ahead) with an LRU cache is exactly
  // the reference model Mattson analyzes, so the executor's measured hit
  // ratio must equal the analytic prediction bit for bit.
  const double bias = GetParam();
  const auto registry = tasks::makeExtendedFunctions();
  util::Rng rng{2025};
  const auto workload =
      tasks::makeMarkovWorkload(registry, 300, util::Bytes{1'000'000}, bias, rng);

  runtime::ScenarioOptions so;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  so.forceMiss = false;
  so.prepare = runtime::PrepareSource::kNone;
  so.cachePolicy = runtime::CachePolicy::kLru;
  const auto report = runtime::runScenario(registry, workload, so).prtr;
  EXPECT_DOUBLE_EQ(report.hitRatio(), tasks::lruHitRatio(workload, 2))
      << "bias=" << bias;
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, HitRatioAgreement,
                         ::testing::Values(0.0, 0.4, 0.8));

TEST(HitRatioAgreement, QuadLayoutUsesFourSlotCurve) {
  const auto registry = tasks::makeExtendedFunctions();
  util::Rng rng{31};
  const auto workload = tasks::makePhasedWorkload(
      registry, 300, util::Bytes{500'000}, 25, 4, rng);
  runtime::ScenarioOptions so;
  so.layout = xd1::Layout::kQuadPrr;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  so.forceMiss = false;
  so.prepare = runtime::PrepareSource::kNone;
  so.cachePolicy = runtime::CachePolicy::kLru;
  const auto report = runtime::runScenario(registry, workload, so).prtr;
  EXPECT_DOUBLE_EQ(report.hitRatio(), tasks::lruHitRatio(workload, 4));
}

TEST(ModelAgreement, MattsonHFeedsEquationSixPredictively) {
  // Fully analytic prediction (no simulation in the loop): Mattson H +
  // platform calibration + eq. (6) vs the measured speedup.
  const auto registry = tasks::makeExtendedFunctions();
  util::Rng rng{77};
  const auto workload = tasks::makeMarkovWorkload(
      registry, 200, util::Bytes{25'000'000}, 0.7, rng);

  runtime::ScenarioOptions so;
  so.forceMiss = false;
  so.prepare = runtime::PrepareSource::kNone;
  so.cachePolicy = runtime::CachePolicy::kLru;

  const double predictedH = tasks::lruHitRatio(workload, 2);
  so.assumedHitRatio = predictedH;
  const model::Params params =
      runtime::deriveModelParams(registry, workload, so);
  const double predictedSpeedup = model::speedup(params);

  const auto result = runtime::runScenario(registry, workload, so);
  // Without look-ahead the executor serializes miss configurations after
  // the previous task, so it runs a little slower than the overlapping
  // model; the prediction still lands within ~15%.
  EXPECT_LE(result.speedup, predictedSpeedup * 1.01);
  EXPECT_NEAR(result.speedup, predictedSpeedup, predictedSpeedup * 0.15);
}

TEST(ConvergenceTest, FiniteNApproachesAsymptoteAtRateOneOverN) {
  // |S(n) - S_inf| <= S_inf * (1 + X_d) / (n * perCall): the leading full
  // configuration is the only finite-n term. Verify across the grid.
  for (const double xTask : {0.01, 0.1, 1.0, 10.0}) {
    for (const double h : {0.0, 0.5}) {
      model::Params p;
      p.xTask = xTask;
      p.xPrtr = 0.012;
      p.hitRatio = h;
      const double sInf = model::asymptoticSpeedup(p);
      const double perCall = model::prtrPerCallNormalized(p);
      for (const std::uint64_t n : {10ull, 100ull, 10'000ull}) {
        p.nCalls = n;
        const double bound =
            sInf * (1.0 + p.xDecision) / (static_cast<double>(n) * perCall);
        EXPECT_LE(sInf - model::speedup(p), bound * 1.0000001)
            << "xTask=" << xTask << " h=" << h << " n=" << n;
        EXPECT_GE(sInf, model::speedup(p));  // approach from below
      }
    }
  }
}

}  // namespace
}  // namespace prtr
