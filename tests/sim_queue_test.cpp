// Kernel-rewrite regression tests: runUntil edge cases, the calendar
// queue's bucket rollover against the binary heap's golden pop order, the
// interned symbol table, the O(1) timeline accumulators, and the coroutine
// frame arena's free-list recycling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/symbols.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace prtr::sim {
namespace {

using util::Time;

Process ticker(Simulator& sim, std::vector<std::int64_t>& out, Time period,
               int count) {
  for (int i = 0; i < count; ++i) {
    co_await sim.delay(period);
    out.push_back(sim.now().ps());
  }
}

TEST(RunUntil, ExecutesTheEventExactlyAtTheDeadline) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  sim.spawn(ticker(sim, ticks, Time::microseconds(10), 3));
  // Deadline lands exactly on the second tick: <= semantics must run it.
  sim.runUntil(Time::microseconds(20));
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{
                       Time::microseconds(10).ps(),
                       Time::microseconds(20).ps()}));
  EXPECT_EQ(sim.now(), Time::microseconds(20));
}

TEST(RunUntil, EmptyQueueStillAdvancesNowToTheDeadline) {
  Simulator sim;
  EXPECT_EQ(sim.runUntil(Time::milliseconds(7)), Time::milliseconds(7));
  EXPECT_EQ(sim.now(), Time::milliseconds(7));
  EXPECT_EQ(sim.eventsProcessed(), 0u);
  // A second call with an earlier deadline must not move time backwards.
  EXPECT_EQ(sim.runUntil(Time::milliseconds(3)), Time::milliseconds(7));
}

TEST(RunUntil, RepeatedCallsResumeWhereTheLastOneStopped) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  sim.spawn(ticker(sim, ticks, Time::microseconds(10), 5));
  sim.runUntil(Time::microseconds(25));
  EXPECT_EQ(ticks.size(), 2u);
  EXPECT_EQ(sim.now(), Time::microseconds(25));
  // Re-entering must not replay the first two ticks and must pick up the
  // pending third event untouched.
  sim.runUntil(Time::microseconds(25));
  EXPECT_EQ(ticks.size(), 2u);
  sim.runUntil(Time::microseconds(50));
  EXPECT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks.back(), Time::microseconds(50).ps());
}

TEST(RunUntil, SpawningBetweenCallsKeepsTheScheduleOrder) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  sim.spawn(ticker(sim, ticks, Time::microseconds(4), 2));
  sim.runUntil(Time::microseconds(4));
  // The new root starts at now() = 4 us, interleaving with the first.
  sim.spawn(ticker(sim, ticks, Time::microseconds(1), 3));
  sim.run();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{
                       Time::microseconds(4).ps(), Time::microseconds(5).ps(),
                       Time::microseconds(6).ps(), Time::microseconds(7).ps(),
                       Time::microseconds(8).ps()}));
}

/// Pops every event from `queue` and returns the (time, seq) sequence.
std::vector<std::pair<std::int64_t, std::uint64_t>> drain(EventQueue& queue) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> order;
  while (!queue.empty()) {
    EXPECT_EQ(queue.peekTimePs(), queue.peekTimePs());
    const Event event = queue.pop();
    order.emplace_back(event.timePs, event.seq);
  }
  return order;
}

TEST(CalendarQueue, MatchesTheHeapGoldenOrderAcrossBucketRollover) {
  // Random schedule spanning many calendar windows (the near window is
  // ~2.1 ms; times go to 100 ms) with bursts of same-time ties. Both
  // queues implement one total order, so the pop sequences must be equal
  // element for element.
  util::Rng rng{20260807};
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  std::uint64_t seq = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t timePs =
        static_cast<std::int64_t>(rng() % 100'000'000'000ull);
    const Event event{timePs, seq++, {}};
    calendar.push(event);
    heap.push(event);
    if (i % 7 == 0) {  // a burst of ties at the same instant
      const Event tie{timePs, seq++, {}};
      calendar.push(tie);
      heap.push(tie);
    }
  }
  ASSERT_EQ(calendar.size(), heap.size());
  EXPECT_EQ(drain(calendar), drain(heap));
}

TEST(CalendarQueue, InterleavedPushPopStaysIdenticalToTheHeap) {
  // Pops interleave with pushes so the cursor crosses bucket boundaries,
  // drains the ring, and reseeds from the overflow ladder mid-run — the
  // rollover paths a single drain does not exercise. Pushes are >= the
  // last popped time, as the simulator guarantees.
  util::Rng rng{42};
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  std::uint64_t seq = 0;
  std::int64_t nowPs = 0;
  auto pushBoth = [&](std::int64_t timePs) {
    const Event event{timePs, seq++, {}};
    calendar.push(event);
    heap.push(event);
  };
  for (int i = 0; i < 200; ++i) pushBoth(static_cast<std::int64_t>(rng() % 1000));
  std::vector<std::pair<std::int64_t, std::uint64_t>> calendarOrder;
  std::vector<std::pair<std::int64_t, std::uint64_t>> heapOrder;
  while (!calendar.empty()) {
    ASSERT_EQ(calendar.peekTimePs(), heap.peekTimePs());
    const Event a = calendar.pop();
    const Event b = heap.pop();
    calendarOrder.emplace_back(a.timePs, a.seq);
    heapOrder.emplace_back(b.timePs, b.seq);
    nowPs = a.timePs;
    // Keep the set churning: mostly near-future pushes (same bucket or a
    // few buckets ahead), occasionally far past the window to land on the
    // ladder. Stop refilling near the end so the test terminates.
    if (seq < 3000) {
      const std::uint64_t kind = rng() % 8;
      const std::int64_t delta =
          kind == 0   ? 0                                      // tie with now
          : kind == 7 ? static_cast<std::int64_t>(             // ladder hop
                            3'000'000'000ull + rng() % 50'000'000'000ull)
                      : static_cast<std::int64_t>(rng() % 30'000'000ull);
      pushBoth(nowPs + delta);
    }
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(calendarOrder, heapOrder);
}

TEST(SymbolTable, InternsDenselyInFirstSightOrder) {
  SymbolTable symbols;
  const LaneId a = symbols.lane("PRR0");
  const LaneId b = symbols.lane("config");
  const LabelId l = symbols.label("compute");
  EXPECT_EQ(a.index(), 0u);
  EXPECT_EQ(b.index(), 1u);
  EXPECT_EQ(l.index(), 0u);
  // Re-interning returns the same id; lanes and labels pool independently.
  EXPECT_EQ(symbols.lane("PRR0"), a);
  EXPECT_EQ(symbols.laneCount(), 2u);
  EXPECT_EQ(symbols.labelCount(), 1u);
  EXPECT_EQ(symbols.laneName(a), "PRR0");
  EXPECT_EQ(symbols.labelName(l), "compute");
  EXPECT_EQ(symbols.findLane("config"), b);
  EXPECT_FALSE(symbols.findLane("never-interned").valid());
}

TEST(SymbolTable, CopiesKeepNamesAndIdsStable) {
  SymbolTable symbols;
  const LaneId a = symbols.lane("HT-in");
  SymbolTable copy = symbols;
  EXPECT_EQ(copy.laneName(a), "HT-in");
  EXPECT_EQ(copy.lane("HT-in"), a);
  // Interning into the copy must not disturb the original.
  copy.lane("HT-out");
  EXPECT_EQ(symbols.laneCount(), 1u);
  EXPECT_EQ(copy.laneCount(), 2u);
}

TEST(TimelineAccumulators, MatchARecomputeFromTheSpans) {
  Timeline tl;
  const LaneId prr0 = tl.lane("PRR0");
  const LaneId prr1 = tl.lane("PRR1");
  const LabelId compute = tl.label("compute");
  util::Rng rng{7};
  std::vector<std::int64_t> busy(2, 0);
  std::int64_t horizon = 0;
  for (int i = 0; i < 500; ++i) {
    const auto start = static_cast<std::int64_t>(rng() % 1'000'000);
    const auto len = static_cast<std::int64_t>(rng() % 10'000);
    const std::size_t laneIdx = rng() % 2;
    tl.record(laneIdx == 0 ? prr0 : prr1, compute, '#',
              Time::picoseconds(start), Time::picoseconds(start + len));
    busy[laneIdx] += len;
    horizon = std::max(horizon, start + len);
  }
  EXPECT_EQ(tl.laneBusy(prr0).ps(), busy[0]);
  EXPECT_EQ(tl.laneBusy(prr1).ps(), busy[1]);
  EXPECT_EQ(tl.laneBusy("PRR1"), tl.laneBusy(prr1));
  EXPECT_EQ(tl.horizon().ps(), horizon);
  // Never-recorded lanes read as zero through the name-based lookup.
  EXPECT_EQ(tl.laneBusy("not-a-lane"), Time::zero());
}

TEST(FrameArena, RecyclesABlockThroughRepeatedReleaseCycles) {
  // Regression for the free-list header clobber: releasing a block and
  // reallocating it twice must keep the size-class header intact, so the
  // third release still routes to the right free list.
  detail::FrameArena arena;
  void* first = arena.allocate(200);
  std::memset(first, 0xAB, 200);  // simulate a live frame overwriting all bytes
  arena.release(first);
  void* second = arena.allocate(200);
  EXPECT_EQ(second, first);  // same size class -> recycled block
  std::memset(second, 0xCD, 200);
  arena.release(second);
  void* third = arena.allocate(200);
  EXPECT_EQ(third, first);
  arena.release(third);
}

TEST(FrameArena, SizeClassesDoNotAliasEachOther) {
  detail::FrameArena arena;
  void* small = arena.allocate(64);
  void* large = arena.allocate(1024);
  arena.release(small);
  arena.release(large);
  // Each class recycles its own block.
  EXPECT_EQ(arena.allocate(1024), large);
  EXPECT_EQ(arena.allocate(64), small);
}

TEST(FrameArena, OversizeBlocksRoundTripThroughTheGlobalHeap) {
  detail::FrameArena arena;
  void* huge = arena.allocate(1 << 20);
  std::memset(huge, 0x5A, 1 << 20);
  arena.release(huge);  // must not be retained in a size-class list
  void* next = arena.allocate(1 << 20);
  arena.release(next);
}

}  // namespace
}  // namespace prtr::sim
