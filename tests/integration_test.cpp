// End-to-end reproduction checks: the simulated platform + executors must
// reproduce the paper's Figure 9 shape and the bound claims of section 5.
#include <gtest/gtest.h>

#include "analysis/figures.hpp"
#include "model/bounds.hpp"
#include "model/model.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

namespace prtr {
namespace {

using model::ConfigTimeBasis;

runtime::ScenarioOptions paperOptions(ConfigTimeBasis basis) {
  runtime::ScenarioOptions so;
  so.layout = xd1::Layout::kDualPrr;
  so.basis = basis;
  so.tControl = util::Time::microseconds(10);
  so.forceMiss = true;  // H = 0, M = 1
  so.prepare = runtime::PrepareSource::kQueue;
  return so;
}

tasks::Workload workloadForXTask(const tasks::FunctionRegistry& registry,
                                 double xTask, ConfigTimeBasis basis,
                                 std::size_t calls) {
  sim::Simulator sim;
  const xd1::Node node{sim};
  const model::ConfigTimes times = model::configTimes(node);
  const util::Time target =
      util::Time::seconds(xTask * times.full(basis).toSeconds());
  const util::Bytes bytes =
      model::bytesForTaskTime(node, registry.byName("median"), target);
  return tasks::makeRoundRobinWorkload(registry, calls, bytes);
}

TEST(Fig9Integration, MeasuredBasisTracksModelAcrossDecades) {
  const auto registry = tasks::makePaperFunctions();
  for (const double xTask : {0.005, 0.0118, 0.12, 1.0, 8.0}) {
    const auto workload =
        workloadForXTask(registry, xTask, ConfigTimeBasis::kMeasured, 60);
    const auto result = runtime::runScenario(
        registry, workload, paperOptions(ConfigTimeBasis::kMeasured));
    EXPECT_LT(result.modelError, 0.08)
        << "xTask=" << xTask << " sim=" << result.speedup
        << " model=" << result.modelSpeedup;
  }
}

TEST(Fig9Integration, EstimatedBasisTracksModel) {
  // Near the peak (X_task ~ X_PRTR) the simulator sits up to ~12% below
  // the ideal model: the dual-channel constraint (config only after data
  // input, paper section 4.1) costs the input share of the overlap. The
  // paper reports the same effect: "the experimental results are slightly
  // deviated from the theoretical expectations".
  const auto registry = tasks::makePaperFunctions();
  for (const double xTask : {0.05, 0.17, 1.0, 5.0}) {
    const auto workload =
        workloadForXTask(registry, xTask, ConfigTimeBasis::kEstimated, 60);
    const auto result = runtime::runScenario(
        registry, workload, paperOptions(ConfigTimeBasis::kEstimated));
    EXPECT_LT(result.modelError, 0.13) << "xTask=" << xTask;
    EXPECT_LE(result.speedup, result.modelSpeedup * 1.001)
        << "the model is an upper bound on the implementable overlap";
  }
}

TEST(Fig9Integration, SpeedupCappedAtTwoForTaskDominantCalls) {
  // Paper: for X_task > 1 PRTR cannot exceed twice FRTR.
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      workloadForXTask(registry, 2.0, ConfigTimeBasis::kMeasured, 40);
  const auto result = runtime::runScenario(
      registry, workload, paperOptions(ConfigTimeBasis::kMeasured));
  EXPECT_LT(result.speedup, 2.0);
  EXPECT_GT(result.speedup, 1.0);
}

TEST(Fig9Integration, LargeWinsConcentrateAtSmallTasksOnMeasuredBasis) {
  // The big PRTR wins live at and below X_task = X_PRTR ~ 0.0119 (the
  // paper's "up to 87x" region); the curve then falls off towards the 2x
  // cap. The simulated peak sits slightly left of X_PRTR because the
  // configuration cannot overlap the data-input share of the previous
  // task (section 4.1), while eq. (7)'s peak is exactly at X_PRTR.
  const auto registry = tasks::makePaperFunctions();
  const auto opts = paperOptions(ConfigTimeBasis::kMeasured);

  auto speedupAt = [&](double xTask) {
    const auto workload =
        workloadForXTask(registry, xTask, ConfigTimeBasis::kMeasured, 200);
    return runtime::runScenario(registry, workload, opts).speedup;
  };
  const double tiny = speedupAt(0.002);
  const double atMatch = speedupAt(0.0119);
  const double mid = speedupAt(0.15);
  const double large = speedupAt(2.0);
  EXPECT_GT(atMatch, 30.0);  // paper: ~87x asymptotically; finite runs lower
  EXPECT_GT(tiny, 30.0);
  EXPECT_GT(atMatch, mid);
  EXPECT_GT(mid, large);
  EXPECT_LT(large, 2.0);  // the 2x cap for task-dominant calls
}

TEST(Fig5Integration, SeriesMatchAnalyticBounds) {
  const auto series = analysis::makeFig5Series(0.17, {0.0, 0.5, 1.0}, 41);
  ASSERT_EQ(series.size(), 3u);
  for (const auto& s : series) {
    ASSERT_EQ(s.x.size(), 41u);
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (s.x[i] >= 1.0) {
        EXPECT_LE(s.y[i], 2.0 + 1e-9);  // the 2x cap
      }
      EXPECT_LE(s.y[i], model::upperBoundForTask(s.x[i]) + 1e-9);
    }
  }
}

TEST(Table2Integration, TableReproducesPaperColumns) {
  const util::Table table = analysis::makeTable2();
  ASSERT_EQ(table.rowCount(), 3u);
  // Row 0: full configuration, exact byte match.
  EXPECT_EQ(table.rowAt(0).at(1), "2381764");
  // Normalized measured dual-PRR X_PRTR ~ 0.012 (paper Table 2).
  EXPECT_EQ(table.rowAt(2).at(0), "Dual PRR");
  const double xMeas = std::stod(table.rowAt(2).at(8));
  EXPECT_NEAR(xMeas, 0.012, 0.0005);
}

TEST(Table1Integration, TableListsAllFiveRows) {
  const util::Table table = analysis::makeTable1();
  ASSERT_EQ(table.rowCount(), 5u);
  EXPECT_EQ(table.rowAt(0).at(0), "Static Region");
  EXPECT_EQ(table.rowAt(1).at(0), "PR Controller");
  EXPECT_EQ(table.rowAt(2).at(0), "Median Filter");
  // Table 1 quotes median at ~6% LUTs of the device (3141/47232 = 6.7%).
  EXPECT_NE(table.rowAt(2).at(1).find("3141"), std::string::npos);
  EXPECT_NE(table.rowAt(2).at(1).find("6.7"), std::string::npos);
}

TEST(PrefetchIntegration, OracleBeatsNoneOnLocalityWorkload) {
  const auto registry = tasks::makeExtendedFunctions();
  util::Rng rng{2026};
  const auto workload =
      tasks::makeMarkovWorkload(registry, 150, util::Bytes{2'000'000}, 0.6, rng);

  runtime::ScenarioOptions none;
  none.sides = runtime::ScenarioSides::kPrtrOnly;
  none.forceMiss = false;
  none.prepare = runtime::PrepareSource::kNone;
  const auto noneReport = runtime::runScenario(registry, workload, none).prtr;

  runtime::ScenarioOptions oracle = none;
  oracle.prepare = runtime::PrepareSource::kQueue;
  const auto oracleReport =
      runtime::runScenario(registry, workload, oracle).prtr;

  // Same miss pattern (residency-driven), but the oracle overlaps the
  // configurations with execution, so it must finish no later.
  EXPECT_LE(oracleReport.total.toSeconds(),
            noneReport.total.toSeconds() * 1.0001);
  EXPECT_GT(noneReport.configStall.toSeconds(),
            oracleReport.configStall.toSeconds());
}

TEST(ModelValidation, MeasuredHitRatioFeedsEquationSix) {
  // Free-running (no forceMiss) scenario: the measured H plugged into
  // eq. (6) should predict the measured speedup.
  const auto registry = tasks::makePaperFunctions();
  const auto workload = tasks::makeRoundRobinWorkload(
      registry, 90, util::Bytes{30'000'000});
  runtime::ScenarioOptions so;
  so.forceMiss = false;
  so.prepare = runtime::PrepareSource::kQueue;
  const auto result = runtime::runScenario(registry, workload, so);
  // 3 modules round-robin over 2 PRRs: every call misses under LRU.
  EXPECT_NEAR(result.modelParams.hitRatio, 0.0, 1e-12);
  EXPECT_LT(result.modelError, 0.08);
}

}  // namespace
}  // namespace prtr
