// Tests for the configuration pre-fetching algorithms.
#include <gtest/gtest.h>

#include "runtime/prefetch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::runtime {
namespace {

TEST(NonePrefetcherTest, NeverPredicts) {
  NonePrefetcher p;
  EXPECT_EQ(p.predictNext(), std::nullopt);
  p.observe(5);
  EXPECT_EQ(p.predictNext(), std::nullopt);
  EXPECT_EQ(p.decisionLatency(), util::Time::zero());
  EXPECT_EQ(p.name(), "none");
}

TEST(OraclePrefetcherTest, PredictsExactSequence) {
  const std::vector<ModuleId> seq{1, 2, 3, 1, 2};
  OraclePrefetcher p{seq, util::Time::microseconds(1)};
  EXPECT_EQ(p.predictNext(), std::optional<ModuleId>{1});
  p.observe(1);
  EXPECT_EQ(p.predictNext(), std::optional<ModuleId>{2});
  p.observe(2);
  p.observe(3);
  EXPECT_EQ(p.predictNext(), std::optional<ModuleId>{1});
  p.observe(1);
  p.observe(2);
  EXPECT_EQ(p.predictNext(), std::nullopt);  // sequence exhausted
}

TEST(MarkovPrefetcherTest, LearnsDominantTransition) {
  MarkovPrefetcher p{util::Time::zero()};
  EXPECT_EQ(p.predictNext(), std::nullopt);  // untrained
  // Train A->B (3x) and A->C (1x).
  for (int i = 0; i < 3; ++i) {
    p.observe(1);
    p.observe(2);
  }
  p.observe(1);
  p.observe(3);
  p.observe(1);
  EXPECT_EQ(p.predictNext(), std::optional<ModuleId>{2});
}

TEST(MarkovPrefetcherTest, HighAccuracyOnPeriodicSequence) {
  MarkovPrefetcher p{util::Time::zero()};
  const ModuleId cycle[] = {1, 2, 3};
  std::uint64_t correct = 0;
  std::uint64_t predictions = 0;
  for (int i = 0; i < 300; ++i) {
    const ModuleId actual = cycle[i % 3];
    if (const auto guess = p.predictNext()) {
      ++predictions;
      if (*guess == actual) ++correct;
    }
    p.observe(actual);
  }
  ASSERT_GT(predictions, 250u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(predictions),
            0.95);
}

TEST(AssociationPrefetcherTest, LearnsPairedFunctions) {
  AssociationPrefetcher p{4, util::Time::zero()};
  // Functions 10 and 11 always travel together.
  for (int i = 0; i < 50; ++i) {
    p.observe(10);
    p.observe(11);
    p.observe(static_cast<ModuleId>(20 + (i % 3)));
  }
  p.observe(10);
  EXPECT_EQ(p.predictNext(), std::optional<ModuleId>{11});
}

TEST(AssociationPrefetcherTest, WindowValidated) {
  EXPECT_THROW((AssociationPrefetcher{1, util::Time::zero()}),
               util::DomainError);
}

TEST(PrefetcherFactoryTest, BuildsEveryKind) {
  for (const PrefetcherKind kind : allPrefetcherKinds()) {
    EXPECT_EQ(makePrefetcher(kind, util::Time::zero(), {1, 2})->name(),
              toString(kind));
  }
}

TEST(PrefetcherFactoryTest, DecisionLatencyIsForwarded) {
  const auto p =
      makePrefetcher(PrefetcherKind::kMarkov, util::Time::microseconds(7));
  EXPECT_EQ(p->decisionLatency(), util::Time::microseconds(7));
}

TEST(PrefetcherFactoryTest, DeprecatedStringFactoryStillWorks) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(makePrefetcher("oracle", util::Time::zero(), {1, 2})->name(),
            "oracle");
  EXPECT_THROW(makePrefetcher("psychic", util::Time::zero()),
               util::DomainError);
#pragma GCC diagnostic pop
}

/// Property sweep: Markov prediction accuracy tracks the workload's
/// self-transition bias.
class MarkovAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(MarkovAccuracyTest, AccuracyAtLeastSelfBias) {
  const double bias = GetParam();
  util::Rng rng{71};
  MarkovPrefetcher p{util::Time::zero()};
  ModuleId current = 1;
  std::uint64_t correct = 0;
  std::uint64_t predictions = 0;
  for (int i = 0; i < 20000; ++i) {
    if (!rng.chance(bias)) current = 1 + rng.below(6);
    if (const auto guess = p.predictNext()) {
      ++predictions;
      if (*guess == current) ++correct;
    }
    p.observe(current);
  }
  ASSERT_GT(predictions, 10000u);
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(predictions);
  // Predicting "stay" is always available to the learner, so accuracy
  // should be at least roughly the self-transition probability.
  EXPECT_GT(accuracy, bias - 0.08) << "bias=" << bias;
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, MarkovAccuracyTest,
                         ::testing::Values(0.5, 0.7, 0.9));

}  // namespace
}  // namespace prtr::runtime
