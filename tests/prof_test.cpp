// Tests for prtr::prof — the wall-clock profiler (aggregation semantics,
// thread-safety, the null-profiler zero-overhead contract) and the
// deterministic counter-track sampler that feeds the Chrome-trace exporter.
#include <gtest/gtest.h>

#include "exec/pool.hpp"
#include "prof/counters.hpp"
#include "prof/profiler.hpp"
#include "runtime/scenario.hpp"
#include "sim/trace.hpp"
#include "tasks/workload.hpp"

namespace {

using namespace prtr;

TEST(Profiler, RecordAggregatesUnderTheLabel) {
  prof::Profiler profiler;
  profiler.record("phase.a", 100);
  profiler.record("phase.a", 300);
  profiler.record("phase.b", 50);
  const prof::ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.phases.size(), 2u);
  const obs::HistogramSummary& a = snap.phases.at("phase.a");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.sum, 400);
  EXPECT_EQ(a.min, 100);
  EXPECT_EQ(a.max, 300);
  EXPECT_GE(a.p50(), static_cast<double>(a.min));
  EXPECT_LE(a.p95(), static_cast<double>(a.max));
  EXPECT_EQ(snap.phases.at("phase.b").count, 1u);
}

TEST(Profiler, CountAndSampleAccumulate) {
  prof::Profiler profiler;
  profiler.count("event");
  profiler.count("event", 4);
  profiler.sample("gauge", 10);
  profiler.sample("gauge", 30);
  const prof::ProfileSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.counts.at("event"), 5u);
  EXPECT_EQ(snap.samples.at("gauge").count, 2u);
  EXPECT_EQ(snap.samples.at("gauge").min, 10);
  EXPECT_EQ(snap.samples.at("gauge").max, 30);
}

TEST(Profiler, ScopeTimesAnIntervalAndNullScopeIsANoOp) {
  prof::Profiler profiler;
  {
    const prof::Scope scope{&profiler, "scoped"};
  }
  EXPECT_EQ(profiler.snapshot().phases.at("scoped").count, 1u);
  {
    // A null profiler must be safe and record nothing anywhere.
    const prof::Scope scope{nullptr, "scoped"};
  }
  EXPECT_EQ(profiler.snapshot().phases.at("scoped").count, 1u);
}

TEST(Profiler, SnapshotJsonAndToStringAreRenderable) {
  prof::Profiler profiler;
  profiler.record("phase", 1'000);
  profiler.count("hits", 3);
  profiler.sample("depth", 7);
  const prof::ProfileSnapshot snap = profiler.snapshot();
  EXPECT_FALSE(snap.empty());
  const std::string json = snap.toJson();
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\":{\"hits\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(snap.toString().find("phase"), std::string::npos);
}

// The same work fanned out at different pool widths must aggregate to the
// same counts: the profiler's mutex makes concurrent recording lossless.
TEST(Profiler, AggregationIsDeterministicAcrossPoolWidths) {
  constexpr std::size_t kItems = 64;
  const std::vector<int> items(kItems, 1);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    prof::Profiler profiler;
    const auto out = exec::parallelMap(
        items,
        [&](int item) {
          const prof::Scope scope{&profiler, "work.item"};
          profiler.count("work.count");
          profiler.sample("work.sample", item);
          return item;
        },
        exec::ForOptions{.threads = threads});
    EXPECT_EQ(out.size(), kItems);
    const prof::ProfileSnapshot snap = profiler.snapshot();
    EXPECT_EQ(snap.phases.at("work.item").count, kItems)
        << "threads=" << threads;
    EXPECT_EQ(snap.counts.at("work.count"), kItems) << "threads=" << threads;
    EXPECT_EQ(snap.samples.at("work.sample").count, kItems)
        << "threads=" << threads;
    EXPECT_EQ(snap.samples.at("work.sample").sum,
              static_cast<std::int64_t>(kItems))
        << "threads=" << threads;
  }
}

// Attaching a profiler must not change any simulated output: same scenario
// with and without Hooks::profiler renders byte-identical results.
TEST(Profiler, AttachingAProfilerLeavesScenarioResultsByteIdentical) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 6, util::Bytes{1'000'000});

  runtime::ScenarioOptions plain;
  plain.forceMiss = true;
  const runtime::ScenarioResult without =
      runtime::runScenario(registry, workload, plain);

  prof::Profiler profiler;
  runtime::ScenarioOptions profiled;
  profiled.forceMiss = true;
  profiled.hooks.profiler = &profiler;
  const runtime::ScenarioResult with =
      runtime::runScenario(registry, workload, profiled);

  EXPECT_EQ(without.toString(), with.toString());
  EXPECT_EQ(without.metrics, with.metrics);
  EXPECT_EQ(without.metrics.toJson(), with.metrics.toJson());
  // And the profiler did observe the instrumented scenario phases.
  const prof::ProfileSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.phases.count("scenario.prtr"), 1u);
  EXPECT_EQ(snap.phases.count("scenario.frtr"), 1u);
}

sim::Timeline syntheticTimeline() {
  // 8 ns horizon, bucketed by 4 below into 2 ns buckets:
  //   HT-in  busy [0, 2) ns          -> 1, 0, 0, 0
  //   config busy [2, 4) ns          -> 0, 1, 0, 0
  //   PRR0   busy [4, 8) ns          \  averaged over 2 lanes:
  //   PRR1   busy [6, 8) ns          /  0, 0, 0.5, 1
  sim::Timeline tl;
  const sim::LabelId compute = tl.label("compute");
  tl.record(tl.lane("HT-in"), tl.label("data-in"), '>', util::Time::zero(),
            util::Time::nanoseconds(2));
  tl.record(tl.lane("config"), tl.label("partial"), 'P',
            util::Time::nanoseconds(2), util::Time::nanoseconds(4));
  tl.record(tl.lane("PRR0"), compute, '#', util::Time::nanoseconds(4),
            util::Time::nanoseconds(8));
  tl.record(tl.lane("PRR1"), compute, '#', util::Time::nanoseconds(6),
            util::Time::nanoseconds(8));
  return tl;
}

TEST(CounterSampler, GoldenBusyFractionsForAHandBuiltTimeline) {
  const auto tracks = prof::sampleTimelineCounters(syntheticTimeline(), 4);
  ASSERT_EQ(tracks.size(), 3u);  // no HT-out spans -> no link.out track

  EXPECT_EQ(tracks[0].name, "link.in.occupancy");
  ASSERT_EQ(tracks[0].samples.size(), 4u);
  EXPECT_DOUBLE_EQ(tracks[0].samples[0].value, 1.0);
  EXPECT_DOUBLE_EQ(tracks[0].samples[1].value, 0.0);
  EXPECT_EQ(tracks[0].samples[1].at_ps, 2'000);

  EXPECT_EQ(tracks[1].name, "icap.busy");
  EXPECT_DOUBLE_EQ(tracks[1].samples[0].value, 0.0);
  EXPECT_DOUBLE_EQ(tracks[1].samples[1].value, 1.0);

  EXPECT_EQ(tracks[2].name, "prr.residency");
  EXPECT_DOUBLE_EQ(tracks[2].samples[2].value, 0.5);
  EXPECT_DOUBLE_EQ(tracks[2].samples[3].value, 1.0);
}

TEST(CounterSampler, EmptyTimelineYieldsNoTracks) {
  EXPECT_TRUE(prof::sampleTimelineCounters(sim::Timeline{}).empty());
  EXPECT_TRUE(prof::sampleTimelineCounters(syntheticTimeline(), 0).empty());
}

TEST(CounterSampler, SamplingIsDeterministic) {
  const auto first = prof::sampleTimelineCounters(syntheticTimeline());
  const auto second = prof::sampleTimelineCounters(syntheticTimeline());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name);
    ASSERT_EQ(first[i].samples.size(), second[i].samples.size());
    for (std::size_t s = 0; s < first[i].samples.size(); ++s) {
      EXPECT_EQ(first[i].samples[s].at_ps, second[i].samples[s].at_ps);
      EXPECT_EQ(first[i].samples[s].value, second[i].samples[s].value);
    }
  }
}

// A real scenario run must produce the tracks the bench trace (fig9a
// --trace) is expected to carry: link occupancy and ICAP busy.
TEST(CounterSampler, ScenarioTimelineYieldsLinkAndIcapTracks) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  sim::Timeline timeline;
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  so.hooks.timeline = &timeline;
  (void)runtime::runScenario(registry, workload, so);
  ASSERT_FALSE(timeline.empty());

  const auto tracks = prof::sampleTimelineCounters(timeline);
  auto has = [&](std::string_view name) {
    for (const auto& t : tracks) {
      if (t.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("link.in.occupancy"));
  EXPECT_TRUE(has("link.out.occupancy"));
  EXPECT_TRUE(has("icap.busy"));
  EXPECT_TRUE(has("prr.residency"));
  for (const auto& track : tracks) {
    for (const auto& sample : track.samples) {
      EXPECT_GE(sample.value, 0.0);
      EXPECT_LE(sample.value, 1.0);
    }
  }
}

}  // namespace
