// prtr::fleet contract tests: calibration sanity, byte-identical output at
// any thread count, the retry-budget cap, circuit-breaker open/half-open/
// close cycling under a hostile fault plan, load shedding under overload,
// hedged requests, and request accounting (admitted = completed + failed).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analyze/checks_fleet.hpp"
#include "fleet/fleet.hpp"
#include "tasks/hwfunction.hpp"
#include "util/error.hpp"

namespace prtr {
namespace {

const tasks::FunctionRegistry& paperRegistry() {
  static const tasks::FunctionRegistry registry = tasks::makePaperFunctions();
  return registry;
}

/// Calibration runs the full blade simulator per function, so the suite
/// shares one profile at a small payload.
const fleet::BladeProfile& sharedProfile() {
  static const fleet::BladeProfile profile = fleet::calibrateBladeProfile(
      paperRegistry(), runtime::ScenarioOptions{}, util::Bytes::kibi(64));
  return profile;
}

fleet::FleetOptions smallFleet() {
  fleet::FleetOptions options;
  options.cells = 4;
  options.bladesPerCell = 3;
  options.requests = 20'000;
  options.payloadBytes = util::Bytes::kibi(64);
  options.users = 32;
  return options;
}

fault::Plan hostilePlan() {
  fault::Plan plan;
  plan.seed = 77;
  plan.icapAbortRate = 0.30;
  plan.transferTimeoutRate = 0.10;
  plan.linkStallRate = 0.05;
  return plan;
}

TEST(FleetCalibrationTest, ProfilesEveryFunctionWithPositiveCosts) {
  const fleet::BladeProfile& profile = sharedProfile();
  ASSERT_EQ(profile.tasks.size(), paperRegistry().size());
  for (const fleet::TaskProfile& t : profile.tasks) {
    EXPECT_GE(t.execFixedPs, 0);
    EXPECT_GT(t.execPs(64 * 1024), 0);
    EXPECT_GT(t.configPs, 0) << "persona reload must cost time";
    EXPECT_GT(t.configWords, 0u) << "persona reload must write words";
  }
  EXPECT_GT(profile.meanExecPs(64 * 1024), 0);
  EXPECT_GT(profile.meanConfigPs(), 0);
}

TEST(FleetDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  fleet::FleetOptions options = smallFleet();
  options.degradedFraction = 0.25;
  options.degradedFaults = hostilePlan();
  options.hedge.enabled = true;

  options.threads = 1;
  const fleet::FleetReport serial =
      runFleet(paperRegistry(), sharedProfile(), options);
  options.threads = 4;
  const fleet::FleetReport parallel =
      runFleet(paperRegistry(), sharedProfile(), options);

  EXPECT_EQ(serial.metrics.toString(), parallel.metrics.toString());
  EXPECT_EQ(serial.toString(), parallel.toString());
  EXPECT_EQ(serial.makespan, parallel.makespan);
}

TEST(FleetDeterminismTest, SeedChangesTheRun) {
  fleet::FleetOptions options = smallFleet();
  const fleet::FleetReport a =
      runFleet(paperRegistry(), sharedProfile(), options);
  options.seed ^= 1;
  const fleet::FleetReport b =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_NE(a.metrics.toString(), b.metrics.toString());
}

TEST(FleetHealthyTest, NoFaultsMeansNoFailuresRetriesOrBreakerActivity) {
  const fleet::FleetOptions options = smallFleet();
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_GT(report.offered, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.breakerOpens, 0u);
  EXPECT_EQ(report.admitted, report.completed + report.failed);
  EXPECT_EQ(report.offered, report.admitted + report.shed);
  EXPECT_GT(report.latency.count, 0u);
  EXPECT_GT(report.utilizationMean, 0.0);
  EXPECT_LE(report.utilizationMax, 1.0 + 1e-9);
}

TEST(FleetRetryTest, BudgetCapsRetriesAtTheConfiguredFraction) {
  fleet::FleetOptions options = smallFleet();
  options.faults = hostilePlan();  // every blade is hostile: retry pressure
  options.retry.maxAttempts = 4;
  options.retry.budgetFraction = 0.10;
  options.retry.burstTokens = 5.0;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  ASSERT_GT(report.retries, 0u) << "a hostile plan must provoke retries";
  // Token-bucket invariant, per cell: retries <= fraction * admitted +
  // burst. Summed over cells the burst allowance scales with cell count.
  const double cap =
      options.retry.budgetFraction * static_cast<double>(report.admitted) +
      options.retry.burstTokens * static_cast<double>(options.cells);
  EXPECT_LE(static_cast<double>(report.retries), cap);
  EXPECT_GT(report.retriesDenied, 0u)
      << "a 10% budget under a 30%-abort plan must run dry";
  EXPECT_LE(report.retryBudgetConsumption(),
            options.retry.budgetFraction + 0.01);
}

TEST(FleetBreakerTest, OpensOnDegradedBladesAndRecoversViaProbes) {
  fleet::FleetOptions options = smallFleet();
  options.requests = 40'000;
  options.degradedFraction = 0.25;
  options.degradedFaults = hostilePlan();
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_GT(report.breakerOpens, 0u)
      << "a 30%-abort blade must trip its breaker";
  EXPECT_GT(report.breakerCloses, 0u)
      << "half-open probes at 70% success must eventually close it";
  EXPECT_GT(report.metrics.counterOr("fleet.breaker.half_opens"), 0u);
  // Healthy majority keeps the fleet serving.
  EXPECT_GT(report.completed, report.admitted / 2);
  EXPECT_EQ(report.admitted, report.completed + report.failed);
}

TEST(FleetAdmissionTest, OverloadSheds) {
  fleet::FleetOptions options = smallFleet();
  options.offeredLoad = 1.8;
  options.admission.sloFactor = 4.0;
  options.admission.maxQueueDepth = 8;
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_GT(report.shed, 0u) << "1.8x offered load must shed";
  EXPECT_GT(report.shedRate(), 0.0);
  // Shedding bounds the queue: nobody waits past the SLO-derived deadline
  // plus one service time's worth of estimation slack.
  EXPECT_EQ(report.offered, report.admitted + report.shed);
}

TEST(FleetHedgeTest, HedgesFireAndAreAccounted) {
  fleet::FleetOptions options = smallFleet();
  options.requests = 40'000;
  options.hedge.enabled = true;
  options.hedge.minSamples = 200;
  options.hedge.budgetFraction = 0.10;
  // Link stalls on every blade make stragglers for hedges to beat.
  options.faults.linkStallRate = 0.05;
  options.faults.stallDuration = util::Time::milliseconds(2);
  const fleet::FleetReport report =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_GT(report.hedges, 0u);
  EXPECT_LE(report.hedgeWins, report.hedges);
  const std::uint64_t cancelled =
      report.metrics.counterOr("fleet.hedge_cancelled");
  EXPECT_LE(report.hedgeWins + cancelled, report.hedges + report.completed);
  EXPECT_EQ(report.admitted, report.completed + report.failed);
}

TEST(FleetOptionsTest, ValidationRejectsBrokenTopologies) {
  fleet::FleetOptions options = smallFleet();
  options.bladesPerCell = 7;
  EXPECT_THROW(
      (void)runFleet(paperRegistry(), sharedProfile(), options),
      util::DomainError);
  options = smallFleet();
  options.offeredLoad = 0.0;
  EXPECT_THROW(
      (void)runFleet(paperRegistry(), sharedProfile(), options),
      util::DomainError);
  options = smallFleet();
  options.arrival = fleet::ArrivalProcess::kTrace;
  EXPECT_THROW(
      (void)runFleet(paperRegistry(), sharedProfile(), options),
      util::DomainError);
}

TEST(FleetTraceTest, TraceArrivalsReplayDeterministically) {
  fleet::FleetOptions options = smallFleet();
  options.requests = 5'000;
  options.arrival = fleet::ArrivalProcess::kTrace;
  options.trace = {
      {util::Time::microseconds(40).ps(), 0, 0},
      {util::Time::microseconds(5).ps(), 1, 32 * 1024},
      {util::Time::microseconds(90).ps(), -1, 0},
  };
  const fleet::FleetReport a =
      runFleet(paperRegistry(), sharedProfile(), options);
  const fleet::FleetReport b =
      runFleet(paperRegistry(), sharedProfile(), options);
  EXPECT_EQ(a.metrics.toString(), b.metrics.toString());
  EXPECT_GT(a.completed, 0u);
}

TEST(FleetSpecTest, RoundTripsThroughTheSpecFormat) {
  std::istringstream spec{R"(# chaos fleet
cells 3
blades 5
requests 1234
arrival fixed-rate
offered-load 0.6
routing least-loaded
max-attempts 4
retry-budget 0.15
breaker-failures 7
hedge true
hedge-quantile 0.9
degraded-fraction 0.2
)"};
  const analyze::FleetSpec parsed = analyze::parseFleetSpec(spec);
  const fleet::FleetOptions options = analyze::fleetSpecToOptions(parsed);
  EXPECT_EQ(options.cells, 3u);
  EXPECT_EQ(options.bladesPerCell, 5u);
  EXPECT_EQ(options.requests, 1234u);
  EXPECT_EQ(options.arrival, fleet::ArrivalProcess::kFixedRate);
  EXPECT_EQ(options.routing, fleet::RoutingPolicy::kLeastLoaded);
  EXPECT_DOUBLE_EQ(options.offeredLoad, 0.6);
  EXPECT_EQ(options.retry.maxAttempts, 4u);
  EXPECT_DOUBLE_EQ(options.retry.budgetFraction, 0.15);
  EXPECT_EQ(options.breaker.consecutiveFailures, 7u);
  EXPECT_TRUE(options.hedge.enabled);
  EXPECT_DOUBLE_EQ(options.hedge.quantile, 0.9);
  EXPECT_DOUBLE_EQ(options.degradedFraction, 0.2);

  std::istringstream bad{"cells 2 3\n"};
  EXPECT_THROW((void)analyze::parseFleetSpec(bad), util::DomainError);
  std::istringstream unknown{"no-such-key 1\n"};
  EXPECT_THROW((void)analyze::parseFleetSpec(unknown), util::DomainError);
}

}  // namespace
}  // namespace prtr
