// Tests for the Mattson stack-distance locality analysis, including the
// exactness property: the predicted LRU hit ratio must equal what the
// actual LRU ConfigCache measures, for every slot count.
#include <gtest/gtest.h>

#include "runtime/cache.hpp"
#include "tasks/hwfunction.hpp"
#include "tasks/locality.hpp"
#include "util/error.hpp"

namespace prtr::tasks {
namespace {

Workload fromIndices(std::initializer_list<std::size_t> indices) {
  Workload w{"manual", {}};
  for (const std::size_t i : indices) {
    w.calls.push_back(TaskCall{i, util::Bytes{1}});
  }
  return w;
}

TEST(StackDistanceTest, HandComputedSequence) {
  // Sequence: A B A C B A  -> distances: cold, cold, 1, cold, 2, 2.
  const Workload w = fromIndices({0, 1, 0, 2, 1, 0});
  const auto d = stackDistances(w);
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0], kColdAccess);
  EXPECT_EQ(d[1], kColdAccess);
  EXPECT_EQ(d[2], 1u);
  EXPECT_EQ(d[3], kColdAccess);
  EXPECT_EQ(d[4], 2u);
  EXPECT_EQ(d[5], 2u);
}

TEST(StackDistanceTest, ImmediateRepeatIsDistanceZero) {
  const Workload w = fromIndices({3, 3, 3});
  const auto d = stackDistances(w);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[2], 0u);
}

TEST(LruHitRatioTest, HandComputed) {
  const Workload w = fromIndices({0, 1, 0, 2, 1, 0});
  // slots=2: hits are the distance<2 accesses: only d=1 (1 of 6).
  EXPECT_DOUBLE_EQ(lruHitRatio(w, 2), 1.0 / 6.0);
  // slots=3: d=1 and the two d=2 accesses hit (3 of 6).
  EXPECT_DOUBLE_EQ(lruHitRatio(w, 3), 3.0 / 6.0);
  EXPECT_THROW((void)lruHitRatio(w, 0), util::DomainError);
}

TEST(LruHitRatioTest, CurveIsMonotoneAndMatchesPointQueries) {
  const auto registry = makeExtendedFunctions();
  util::Rng rng{5};
  const Workload w = makeMarkovWorkload(registry, 2000, util::Bytes{1}, 0.6, rng);
  const auto curve = lruHitRatioCurve(w, 8);
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_GE(curve[k], curve[k - 1]);
  }
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_DOUBLE_EQ(curve[k - 1], lruHitRatio(w, k));
  }
}

TEST(LruHitRatioTest, MattsonPredictsTheActualLruCacheExactly) {
  // The headline property: replay through the real LRU ConfigCache and
  // compare with the one-pass prediction, for every slot count.
  const auto registry = makeExtendedFunctions();
  for (const double bias : {0.0, 0.5, 0.9}) {
    util::Rng rng{17};
    const Workload w =
        makeMarkovWorkload(registry, 1500, util::Bytes{1}, bias, rng);
    for (std::size_t slots = 1; slots <= 6; ++slots) {
      runtime::LruCache cache{slots};
      for (const TaskCall& call : w.calls) {
        const auto module = registry.at(call.functionIndex).id;
        if (!cache.access(module)) {
          const auto slot = cache.chooseSlot(module, std::nullopt);
          cache.install(*slot, module);
        }
      }
      EXPECT_DOUBLE_EQ(cache.stats().hitRatio(), lruHitRatio(w, slots))
          << "bias=" << bias << " slots=" << slots;
    }
  }
}

TEST(SlotsForHitRatioTest, FindsMinimalPrrCount) {
  const Workload w = fromIndices({0, 1, 0, 2, 1, 0, 1, 2, 0, 1});
  const std::size_t k = slotsForHitRatio(w, 0.5);
  ASSERT_GT(k, 0u);
  EXPECT_GE(lruHitRatio(w, k), 0.5);
  if (k > 1) {
    EXPECT_LT(lruHitRatio(w, k - 1), 0.5);
  }
}

TEST(SlotsForHitRatioTest, UnattainableTargetsReturnZero) {
  // Every access is cold: no cache size helps.
  const Workload w = fromIndices({0, 1, 2, 3, 4});
  EXPECT_EQ(slotsForHitRatio(w, 0.5), 0u);
  EXPECT_THROW((void)slotsForHitRatio(w, 1.5), util::DomainError);
}

TEST(ProfileTest, SummariesMatchConstruction) {
  const auto registry = makeExtendedFunctions();
  util::Rng rng{11};
  const Workload w =
      makeMarkovWorkload(registry, 10'000, util::Bytes{1}, 0.8, rng);
  const LocalityProfile profile = profileLocality(w);
  EXPECT_EQ(profile.distinctFunctions, registry.size());
  EXPECT_EQ(profile.coldMisses, registry.size());
  // Self-transition rate ~ bias + (1-bias)/n.
  EXPECT_NEAR(profile.selfTransitionRate, 0.8 + 0.2 / 8.0, 0.02);
  EXPECT_GE(profile.meanFiniteStackDistance, 0.0);
}

TEST(ProfileTest, RoundRobinHasMaximalStackDistance) {
  const auto registry = makeExtendedFunctions();
  const Workload w = makeRoundRobinWorkload(registry, 80, util::Bytes{1});
  const LocalityProfile profile = profileLocality(w);
  // Every re-reference has distance n-1 = 7 under round-robin.
  EXPECT_DOUBLE_EQ(profile.meanFiniteStackDistance, 7.0);
  EXPECT_DOUBLE_EQ(profile.selfTransitionRate, 0.0);
  // Hence LRU with fewer than 8 slots never hits.
  EXPECT_DOUBLE_EQ(lruHitRatio(w, 7), 0.0);
  EXPECT_GT(lruHitRatio(w, 8), 0.85);
}

}  // namespace
}  // namespace prtr::tasks
