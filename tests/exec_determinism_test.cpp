// Determinism contract of the exec sweep engine: pooled figure sweeps and
// chassis runs must be byte-identical to the serial run at any thread
// count, with or without the artifact cache attached. Rendered tables /
// report strings are the comparison medium — they capture every number the
// benches publish.
#include <gtest/gtest.h>

#include <string>

#include "analysis/figures.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "hprc/chassis.hpp"

namespace prtr {
namespace {

std::string fig9Render(std::size_t threads, exec::ArtifactCache* artifacts) {
  analysis::Fig9Options opts;
  opts.basis = model::ConfigTimeBasis::kEstimated;
  opts.points = 4;
  opts.xTaskLo = 0.05;
  opts.xTaskHi = 5.0;
  opts.nCalls = 12;
  opts.threads = threads;
  opts.artifacts = artifacts;
  return analysis::fig9Table(analysis::makeFig9(opts)).toString();
}

std::string chassisRender(std::size_t threads,
                          exec::ArtifactCache* artifacts) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 18, util::Bytes{1'000'000});
  hprc::ChassisOptions options;
  options.blades = 3;
  options.threads = threads;
  options.scenario.forceMiss = true;
  options.scenario.basis = model::ConfigTimeBasis::kEstimated;
  options.scenario.artifacts = artifacts;
  const hprc::ChassisReport report =
      hprc::runChassis(registry, workload, options);
  // toString covers makespan/balance; the metrics string pins the ordered
  // bladeN.-prefixed merge, which is where nondeterminism would surface.
  return report.toString() + report.metrics.toString();
}

std::string fig5Render(std::size_t threads) {
  const auto series =
      analysis::makeFig5Series(0.17, {0.0, 0.5, 1.0}, 41, 1e-3, 100.0, threads);
  std::string out;
  for (const auto& s : series) {
    out += s.name;
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      out += ',' + util::formatDouble(s.x[i], 9) + ':' +
             util::formatDouble(s.y[i], 9);
    }
    out += '\n';
  }
  return out;
}

TEST(ExecDeterminismTest, Fig9SweepIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = fig9Render(1, nullptr);
  EXPECT_EQ(fig9Render(2, nullptr), serial);
  EXPECT_EQ(fig9Render(8, nullptr), serial);
}

TEST(ExecDeterminismTest, Fig9SweepWithArtifactCacheMatchesUncached) {
  const std::string serial = fig9Render(1, nullptr);
  exec::ArtifactCache cache;
  // Cold cache, then warm cache: both must reproduce the uncached bytes.
  EXPECT_EQ(fig9Render(8, &cache), serial);
  EXPECT_EQ(fig9Render(8, &cache), serial);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(ExecDeterminismTest, Fig5SeriesAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = fig5Render(1);
  EXPECT_EQ(fig5Render(2), serial);
  EXPECT_EQ(fig5Render(8), serial);
}

TEST(ExecDeterminismTest, ChassisRunIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = chassisRender(1, nullptr);
  EXPECT_EQ(chassisRender(2, nullptr), serial);
  EXPECT_EQ(chassisRender(8, nullptr), serial);
}

TEST(ExecDeterminismTest, ChassisRunWithArtifactCacheMatchesUncached) {
  const std::string serial = chassisRender(1, nullptr);
  exec::ArtifactCache cache;
  EXPECT_EQ(chassisRender(8, &cache), serial);
  EXPECT_EQ(chassisRender(8, &cache), serial);
}

}  // namespace
}  // namespace prtr
