// Tests for the sharded metrics path: the thread-slot provider the exec
// pool registers, contention-free parallel recording through
// ShardedRegistry::local(), and the deterministic ordered tree reduction —
// the property that merged snapshots are byte-identical at any shard width
// and any --threads. This suite also runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/figures.hpp"
#include "exec/pool.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace prtr;

obs::MetricTable& table() { return obs::MetricTable::global(); }

/// Deterministic synthetic per-point snapshot, as a sweep point would
/// absorb: counters and histograms only (the additive series).
obs::MetricsSnapshot pointSnapshot(std::size_t index) {
  obs::Registry reg;
  reg.add(table().counter("sweep.points"), 1);
  reg.add(table().counter("sweep.bytes"), 1'000 + index * 37);
  reg.add(table().counter("sweep.calls." + std::to_string(index % 3)), index);
  reg.observe(table().histogram("sweep.latency_ps"),
              static_cast<std::int64_t>(100 + index * 13));
  return reg.takeSnapshot();
}

TEST(ShardedRegistry, MergeIsByteIdenticalAcrossWidths1To8) {
  // The same 24 point-snapshots, dealt round-robin over W shards: the tree
  // reduction must render byte-equal JSON for every W. This is the exact
  // property the sweep relies on — point-to-shard assignment is
  // schedule-dependent, the merged result must not be.
  std::string reference;
  for (std::size_t width = 1; width <= 8; ++width) {
    obs::ShardedRegistry sharded{width};
    for (std::size_t p = 0; p < 24; ++p) {
      sharded.shard(p % width).absorbAdditive(pointSnapshot(p));
    }
    EXPECT_EQ(sharded.shardCount(), width);
    const std::string json = sharded.takeMerged().toJson();
    if (width == 1) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "width=" << width;
    }
    EXPECT_TRUE(sharded.empty());  // takeMerged resets the shards
  }
  ASSERT_FALSE(reference.empty());
}

TEST(ShardedRegistry, TreeReductionMatchesSequentialMerge) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{5}, std::size_t{8}}) {
    std::vector<obs::MetricsSnapshot> leaves;
    obs::MetricsSnapshot sequential;
    for (std::size_t i = 0; i < n; ++i) {
      leaves.push_back(pointSnapshot(i));
      sequential.merge(leaves.back());
    }
    const obs::MetricsSnapshot reduced =
        obs::reduceSnapshots(std::move(leaves));
    EXPECT_EQ(reduced, sequential) << "n=" << n;
  }
}

TEST(ShardedRegistry, ShardsGrowOnDemandWithStableAddresses) {
  obs::ShardedRegistry sharded{1};
  obs::Registry& first = sharded.shard(0);
  first.add(table().counter("grow.counter"), 1);
  obs::Registry& late = sharded.shard(6);  // grows the bank to 7 shards
  late.add(table().counter("grow.counter"), 2);
  EXPECT_EQ(sharded.shardCount(), 7u);
  // The early shard reference stayed valid across growth.
  first.add(table().counter("grow.counter"), 4);
  EXPECT_EQ(sharded.mergedSnapshot().counterOr("grow.counter"), 7u);
}

TEST(ShardedRegistry, PoolWorkersRecordContentionFreeViaLocal) {
  // parallelFor across the pool: every iteration records into the calling
  // thread's own shard (worker w -> slot w + 1, the caller -> slot 0), so
  // there is no synchronization on the hot path; the merged total is exact
  // at any width. Run at several widths to cover caller-participates and
  // multi-worker scheduling. This is the tsan target for the shard path.
  const obs::CounterId iterations = table().counter("pooltest.iterations");
  const obs::HistogramId values = table().histogram("pooltest.values");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    obs::ShardedRegistry sharded;
    exec::Pool::global().parallelFor(
        500,
        [&](std::size_t i) {
          obs::Registry& shard = sharded.local();
          shard.add(iterations);
          shard.observe(values, static_cast<std::int64_t>(i));
        },
        exec::ForOptions{.threads = threads});
    const obs::MetricsSnapshot merged = sharded.takeMerged();
    EXPECT_EQ(merged.counterOr("pooltest.iterations"), 500u) << threads;
    const obs::HistogramSummary& h = merged.histograms.at("pooltest.values");
    EXPECT_EQ(h.count, 500u);
    EXPECT_EQ(h.sum, 500 * 499 / 2);
    EXPECT_EQ(h.min, 0);
    EXPECT_EQ(h.max, 499);
  }
}

TEST(ShardedRegistry, Fig9SweepIsByteIdenticalAtAnyThreads) {
  // End-to-end: the Fig-9 sweep recording through hooks.shardedMetrics
  // produces byte-equal merged metrics at 1 and 4 participants. Small grid
  // so the suite stays fast.
  auto run = [](std::size_t threads) {
    analysis::Fig9Options opts;
    opts.points = 4;
    opts.nCalls = 8;
    opts.threads = threads;
    obs::ShardedRegistry metrics;
    opts.metrics = &metrics;
    const auto points = analysis::makeFig9(opts);
    EXPECT_EQ(points.size(), 4u);
    return metrics.takeMerged().toJson();
  };
  const std::string serial = run(1);
  const std::string pooled = run(4);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("fig9.points_computed"), std::string::npos);
}

}  // namespace
