// Tests for the dynamic (right-sized region) PRTR executor.
#include <gtest/gtest.h>

#include "runtime/dynamic_executor.hpp"
#include "runtime/executor.hpp"
#include "util/error.hpp"

namespace prtr::runtime {
namespace {

struct DynHarness {
  sim::Simulator sim;
  xd1::Node node{sim};
  tasks::FunctionRegistry registry = tasks::makeExtendedFunctions();
};

TEST(DynamicExecutorTest, WidthsTrackFootprints) {
  DynHarness h;
  DynamicPrtrExecutor executor{h.node, h.registry};
  // A CLB column holds 704 LUT/FF pairs.
  EXPECT_EQ(executor.widthFor(h.registry.byName("median")), 5u);   // 3270/704
  EXPECT_EQ(executor.widthFor(h.registry.byName("sobel")), 2u);    // 1159/704
  EXPECT_EQ(executor.widthFor(h.registry.byName("threshold")), 1u);
}

TEST(DynamicExecutorTest, RejectsHeterogeneousRange) {
  DynHarness h;
  DynamicOptions options;
  options.firstColumn = 14;  // includes the BRAM column at 15
  options.columnCount = 4;
  EXPECT_THROW((DynamicPrtrExecutor{h.node, h.registry, options}),
               util::DomainError);
}

TEST(DynamicExecutorTest, WholeLibraryStaysResident) {
  // All 8 extended functions need 5+2+3+5+1+3+2+2 = 23 columns < 34: the
  // entire hardware library fits at once, so after warm-up there are no
  // reconfigurations at all -- the "system density" argument of section 5.
  DynHarness h;
  DynamicPrtrExecutor executor{h.node, h.registry};
  const auto w =
      tasks::makeRoundRobinWorkload(h.registry, 80, util::Bytes{1'000'000});
  const DynamicReport report = executor.run(w);
  EXPECT_EQ(report.base.configurations, h.registry.size());
  EXPECT_EQ(report.evictions, 0u);
  EXPECT_NEAR(report.base.hitRatio(),
              1.0 - static_cast<double>(h.registry.size()) / 80.0, 1e-12);
}

TEST(DynamicExecutorTest, ConfigurationCostScalesWithModuleWidth) {
  // sobel (2 columns, 44 frames) must configure much faster than a fixed
  // 380-frame dual PRR would.
  DynHarness h;
  DynamicPrtrExecutor executor{h.node, h.registry};
  tasks::Workload w{"sobel-once", {tasks::TaskCall{1, util::Bytes{1'000}}}};
  const DynamicReport report = executor.run(w);
  // 44-frame stream ~ 46.9 kB at 20.31 MB/s ~ 2.3 ms, far below the
  // 19.9 ms of the fixed dual-PRR stream.
  EXPECT_LT(report.base.configStall.toMilliseconds(), 4.0);
  EXPECT_GT(report.base.configStall.toMilliseconds(), 1.0);
}

TEST(DynamicExecutorTest, EvictionWhenLibraryExceedsFabric) {
  // Shrink the managed range so the library cannot fully co-reside.
  DynHarness h;
  DynamicOptions options;
  options.columnCount = 8;  // columns 16..23 only
  DynamicPrtrExecutor executor{h.node, h.registry, options};
  // Cycle the three widest paper filters (5+3+5 = 13 > 8 columns).
  tasks::Workload w{"wide", {}};
  for (int i = 0; i < 30; ++i) {
    const std::size_t fns[] = {0, 2, 3};  // median, smoothing, gaussian
    w.calls.push_back(tasks::TaskCall{fns[i % 3], util::Bytes{500'000}});
  }
  const DynamicReport report = executor.run(w);
  EXPECT_GT(report.evictions, 0u);
  EXPECT_GT(report.base.configurations, 10u);
}

TEST(DynamicExecutorTest, DefragRescuesFragmentedFabric) {
  DynHarness h;
  DynamicOptions options;
  options.columnCount = 12;
  options.defragOnDemand = true;
  DynamicPrtrExecutor executor{h.node, h.registry, options};
  // Alternate narrow and wide modules to fragment the 12-column range.
  tasks::Workload w{"frag", {}};
  const std::size_t seq[] = {4, 1, 5, 0, 4, 2, 0, 7, 3, 1, 0, 6};
  for (int round = 0; round < 4; ++round) {
    for (const std::size_t f : seq) {
      w.calls.push_back(tasks::TaskCall{f, util::Bytes{300'000}});
    }
  }
  const DynamicReport report = executor.run(w);
  EXPECT_EQ(report.base.calls, 48u);
  // The run completes (no "wider than fabric" throw) and compactions ran.
  EXPECT_GT(report.defragRuns + report.evictions, 0u);
}

TEST(DynamicExecutorTest, BeatsFixedDualPrrOnConfigDominatedMix) {
  // Small-data calls over 5 distinct modules: the fixed dual-PRR layout
  // thrashes 380-frame reconfigurations; right-sized regions keep all
  // five modules resident and configure 5-9x less data when they do load.
  const auto registry = tasks::makeExtendedFunctions();
  tasks::Workload w{"mix", {}};
  for (int i = 0; i < 60; ++i) {
    w.calls.push_back(
        tasks::TaskCall{static_cast<std::size_t>(i % 5), util::Bytes{200'000}});
  }

  double fixedSteadyState = 0.0;
  {
    sim::Simulator sim;
    xd1::Node node{sim};
    bitstream::Library library{
        node.floorplan(),
        registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};
    LruCache cache{2};
    NonePrefetcher prefetcher;
    ExecutorOptions eo;
    eo.forceMiss = false;
    eo.prepare = PrepareSource::kNone;  // both sides unoverlapped
    PrtrExecutor fixed{node, registry, library, cache, prefetcher, eo};
    const ExecutionReport fixedReport = fixed.run(w);
    fixedSteadyState =
        (fixedReport.total - fixedReport.initialConfig).toSeconds();
  }

  DynHarness h;
  DynamicPrtrExecutor dynamic{h.node, h.registry};
  const DynamicReport report = dynamic.run(w);
  // Both pay the same 1.678 s initial full configuration; the steady state
  // is where right-sizing wins (resident library, 5-9x smaller streams).
  const double dynamicSteadyState =
      (report.base.total - report.base.initialConfig).toSeconds();
  EXPECT_LT(dynamicSteadyState, fixedSteadyState * 0.25);
}

TEST(DynamicExecutorTest, DeterministicAcrossRuns) {
  const auto run = [] {
    DynHarness h;
    DynamicPrtrExecutor executor{h.node, h.registry};
    const auto w =
        tasks::makeRoundRobinWorkload(h.registry, 40, util::Bytes{750'000});
    return executor.run(w);
  };
  const DynamicReport a = run();
  const DynamicReport b = run();
  EXPECT_EQ(a.base.total, b.base.total);
  EXPECT_EQ(a.base.configurations, b.base.configurations);
}

}  // namespace
}  // namespace prtr::runtime
