// Tests for the dynamic column allocator and defragmenter.
#include <gtest/gtest.h>

#include "fabric/allocator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::fabric {
namespace {

// The XC2VP50's central 34-CLB stretch (columns 16..49) is homogeneous,
// so every defrag move is signature-compatible there.
class AllocatorFixture : public ::testing::Test {
 protected:
  Device device_ = makeXc2vp50();
  ColumnAllocator alloc_{device_, 16, 34};
};

TEST_F(AllocatorFixture, AllocateAndRelease) {
  const auto a = alloc_.allocate(10, FitPolicy::kFirstFit, "a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->firstColumn, 16u);
  EXPECT_EQ(a->width, 10u);
  EXPECT_EQ(alloc_.freeColumns(), 24u);
  alloc_.release(a->id);
  EXPECT_EQ(alloc_.freeColumns(), 34u);
  EXPECT_THROW(alloc_.release(a->id), util::DomainError);
}

TEST_F(AllocatorFixture, FailsWhenNoHoleFits) {
  ASSERT_TRUE(alloc_.allocate(30, FitPolicy::kFirstFit, "big").has_value());
  EXPECT_FALSE(alloc_.allocate(5, FitPolicy::kFirstFit, "no").has_value());
  EXPECT_TRUE(alloc_.allocate(4, FitPolicy::kFirstFit, "yes").has_value());
}

TEST_F(AllocatorFixture, RejectsZeroWidth) {
  EXPECT_THROW(alloc_.allocate(0, FitPolicy::kFirstFit, "zero"),
               util::DomainError);
}

TEST_F(AllocatorFixture, BestFitPicksTightestHole) {
  // Fill the whole range, then carve holes of width 6 and 3:
  // [a:10][hole 6][b:10][hole 3][c:5].
  const auto a = alloc_.allocate(10, FitPolicy::kFirstFit, "a");
  const auto hole6 = alloc_.allocate(6, FitPolicy::kFirstFit, "h6");
  const auto b = alloc_.allocate(10, FitPolicy::kFirstFit, "b");
  const auto hole3 = alloc_.allocate(3, FitPolicy::kFirstFit, "h3");
  const auto c = alloc_.allocate(5, FitPolicy::kFirstFit, "c");
  ASSERT_TRUE(a && hole6 && b && hole3 && c);
  alloc_.release(hole6->id);
  alloc_.release(hole3->id);

  const auto best = alloc_.allocate(3, FitPolicy::kBestFit, "best");
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->firstColumn, hole3->firstColumn);  // 3-wide hole preferred

  const auto worst = alloc_.allocate(3, FitPolicy::kWorstFit, "worst");
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->firstColumn, hole6->firstColumn);  // 6-wide hole preferred
}

TEST_F(AllocatorFixture, FragmentationMetric) {
  EXPECT_DOUBLE_EQ(alloc_.fragmentation(), 0.0);  // one big hole
  const auto a = alloc_.allocate(8, FitPolicy::kFirstFit, "a");
  const auto b = alloc_.allocate(8, FitPolicy::kFirstFit, "b");
  const auto c = alloc_.allocate(8, FitPolicy::kFirstFit, "c");
  ASSERT_TRUE(a && b && c);
  alloc_.release(b->id);
  // Free: middle 8 + tail 10; largest 10 of 18.
  EXPECT_EQ(alloc_.freeColumns(), 18u);
  EXPECT_EQ(alloc_.largestFreeBlock(), 10u);
  EXPECT_NEAR(alloc_.fragmentation(), 1.0 - 10.0 / 18.0, 1e-12);
}

TEST_F(AllocatorFixture, DefragmentCompactsAndEnablesAllocation) {
  const auto a = alloc_.allocate(8, FitPolicy::kFirstFit, "a");
  const auto b = alloc_.allocate(8, FitPolicy::kFirstFit, "b");
  const auto c = alloc_.allocate(8, FitPolicy::kFirstFit, "c");
  ASSERT_TRUE(a && b && c);
  alloc_.release(a->id);
  alloc_.release(c->id);
  // Free 8 + 18 split by b: a 19-wide request fails...
  EXPECT_FALSE(alloc_.allocate(19, FitPolicy::kFirstFit, "x").has_value());

  const auto moves = alloc_.defragment();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].id, b->id);
  EXPECT_EQ(moves[0].toColumn, 16u);
  EXPECT_EQ(alloc_.largestFreeBlock(), 26u);
  EXPECT_DOUBLE_EQ(alloc_.fragmentation(), 0.0);
  // ...and succeeds afterwards.
  EXPECT_TRUE(alloc_.allocate(19, FitPolicy::kFirstFit, "x").has_value());
}

TEST_F(AllocatorFixture, DefragmentIsIdempotent) {
  (void)alloc_.allocate(5, FitPolicy::kFirstFit, "a");
  const auto b = alloc_.allocate(5, FitPolicy::kFirstFit, "b");
  ASSERT_TRUE(b);
  alloc_.release(b->id);
  (void)alloc_.allocate(5, FitPolicy::kFirstFit, "c");
  (void)alloc_.defragment();
  EXPECT_TRUE(alloc_.defragment().empty());
}

TEST_F(AllocatorFixture, MoveCostIsPartialBitstreamOfWidth) {
  const auto a = alloc_.allocate(4, FitPolicy::kFirstFit, "a");
  ASSERT_TRUE(a);
  Move move;
  move.id = a->id;
  move.fromColumn = a->firstColumn;
  move.toColumn = 20;
  move.width = 4;
  // 4 CLB columns = 88 frames.
  EXPECT_EQ(alloc_.moveCost(move),
            device_.geometry().partialBitstreamBytes(88));
}

TEST(AllocatorSignatureTest, HeterogeneousRangeBlocksIncompatibleMoves) {
  // Manage columns 14..17 of the XC2VP50: CLB, BRAM(15), CLB..., so a
  // module sitting on the BRAM column cannot slide onto a CLB column.
  const Device device = makeXc2vp50();
  ColumnAllocator alloc{device, 14, 4};  // kinds: CLB, BRAM, CLB, CLB
  const auto a = alloc.allocate(1, FitPolicy::kFirstFit, "a");  // col 14
  const auto b = alloc.allocate(1, FitPolicy::kFirstFit, "b");  // col 15 BRAM
  ASSERT_TRUE(a && b);
  alloc.release(a->id);
  // Defrag wants to move b from 15 to 14, but CLB != BRAM: no move.
  EXPECT_TRUE(alloc.defragment().empty());
}

TEST(AllocatorChurnTest, RandomChurnStaysConsistent) {
  const Device device = makeXc2vp50();
  ColumnAllocator alloc{device, 16, 34};
  util::Rng rng{404};
  std::vector<std::uint64_t> ids;
  std::size_t failures = 0;
  for (int step = 0; step < 3000; ++step) {
    if (!ids.empty() && rng.chance(0.45)) {
      const std::size_t pick = rng.below(ids.size());
      alloc.release(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto width = static_cast<std::size_t>(rng.range(2, 9));
      if (const auto got = alloc.allocate(width, FitPolicy::kFirstFit, "m")) {
        ids.push_back(got->id);
      } else {
        ++failures;
        if (rng.chance(0.5)) (void)alloc.defragment();
      }
    }
    // Invariants: accounting is exact, allocations are disjoint.
    std::size_t usedColumns = 0;
    for (const auto& [id, allocation] : alloc.allocations()) {
      usedColumns += allocation.width;
    }
    ASSERT_EQ(usedColumns + alloc.freeColumns(), alloc.managedColumns());
    ASSERT_LE(alloc.largestFreeBlock(), alloc.freeColumns());
  }
  EXPECT_GT(failures, 0u);  // the churn actually stressed the allocator
}

TEST(AllocatorChurnTest, DefragReducesFailureRate) {
  const Device device = makeXc2vp50();
  util::Rng rngA{77};
  util::Rng rngB{77};

  auto churn = [&device](util::Rng& rng, bool defrag) {
    ColumnAllocator alloc{device, 16, 34};
    std::vector<std::uint64_t> ids;
    std::size_t failures = 0;
    for (int step = 0; step < 4000; ++step) {
      if (!ids.empty() && rng.chance(0.48)) {
        const std::size_t pick = rng.below(ids.size());
        alloc.release(ids[pick]);
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const auto width = static_cast<std::size_t>(rng.range(3, 10));
        if (const auto got = alloc.allocate(width, FitPolicy::kFirstFit, "m")) {
          ids.push_back(got->id);
        } else {
          ++failures;
        }
      }
      if (defrag && step % 50 == 0) (void)alloc.defragment();
    }
    return failures;
  };

  const std::size_t without = churn(rngA, false);
  const std::size_t with = churn(rngB, true);
  EXPECT_LT(with, without);
}

TEST(FitPolicyTest, Names) {
  EXPECT_STREQ(toString(FitPolicy::kFirstFit), "first-fit");
  EXPECT_STREQ(toString(FitPolicy::kBestFit), "best-fit");
  EXPECT_STREQ(toString(FitPolicy::kWorstFit), "worst-fit");
}

}  // namespace
}  // namespace prtr::fabric
