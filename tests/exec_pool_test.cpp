// Tests for the exec work-stealing pool: coverage, ordering, exception
// propagation on every execution path, futures, nesting, and concurrent
// sweeps. Workloads stay tiny — the suite must be fast on 1-core runners.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "exec/pool.hpp"
#include "util/error.hpp"

namespace prtr::exec {
namespace {

TEST(ExecPoolTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(hardwareConcurrency(), 1u);
}

TEST(ExecPoolTest, ParallelForCoversEveryIndexOnce) {
  Pool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecPoolTest, ParallelForZeroAndOneCounts) {
  Pool pool{2};
  int calls = 0;
  pool.parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ExecPoolTest, SerialModeRunsOnCallingThread) {
  Pool pool{4};
  const auto caller = std::this_thread::get_id();
  pool.parallelFor(
      16, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      ForOptions{.threads = 1});
}

TEST(ExecPoolTest, ParallelMapPreservesOrder) {
  Pool pool{4};
  std::vector<int> inputs(257);
  std::iota(inputs.begin(), inputs.end(), 0);
  const auto out =
      pool.parallelMap(inputs, [](int x) { return x * 3 + 1; });
  ASSERT_EQ(out.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(out[i], inputs[static_cast<std::size_t>(i)] * 3 + 1);
  }
}

TEST(ExecPoolTest, ParallelMapSupportsNonDefaultConstructibleAndMoveOnly) {
  struct NoDefault {
    explicit NoDefault(std::string v) : value(std::move(v)) {}
    NoDefault(NoDefault&&) = default;
    NoDefault& operator=(NoDefault&&) = default;
    NoDefault(const NoDefault&) = delete;
    NoDefault& operator=(const NoDefault&) = delete;
    std::string value;
  };
  static_assert(!std::is_default_constructible_v<NoDefault>);
  Pool pool{2};
  std::vector<int> inputs{1, 2, 3, 4, 5};
  const auto out = pool.parallelMap(
      inputs, [](int x) { return NoDefault{std::to_string(x * x)}; });
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, std::to_string(inputs[i] * inputs[i]));
  }
}

// The old analysis::parallelFor swallowed nothing on the threaded path but
// took different paths for threads==1 and count<threads; exceptions must
// propagate identically from every one of them.
TEST(ExecPoolTest, ExceptionsPropagateFromEveryPath) {
  Pool pool{4};
  const auto thrower = [](std::size_t i) {
    if (i == 3) throw util::DomainError{"boom"};
  };
  // Pooled path (count >> threads).
  EXPECT_THROW(pool.parallelFor(64, thrower), util::DomainError);
  // Serial path (threads == 1).
  EXPECT_THROW(pool.parallelFor(64, thrower, ForOptions{.threads = 1}),
               util::DomainError);
  // count < threads path.
  EXPECT_THROW(pool.parallelFor(4, thrower, ForOptions{.threads = 8}),
               util::DomainError);
  // The pool stays usable afterwards.
  std::atomic<int> ok{0};
  pool.parallelFor(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ExecPoolTest, SubmitReturnsValueThroughFuture) {
  Pool pool{2};
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
  auto v = pool.submit([] {});
  v.get();  // void future completes
}

TEST(ExecPoolTest, SubmitPropagatesExceptionThroughFuture) {
  Pool pool{2};
  auto f = pool.submit([]() -> int { throw util::DomainError{"future boom"}; });
  EXPECT_THROW(f.get(), util::DomainError);
}

TEST(ExecPoolTest, NestedParallelForDoesNotDeadlock) {
  Pool pool{2};
  std::atomic<int> total{0};
  pool.parallelFor(8, [&](std::size_t) {
    pool.parallelFor(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ExecPoolTest, SingleWorkerPoolCompletesParallelWork) {
  Pool pool{1};
  std::atomic<int> total{0};
  pool.parallelFor(100, [&](std::size_t) { ++total; },
                   ForOptions{.threads = 4});
  EXPECT_EQ(total.load(), 100);
}

TEST(ExecPoolTest, ConcurrentParallelForsFromSubmittedTasks) {
  Pool pool{4};
  std::atomic<int> total{0};
  std::vector<std::future<void>> futures;
  futures.reserve(4);
  for (int j = 0; j < 4; ++j) {
    futures.push_back(pool.submit([&] {
      pool.parallelFor(50, [&](std::size_t) { ++total; });
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 200);
}

TEST(ExecPoolTest, GrainBoundsChunkSize) {
  Pool pool{4};
  std::vector<std::atomic<int>> hits(64);
  pool.parallelFor(64, [&](std::size_t i) { ++hits[i]; },
                   ForOptions{.grain = 16});
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecPoolTest, MetricsSnapshotExposesPoolCounters) {
  Pool pool{3};
  auto f = pool.submit([] { return 1; });
  (void)f.get();
  pool.parallelFor(32, [](std::size_t) {});
  const obs::MetricsSnapshot snap = pool.metricsSnapshot();
  EXPECT_EQ(snap.counters.at("exec.pool.threads"), 3u);
  EXPECT_GE(snap.counters.at("exec.pool.submitted"), 1u);
  EXPECT_GE(snap.counters.at("exec.pool.parallel_fors"), 1u);
  EXPECT_TRUE(snap.counters.count("exec.pool.executed"));
  EXPECT_TRUE(snap.counters.count("exec.pool.steals"));
}

TEST(ExecPoolTest, GlobalPoolIsResizable) {
  Pool::setGlobalThreads(2);
  EXPECT_EQ(Pool::global().threadCount(), 2u);
  std::atomic<int> total{0};
  parallelFor(20, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 20);
  Pool::setGlobalThreads(hardwareConcurrency());
}

}  // namespace
}  // namespace prtr::exec
