// verify request-lane analyzer tests: the label grammar parses back
// exactly (and rejects trailing garbage), and each RQ0xx invariant fires
// on a synthetic lane built to violate it — without touching any other
// rule — while a well-formed lane stays clean.
#include <gtest/gtest.h>

#include "verify/request_rules.hpp"
#include "verify/trace_load.hpp"

namespace prtr {
namespace {

using verify::RequestLabel;

sim::NamedSpan span(std::string lane, std::string label, std::int64_t startPs,
                    std::int64_t endPs) {
  return sim::NamedSpan{std::move(lane), std::move(label), '#',
                        util::Time::picoseconds(startPs),
                        util::Time::picoseconds(endPs)};
}

verify::InstantEvent mark(std::string lane, std::string label,
                          std::int64_t atPs) {
  return verify::InstantEvent{std::move(lane), std::move(label),
                              util::Time::picoseconds(atPs)};
}

analyze::DiagnosticSink check(const verify::TraceProcess& process) {
  analyze::DiagnosticSink sink;
  verify::checkRequestLanes(process, sink);
  return sink;
}

TEST(RequestLabelTest, ParsesEveryKindOfTheGrammar) {
  RequestLabel root = verify::parseRequestLabel("request ok");
  EXPECT_EQ(root.kind, RequestLabel::Kind::kRequest);
  EXPECT_EQ(root.outcome, "ok");

  root = verify::parseRequestLabel("request shed:ratelimit");
  EXPECT_EQ(root.kind, RequestLabel::Kind::kRequest);
  EXPECT_EQ(root.outcome, "shed:ratelimit");

  const RequestLabel attempt = verify::parseRequestLabel("attempt#2:hedge");
  EXPECT_EQ(attempt.kind, RequestLabel::Kind::kAttempt);
  EXPECT_EQ(attempt.attempt, 2);
  EXPECT_TRUE(attempt.hedge);

  const RequestLabel plain = verify::parseRequestLabel("attempt#1");
  EXPECT_EQ(plain.kind, RequestLabel::Kind::kAttempt);
  EXPECT_FALSE(plain.hedge);

  const RequestLabel service = verify::parseRequestLabel("service#1@b3");
  EXPECT_EQ(service.kind, RequestLabel::Kind::kService);
  EXPECT_EQ(service.attempt, 1);
  EXPECT_EQ(service.blade, 3);

  EXPECT_EQ(verify::parseRequestLabel("queue#1").kind,
            RequestLabel::Kind::kQueue);
  EXPECT_EQ(verify::parseRequestLabel("stall#2").kind,
            RequestLabel::Kind::kStall);
  EXPECT_EQ(verify::parseRequestLabel("reload#1").kind,
            RequestLabel::Kind::kReload);
  EXPECT_EQ(verify::parseRequestLabel("execute#4").kind,
            RequestLabel::Kind::kExecute);
}

TEST(RequestLabelTest, RejectsMalformedLabels) {
  EXPECT_EQ(verify::parseRequestLabel("attempt#").kind,
            RequestLabel::Kind::kUnknown);
  EXPECT_EQ(verify::parseRequestLabel("attempt#1:hedgex").kind,
            RequestLabel::Kind::kUnknown);
  EXPECT_EQ(verify::parseRequestLabel("service#1@bx").kind,
            RequestLabel::Kind::kUnknown);
  EXPECT_EQ(verify::parseRequestLabel("service#1@b2tail").kind,
            RequestLabel::Kind::kUnknown);
  EXPECT_EQ(verify::parseRequestLabel("queue#2b").kind,
            RequestLabel::Kind::kUnknown);
  EXPECT_EQ(verify::parseRequestLabel("dispatch#1").kind,
            RequestLabel::Kind::kUnknown);
  EXPECT_EQ(verify::parseRequestLabel("").kind, RequestLabel::Kind::kUnknown);
}

TEST(RequestLabelTest, LaneClassification) {
  EXPECT_TRUE(verify::isRequestLane("rq:00000001deadbeef"));
  EXPECT_FALSE(verify::isRequestLane("blade3"));
  EXPECT_FALSE(verify::isRequestLane("prr0"));
}

TEST(RequestRulesTest, WellFormedLaneIsClean) {
  verify::TraceProcess process;
  process.name = "fleet/cell0";
  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "attempt#1", 10, 90),
      span("rq:a", "queue#1", 10, 20),
      span("rq:a", "service#1@b2", 20, 90),
      span("rq:a", "reload#1", 20, 40),
      span("rq:a", "execute#1", 40, 90),
      span("blade2", "ignored non-request span", 0, 1000),
  };
  const auto sink = check(process);
  EXPECT_TRUE(sink.empty()) << sink.toText();
}

TEST(RequestRulesTest, Rq001ChildEscapingRootSpan) {
  verify::TraceProcess process;
  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "attempt#1", 10, 120),  // ends after the root
  };
  const auto sink = check(process);
  EXPECT_EQ(sink.codes(), std::vector<std::string>{"RQ001"}) << sink.toText();
}

TEST(RequestRulesTest, Rq002MissingOrDuplicateRoot) {
  verify::TraceProcess process;
  process.spans = {span("rq:a", "attempt#1", 0, 10)};
  EXPECT_EQ(check(process).codes(), std::vector<std::string>{"RQ002"});

  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "request failed", 0, 100),
  };
  const auto sink = check(process);
  EXPECT_EQ(sink.codes(), std::vector<std::string>{"RQ002"});
  EXPECT_NE(sink.diagnostics()[0].message.find("2 root spans"),
            std::string::npos);
}

TEST(RequestRulesTest, Rq003ComponentEscapingItsAttempt) {
  verify::TraceProcess process;
  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "attempt#1", 10, 50),
      span("rq:a", "execute#1", 40, 80),  // inside root, outside attempt#1
  };
  EXPECT_EQ(check(process).codes(), std::vector<std::string>{"RQ003"});
}

TEST(RequestRulesTest, Rq004ComponentWithoutItsAttempt) {
  verify::TraceProcess process;
  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "attempt#1", 10, 90),
      span("rq:a", "queue#2", 20, 30),  // attempt#2 never happened
  };
  EXPECT_EQ(check(process).codes(), std::vector<std::string>{"RQ004"});
}

TEST(RequestRulesTest, Rq005HedgeWinnerUniqueness) {
  verify::TraceProcess process;
  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "attempt#1", 10, 90),
      span("rq:a", "attempt#2:hedge", 20, 80),
  };
  process.instants = {mark("rq:a", "hedge:win", 80),
                      mark("rq:a", "hedge:win", 90)};
  EXPECT_EQ(check(process).codes(), std::vector<std::string>{"RQ005"});

  // A win without any hedged attempt is the other face of the same rule.
  process.spans = {
      span("rq:b", "request ok", 0, 100),
      span("rq:b", "attempt#1", 10, 90),
  };
  process.instants = {mark("rq:b", "hedge:win", 90)};
  EXPECT_EQ(check(process).codes(), std::vector<std::string>{"RQ005"});
}

TEST(RequestRulesTest, Rq006ShedRequestWithDispatchActivity) {
  verify::TraceProcess process;
  process.spans = {
      span("rq:a", "request shed:queue", 0, 5),
      span("rq:a", "attempt#1", 0, 5),
  };
  EXPECT_EQ(check(process).codes(), std::vector<std::string>{"RQ006"});
}

TEST(RequestRulesTest, CheckTraceSkipsOverlapRulesOnRequestLanes) {
  // Request lanes nest spans by design (root ⊃ attempt ⊃ service ⊃
  // execute); the full-trace entry point must route them to the RQ rules,
  // not flag the nesting as a TL003 overlap.
  verify::TraceProcess process;
  process.name = "fleet/cell0";
  process.spans = {
      span("rq:a", "request ok", 0, 100),
      span("rq:a", "attempt#1", 10, 90),
      span("rq:a", "service#1@b0", 20, 90),
      span("rq:a", "execute#1", 30, 90),
  };
  analyze::DiagnosticSink sink;
  verify::checkTrace({process}, sink);
  EXPECT_TRUE(sink.empty()) << sink.toText();
}

}  // namespace
}  // namespace prtr
