// Tests for configuration readback, SEU injection, and scrubbing.
#include <gtest/gtest.h>

#include "bitstream/builder.hpp"
#include "config/scrubber.hpp"
#include "fabric/floorplan.hpp"
#include "sim/link.hpp"
#include "util/error.hpp"

namespace prtr::config {
namespace {

class ScrubFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.enableReadback();
    memory_.applyFull(bitstream::parse(builder_.buildFull(1), plan_.device()));
  }

  fabric::Floorplan plan_ = fabric::makeDualPrrLayout();
  bitstream::Builder builder_{plan_.device()};
  sim::Simulator sim_;
  ConfigMemory memory_{plan_.device()};
  sim::SimplexLink link_{sim_, "HT-in",
                         util::DataRate::megabytesPerSecond(1400)};
  IcapController icap_{sim_, memory_, link_};
};

TEST_F(ScrubFixture, ReadbackRequiresOptIn) {
  ConfigMemory fresh{plan_.device()};
  EXPECT_FALSE(fresh.readbackEnabled());
  EXPECT_THROW((void)fresh.frameContent(0), util::DomainError);
  EXPECT_THROW(fresh.injectUpset(0, 0, 1), util::DomainError);
  fresh.enableReadback();
  EXPECT_TRUE(fresh.readbackEnabled());
  EXPECT_NO_THROW((void)fresh.frameContent(0));
}

TEST_F(ScrubFixture, RetainedContentMatchesLoadedStream) {
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  EXPECT_TRUE(verifyRegion(memory_, part).empty());
}

TEST_F(ScrubFixture, InjectedUpsetIsDetectedPrecisely) {
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));

  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());
  memory_.injectUpset(range.first + 17, 100, 0x10);
  const auto corrupted = verifyRegion(memory_, part);
  ASSERT_EQ(corrupted.size(), 1u);
  EXPECT_EQ(corrupted[0], range.first + 17);
  EXPECT_EQ(memory_.upsetsInjected(), 1u);
}

TEST_F(ScrubFixture, DoubleUpsetSameBitSelfCancels) {
  // Two flips of the same bit restore the original content: the scrubber
  // correctly sees nothing (XOR semantics).
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());
  memory_.injectUpset(range.first, 5, 0x08);
  memory_.injectUpset(range.first, 5, 0x08);
  EXPECT_TRUE(verifyRegion(memory_, part).empty());
}

TEST_F(ScrubFixture, ScrubberRepairsCorruption) {
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());

  Scrubber scrubber{sim_, memory_, icap_, plan_.device(), part,
                    util::Time::milliseconds(100)};
  // Inject one upset shortly after the first scrub pass completes.
  auto inject = [&]() -> sim::Process {
    co_await sim_.delay(util::Time::milliseconds(150));
    memory_.injectUpset(range.first + 3, 9, 0x01);
  };
  sim_.spawn(inject());
  sim_.spawn(scrubber.run(3));
  sim_.run();

  const ScrubStats& stats = scrubber.stats();
  EXPECT_EQ(stats.scrubPasses, 3u);
  EXPECT_EQ(stats.upsetsDetected, 1u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_TRUE(verifyRegion(memory_, part).empty());  // repaired
  EXPECT_GT(stats.readbackTime.toMilliseconds(), 3 * 19.0);  // 3 readbacks
  EXPECT_GT(stats.repairTime.toMilliseconds(), 19.0);        // 1 reload
}

TEST_F(ScrubFixture, CleanRegionNeverRepairs) {
  const auto part = builder_.buildModulePartial(plan_.prr(1), 9);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  Scrubber scrubber{sim_, memory_, icap_, plan_.device(), part,
                    util::Time::milliseconds(50)};
  sim_.spawn(scrubber.run(5));
  sim_.run();
  EXPECT_EQ(scrubber.stats().repairs, 0u);
  EXPECT_EQ(scrubber.stats().upsetsDetected, 0u);
  EXPECT_EQ(scrubber.stats().framesChecked, 5u * 380u);
}

TEST_F(ScrubFixture, InjectorPoissonRateIsRoughlyRight) {
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());

  UpsetInjector injector{sim_, memory_, range, util::Time::milliseconds(10),
                         42};
  sim_.spawn(injector.run(util::Time::seconds(2.0)));
  sim_.run();
  // Expect ~200 upsets over 2 s at a 10 ms mean.
  EXPECT_GT(injector.injected(), 150u);
  EXPECT_LT(injector.injected(), 260u);
  EXPECT_EQ(memory_.upsetsInjected(), injector.injected());
}

TEST_F(ScrubFixture, ResetClearsImageAndCounters) {
  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());
  memory_.injectUpset(range.first, 0, 0xFF);
  memory_.reset();
  EXPECT_EQ(memory_.upsetsInjected(), 0u);
  EXPECT_TRUE(memory_.readbackEnabled());
  const auto content = memory_.frameContent(range.first);
  for (const auto byte : content) EXPECT_EQ(byte, 0);
}

TEST_F(ScrubFixture, ApproxExposureIsHalfPeriodPerDetectedUpset) {
  // Without an attached injector the scrubber can only report the
  // blind-window model: half a scrub period per detected upset.
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());

  Scrubber scrubber{sim_, memory_, icap_, plan_.device(), part,
                    util::Time::milliseconds(100)};
  auto inject = [&]() -> sim::Process {
    co_await sim_.delay(util::Time::milliseconds(150));
    memory_.injectUpset(range.first + 3, 9, 0x01);
  };
  sim_.spawn(inject());
  sim_.spawn(scrubber.run(3));
  sim_.run();

  const ScrubStats& stats = scrubber.stats();
  EXPECT_EQ(stats.upsetsDetected, 1u);
  EXPECT_EQ(stats.approxExposure, util::Time::milliseconds(50));
  EXPECT_EQ(stats.observedUpsets, 0u);  // nobody recorded injection times
  EXPECT_EQ(stats.observedExposure, util::Time::zero());
}

TEST_F(ScrubFixture, ObservedExposureReportsActualLatencyAlongsideModel) {
  // With the upset source attached, repairs report the true injection->
  // repair latency next to the half-period approximation, so the blind-
  // window model can be judged instead of trusted.
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  memory_.applyPartial(bitstream::parse(part, plan_.device()));
  const fabric::FrameRange range = plan_.prr(0).frames(plan_.device());

  UpsetInjector injector{sim_, memory_, range, util::Time::milliseconds(20),
                         42};
  Scrubber scrubber{sim_, memory_, icap_, plan_.device(), part,
                    util::Time::milliseconds(50)};
  scrubber.observeInjector(&injector);
  sim_.spawn(injector.run(util::Time::milliseconds(400)));
  sim_.spawn(scrubber.run(10));
  sim_.run();

  const ScrubStats& stats = scrubber.stats();
  ASSERT_GE(stats.upsetsDetected, 1u);
  EXPECT_GE(stats.observedUpsets, 1u);
  EXPECT_LE(stats.observedUpsets, stats.upsetsDetected);
  EXPECT_GT(stats.observedExposure, util::Time::zero());
  EXPECT_GT(stats.approxExposure, util::Time::zero());
  // Actual latency is bounded by the horizon; the sum over observed upsets
  // cannot exceed observedUpsets whole horizons.
  EXPECT_LT(stats.observedExposure,
            util::Time::milliseconds(500) *
                static_cast<double>(stats.observedUpsets));
}

TEST_F(ScrubFixture, ScrubberValidatesArguments) {
  const auto part = builder_.buildModulePartial(plan_.prr(0), 7);
  EXPECT_THROW((Scrubber{sim_, memory_, icap_, plan_.device(), part,
                         util::Time::zero()}),
               util::DomainError);
  const auto full = builder_.buildFull(1);
  EXPECT_THROW((Scrubber{sim_, memory_, icap_, plan_.device(), full,
                         util::Time::milliseconds(1)}),
               util::DomainError);
}

}  // namespace
}  // namespace prtr::config
