// Stress/property tests for the discrete-event kernel: randomized
// schedules must fire in exact time order, channels must conserve tokens
// under arbitrary producer/consumer topologies, and semaphores must stay
// fair under churn.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace prtr::sim {
namespace {

using util::Time;

TEST(SimStressTest, RandomDelaysFireInNondecreasingTimeOrder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim;
    util::Rng rng{seed};
    std::vector<std::int64_t> fireTimes;
    auto proc = [&](Simulator& s, Time delay) -> Process {
      co_await s.delay(delay);
      fireTimes.push_back(s.now().ps());
    };
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      sim.spawn(proc(sim, Time::picoseconds(rng.range(0, 1'000'000))));
    }
    sim.run();
    ASSERT_EQ(fireTimes.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < fireTimes.size(); ++i) {
      ASSERT_GE(fireTimes[i], fireTimes[i - 1]) << "seed " << seed;
    }
  }
}

TEST(SimStressTest, NestedChildrenCompose) {
  // A chain of nested child awaits 64 deep: total time is the sum.
  Simulator sim;
  struct Chain {
    static Process step(Simulator& s, int depth) {
      co_await s.delay(Time::nanoseconds(1));
      if (depth > 0) co_await step(s, depth - 1);
    }
  };
  sim.spawn(Chain::step(sim, 63));
  sim.run();
  EXPECT_EQ(sim.now(), Time::nanoseconds(64));
}

TEST(SimStressTest, ChannelConservesTokensManyProducersConsumers) {
  for (const std::size_t capacity : {1u, 3u, 16u}) {
    Simulator sim;
    auto channel = std::make_unique<Channel<std::uint64_t>>(sim, capacity);
    util::Rng rng{capacity};
    const int producers = 4;
    const int consumers = 3;
    const int perProducer = 120;
    std::uint64_t produced = 0;
    std::uint64_t consumed = 0;

    auto producer = [&](Simulator& s, std::uint64_t base) -> Process {
      for (int i = 0; i < perProducer; ++i) {
        co_await s.delay(Time::picoseconds(rng.range(1, 500)));
        co_await channel->put(base + static_cast<std::uint64_t>(i));
        produced += base + static_cast<std::uint64_t>(i);
      }
    };
    const int total = producers * perProducer;
    // Consumers split the items: 160 + 160 + 160.
    auto consumer = [&](Simulator& s, int count) -> Process {
      for (int i = 0; i < count; ++i) {
        const std::uint64_t v = co_await channel->get();
        consumed += v;
        co_await s.delay(Time::picoseconds(rng.range(1, 700)));
      }
    };
    for (int p = 0; p < producers; ++p) {
      sim.spawn(producer(sim, static_cast<std::uint64_t>(p) * 1'000'000));
    }
    for (int c = 0; c < consumers; ++c) {
      sim.spawn(consumer(sim, total / consumers));
    }
    sim.run();
    EXPECT_EQ(consumed, produced) << "capacity " << capacity;
    EXPECT_TRUE(channel->empty());
    EXPECT_EQ(channel->blockedProducers(), 0u);
    EXPECT_EQ(channel->blockedConsumers(), 0u);
  }
}

TEST(SimStressTest, SemaphoreNeverOversubscribed) {
  Simulator sim;
  Semaphore sem{sim, 3};
  util::Rng rng{99};
  int inSection = 0;
  int peak = 0;
  auto worker = [&](Simulator& s) -> Process {
    co_await s.delay(Time::picoseconds(rng.range(0, 2'000)));
    co_await sem.acquire();
    ++inSection;
    peak = std::max(peak, inSection);
    co_await s.delay(Time::picoseconds(rng.range(1, 1'000)));
    --inSection;
    sem.release();
  };
  for (int i = 0; i < 200; ++i) sim.spawn(worker(sim));
  sim.run();
  EXPECT_EQ(inSection, 0);
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(sem.available(), 3);
}

TEST(SimStressTest, WaitGroupUnderChurn) {
  Simulator sim;
  WaitGroup wg{sim};
  util::Rng rng{7};
  int completed = 0;
  auto worker = [&](Simulator& s) -> Process {
    co_await s.delay(Time::picoseconds(rng.range(1, 10'000)));
    ++completed;
    wg.done();
  };
  bool joined = false;
  auto joiner = [&](Simulator&) -> Process {
    co_await wg.wait();
    joined = true;
    EXPECT_EQ(completed, 300);
  };
  wg.add(300);
  for (int i = 0; i < 300; ++i) sim.spawn(worker(sim));
  sim.spawn(joiner(sim));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(SimStressTest, DeterministicEventCountsAcrossRuns) {
  auto run = [] {
    Simulator sim;
    util::Rng rng{321};
    auto proc = [&](Simulator& s, Time d) -> Process { co_await s.delay(d); };
    for (int i = 0; i < 1000; ++i) {
      sim.spawn(proc(sim, Time::picoseconds(rng.range(0, 1'000'000))));
    }
    sim.run();
    return std::make_pair(sim.now().ps(), sim.eventsProcessed());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace prtr::sim
