// Tests for the ZRL codec and the multi-frame-write (MFW) planner.
#include <gtest/gtest.h>

#include "bitstream/builder.hpp"
#include "bitstream/compress.hpp"
#include "fabric/floorplan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::bitstream {
namespace {

std::vector<std::uint8_t> randomData(std::size_t n, double zeroFraction,
                                     std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) {
    b = rng.chance(zeroFraction) ? 0 : static_cast<std::uint8_t>(rng() | 1);
  }
  return data;
}

TEST(ZrlTest, EmptyInput) {
  EXPECT_TRUE(zrlCompress({}).empty());
  EXPECT_TRUE(zrlDecompress({}).empty());
}

TEST(ZrlTest, AllZerosCompressHard) {
  const std::vector<std::uint8_t> zeros(10'000, 0);
  const auto compressed = zrlCompress(zeros);
  EXPECT_LT(compressed.size(), 8u);  // one long-run token chain
  EXPECT_EQ(zrlDecompress(compressed), zeros);
}

TEST(ZrlTest, IncompressibleDataExpandsOnlySlightly) {
  const auto data = randomData(10'000, 0.0, 5);
  const auto compressed = zrlCompress(data);
  // Literal framing adds 2 bytes per 256: <1% overhead.
  EXPECT_LT(compressed.size(), data.size() + data.size() / 64 + 8);
  EXPECT_EQ(zrlDecompress(compressed), data);
}

TEST(ZrlTest, RoundTripPropertyAcrossDensities) {
  for (const double zeroFraction : {0.1, 0.5, 0.75, 0.95}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto data = randomData(4'096, zeroFraction, seed);
      const auto back = zrlDecompress(zrlCompress(data));
      ASSERT_EQ(back, data) << "zeroFraction=" << zeroFraction
                            << " seed=" << seed;
    }
  }
}

TEST(ZrlTest, RatioImprovesWithSparsity) {
  const double dense = zrlRatio(randomData(8'192, 0.25, 7));
  const double sparse = zrlRatio(randomData(8'192, 0.85, 7));
  EXPECT_LT(sparse, dense);
  EXPECT_LT(sparse, 0.6);
}

TEST(ZrlTest, RunBoundaries) {
  // Runs straddling the short/long encoding boundary must round-trip.
  for (const std::size_t runLength : {1u, 254u, 255u, 256u, 257u, 70'000u}) {
    std::vector<std::uint8_t> data(runLength, 0);
    data.push_back(0x42);
    EXPECT_EQ(zrlDecompress(zrlCompress(data)), data) << runLength;
  }
}

TEST(ZrlTest, MalformedInputRejected) {
  EXPECT_THROW(zrlDecompress(std::vector<std::uint8_t>{0x00}),
               util::BitstreamError);  // truncated run
  EXPECT_THROW(zrlDecompress(std::vector<std::uint8_t>{0x01, 0x05, 0x11}),
               util::BitstreamError);  // literal overruns
  EXPECT_THROW(zrlDecompress(std::vector<std::uint8_t>{0x7F}),
               util::BitstreamError);  // unknown token
  EXPECT_THROW(zrlDecompress(std::vector<std::uint8_t>{0x00, 0xFF, 0x01}),
               util::BitstreamError);  // truncated long run
}

TEST(ZrlTest, PartialBitstreamsCompressWell) {
  // Sparse frame payloads (~25% content) plus all-zero unoccupied frames:
  // a half-occupied module stream should shrink by more than 2x.
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream stream = builder.buildModulePartial(plan.prr(0), 7, 0.5);
  const double ratio = zrlRatio(stream.bytes());
  EXPECT_LT(ratio, 0.5);
  EXPECT_EQ(zrlDecompress(zrlCompress(stream.bytes())), stream.bytes());
}

TEST(MfwTest, DedupCountsUnoccupiedFramesOnce) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const Builder builder{plan.device()};
  // 30% occupancy: ~70% of frames are identical (all-zero) fill.
  const Bitstream stream = builder.buildModulePartial(plan.prr(0), 7, 0.3);
  const MfwPlan plan30 = planMfw(stream, plan.device());
  EXPECT_EQ(plan30.totalFrames, 380u);
  // 114 occupied distinct frames + 1 shared zero frame.
  EXPECT_EQ(plan30.uniqueFrames, 115u);
  EXPECT_LT(plan30.wireBytes.count(), plan30.rawBytes.count());
  EXPECT_NEAR(plan30.frameDedupRatio(), 115.0 / 380.0, 1e-12);
}

TEST(MfwTest, FullyOccupiedModuleGainsLittle) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const Builder builder{plan.device()};
  const Bitstream stream = builder.buildModulePartial(plan.prr(0), 7, 1.0);
  const MfwPlan mfw = planMfw(stream, plan.device());
  EXPECT_EQ(mfw.uniqueFrames, mfw.totalFrames);  // every frame distinct
}

TEST(MfwTest, RejectsFullStreams) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const Builder builder{plan.device()};
  EXPECT_THROW((void)planMfw(builder.buildFull(1), plan.device()),
               util::BitstreamError);
}

TEST(MfwTest, DrainTimeScalesWithUniqueFrames) {
  MfwPlan plan;
  plan.totalFrames = 380;
  plan.uniqueFrames = 115;
  const util::Time perFrame = util::Time::microseconds(52);
  const util::Time perAddress = util::Time::nanoseconds(200);
  const util::Time t = mfwDrainTime(plan, perFrame, perAddress);
  EXPECT_EQ(t, perFrame * 115 + perAddress * 380);
  // Versus writing everything: ~3.3x faster.
  const util::Time raw = perFrame * 380 + perAddress * 380;
  EXPECT_GT(raw.toSeconds() / t.toSeconds(), 3.0);
}

}  // namespace
}  // namespace prtr::bitstream
