// fleet calibration edge-case tests: degenerate payloads and registries
// are rejected up front with a diagnosable message instead of dividing by
// zero downstream, empty profiles report zero (never NaN) means, the
// FL017 profile check flags zero-cost calibrations, and runFleet refuses
// a profile that does not match its function registry.
#include <gtest/gtest.h>

#include <cmath>

#include "analyze/checks_fleet.hpp"
#include "fleet/fleet.hpp"
#include "tasks/hwfunction.hpp"
#include "util/error.hpp"

namespace prtr {
namespace {

const tasks::FunctionRegistry& paperRegistry() {
  static const tasks::FunctionRegistry registry = tasks::makePaperFunctions();
  return registry;
}

TEST(FleetCalibrateEdgeTest, RejectsDegeneratePayloads) {
  // A zero-byte payload has no half-payload point to fit the slope; one
  // byte degenerates the same way after the halving.
  EXPECT_THROW(fleet::calibrateBladeProfile(paperRegistry(),
                                            runtime::ScenarioOptions{},
                                            util::Bytes{0}),
               util::DomainError);
  EXPECT_THROW(fleet::calibrateBladeProfile(paperRegistry(),
                                            runtime::ScenarioOptions{},
                                            util::Bytes{1}),
               util::DomainError);
}

TEST(FleetCalibrateEdgeTest, RejectsEmptyFunctionRegistry) {
  // The registry constructor already refuses an empty library, so an
  // unknown-function profile can never reach calibration through the
  // public API; the calibrate-level guard is defense in depth.
  try {
    const tasks::FunctionRegistry empty{std::vector<tasks::HwFunction>{}};
    FAIL() << "an empty registry must be rejected";
  } catch (const util::DomainError& e) {
    EXPECT_NE(std::string{e.what()}.find("empty"), std::string::npos);
  }
}

TEST(FleetCalibrateEdgeTest, EmptyProfileMeansAreZeroNotNaN) {
  const fleet::BladeProfile profile;
  EXPECT_EQ(profile.meanExecPs(1024), 0);
  EXPECT_EQ(profile.meanConfigPs(), 0);
  EXPECT_FALSE(std::isnan(static_cast<double>(profile.meanExecPs(0))));
}

TEST(FleetCalibrateEdgeTest, CheckBladeProfileFlagsZeroCostTasks) {
  fleet::BladeProfile degenerate;
  fleet::TaskProfile freeExec;  // all-zero: execution costs nothing
  freeExec.configPs = 1'000;
  freeExec.execFixedPs = 0;
  freeExec.execPsPerByte = 0.0;
  fleet::TaskProfile freeConfig;
  freeConfig.configPs = 0;  // persona reload costs nothing
  freeConfig.execFixedPs = 5'000;
  freeConfig.execPsPerByte = 1.5;
  degenerate.tasks = {freeExec, freeConfig};

  analyze::DiagnosticSink sink;
  analyze::checkBladeProfile(degenerate, sink);
  ASSERT_EQ(sink.diagnostics().size(), 2u) << sink.toText();
  EXPECT_TRUE(sink.has("FL017"));
  EXPECT_NE(sink.diagnostics()[0].message.find("zero execution cost"),
            std::string::npos);
  EXPECT_NE(sink.diagnostics()[1].message.find("zero reconfiguration cost"),
            std::string::npos);
  EXPECT_FALSE(sink.hasErrors()) << "FL017 is a warning, not an error";
}

TEST(FleetCalibrateEdgeTest, RealCalibrationPassesTheProfileCheck) {
  analyze::DiagnosticSink sink;
  const fleet::BladeProfile profile = fleet::calibrateBladeProfile(
      paperRegistry(), runtime::ScenarioOptions{}, util::Bytes::kibi(4), sink);
  EXPECT_TRUE(sink.empty()) << sink.toText();
  ASSERT_EQ(profile.tasks.size(), paperRegistry().size());
  for (const fleet::TaskProfile& t : profile.tasks) {
    EXPECT_GT(t.configPs, 0);
    EXPECT_GT(t.execPs(4 * 1024), 0);
  }
}

TEST(FleetCalibrateEdgeTest, RunFleetRejectsMismatchedProfile) {
  // A profile for an unknown hardware-function set (wrong cardinality)
  // must be refused before any request is simulated.
  fleet::BladeProfile wrong;
  wrong.tasks.resize(paperRegistry().size() + 1);
  fleet::FleetOptions options;
  options.requests = 10;
  try {
    (void)runFleet(paperRegistry(), wrong, options);
    FAIL() << "a mismatched profile must be rejected";
  } catch (const util::DomainError& e) {
    EXPECT_NE(std::string{e.what()}.find("does not match"), std::string::npos);
  }
  const fleet::BladeProfile empty;
  EXPECT_THROW((void)runFleet(paperRegistry(), empty, options),
               util::DomainError);
}

}  // namespace
}  // namespace prtr
