// Tests for the fabric model: resources, geometry, devices, regions,
// floorplans — including the Table 2 size calibration.
#include <gtest/gtest.h>

#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "fabric/geometry.hpp"
#include "fabric/region.hpp"
#include "fabric/resources.hpp"
#include "util/error.hpp"

namespace prtr::fabric {
namespace {

TEST(ResourceVecTest, ArithmeticAndFits) {
  const ResourceVec a{100, 200, 4, 2, 0};
  const ResourceVec b{50, 50, 1, 1, 0};
  EXPECT_EQ((a + b).luts, 150u);
  EXPECT_EQ((a - b).ffs, 150u);
  EXPECT_TRUE(a.fits(b));
  EXPECT_FALSE(b.fits(a));
  EXPECT_TRUE(ResourceVec{}.isZero());
}

TEST(ResourceVecTest, SubtractionSaturates) {
  const ResourceVec a{10, 10, 0, 0, 0};
  const ResourceVec b{20, 5, 1, 0, 0};
  const ResourceVec d = a - b;
  EXPECT_EQ(d.luts, 0u);
  EXPECT_EQ(d.ffs, 5u);
  EXPECT_EQ(d.bram18, 0u);
}

TEST(ResourceVecTest, UtilizationIsWorstComponent) {
  const ResourceVec cap{1000, 1000, 10, 10, 0};
  EXPECT_DOUBLE_EQ(cap.utilization({100, 500, 1, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(cap.utilization({}), 0.0);
  // Demand on a zero-capacity component is flagged as infeasible.
  EXPECT_GT(cap.utilization({0, 0, 0, 0, 1}), 1.0);
}

TEST(GeometryTest, FrameIndexingIsContiguous) {
  const Device dev = makeXc2vp50();
  const auto& g = dev.geometry();
  std::uint32_t acc = 0;
  for (std::size_t c = 0; c < g.columnCount(); ++c) {
    const FrameRange r = g.columnFrames(c);
    EXPECT_EQ(r.first, acc);
    acc += r.count;
  }
  EXPECT_EQ(acc, g.totalFrames());
}

TEST(GeometryTest, FrameRangePredicates) {
  const FrameRange r{10, 5};
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(14));
  EXPECT_FALSE(r.contains(15));
  EXPECT_TRUE(r.overlaps(FrameRange{14, 3}));
  EXPECT_FALSE(r.overlaps(FrameRange{15, 3}));
}

TEST(Xc2vp50Test, CalibratedFullBitstreamSizeMatchesPaper) {
  const Device dev = makeXc2vp50();
  // Table 2: full configuration bitstream = 2,381,764 bytes, exactly.
  EXPECT_EQ(dev.geometry().fullBitstreamBytes().count(), 2'381'764u);
  EXPECT_EQ(dev.geometry().totalFrames(), 2246u);
}

TEST(Xc2vp50Test, UsableResourcesMatchDatasheet) {
  const Device dev = makeXc2vp50();
  const ResourceVec usable = dev.usableResources();
  EXPECT_EQ(usable.luts, 47'232u);
  EXPECT_EQ(usable.ffs, 47'232u);
  EXPECT_EQ(usable.bram18, 232u);
  EXPECT_EQ(usable.mult18, 232u);
  EXPECT_EQ(usable.ppc, 2u);
}

TEST(DeviceCatalogTest, LookupByName) {
  EXPECT_EQ(makeDevice("xc2vp50").name(), "xc2vp50");
  EXPECT_EQ(makeDevice("xc2vp30").name(), "xc2vp30");
  EXPECT_EQ(makeDevice("xc4vlx60").name(), "xc4vlx60");
  EXPECT_THROW(makeDevice("xc7z020"), util::DomainError);
}

TEST(DeviceCatalogTest, EveryCatalogEntryBuilds) {
  for (const std::string& name : deviceCatalog()) {
    const Device dev = makeDevice(name);
    EXPECT_EQ(dev.name(), name);
    EXPECT_GT(dev.geometry().totalFrames(), 0u);
    EXPECT_GT(dev.usableResources().luts, 0u);
    EXPECT_GT(dev.geometry().fullBitstreamBytes().count(),
              dev.geometry().totalFrames());  // frames carry payload
  }
}

TEST(DeviceCatalogTest, V2ProFamilySizesAreMonotone) {
  const std::uint64_t sizes[] = {
      makeXc2vp20().geometry().fullBitstreamBytes().count(),
      makeXc2vp30().geometry().fullBitstreamBytes().count(),
      makeXc2vp50().geometry().fullBitstreamBytes().count(),
      makeXc2vp70().geometry().fullBitstreamBytes().count(),
      makeXc2vp100().geometry().fullBitstreamBytes().count()};
  for (std::size_t i = 1; i < std::size(sizes); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]) << "index " << i;
  }
  const std::uint32_t luts[] = {
      makeXc2vp20().usableResources().luts, makeXc2vp30().usableResources().luts,
      makeXc2vp50().usableResources().luts, makeXc2vp70().usableResources().luts,
      makeXc2vp100().usableResources().luts};
  for (std::size_t i = 1; i < std::size(luts); ++i) {
    EXPECT_GT(luts[i], luts[i - 1]) << "index " << i;
  }
}

TEST(DeviceCatalogTest, NewerFamiliesHaveNoPpcHoles) {
  EXPECT_EQ(makeXc4vlx100().usableResources().ppc, 0u);
  EXPECT_EQ(makeXc5vlx110().usableResources().ppc, 0u);
  EXPECT_EQ(makeXc2vp100().usableResources().ppc, 2u);
}

TEST(DeviceCatalogTest, Virtex4HasNoHardCores) {
  const Device dev = makeXc4vlx60();
  EXPECT_EQ(dev.usableResources().ppc, 0u);
}

TEST(RegionTest, SinglePrrMatchesPaperSize) {
  const Floorplan plan = makeSinglePrrLayout();
  ASSERT_EQ(plan.prrCount(), 1u);
  const Region& prr = plan.prr(0);
  EXPECT_EQ(prr.frames(plan.device()).count, 834u);
  // Paper: 887,784 B; frame-quantized flow gives 887,444 B (-0.04%).
  EXPECT_NEAR(static_cast<double>(prr.partialBitstreamBytes(plan.device()).count()),
              887'784.0, 887'784.0 * 0.001);
}

TEST(RegionTest, DualPrrMatchesPaperSize) {
  const Floorplan plan = makeDualPrrLayout();
  ASSERT_EQ(plan.prrCount(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(plan.prr(i).frames(plan.device()).count, 380u);
    // Paper: 404,168 B; ours 404,388 B (+0.05%).
    EXPECT_NEAR(
        static_cast<double>(plan.prr(i).partialBitstreamBytes(plan.device()).count()),
        404'168.0, 404'168.0 * 0.001);
  }
}

TEST(RegionTest, DualPrrsDoNotOverlapAndFitFilters) {
  const Floorplan plan = makeDualPrrLayout();
  EXPECT_FALSE(plan.prr(0).overlaps(plan.prr(1)));
  // Each PRR must fit the largest paper filter (median: 3141 LUT, 3270 FF).
  const ResourceVec need{3141, 3270, 0, 0, 0};
  EXPECT_TRUE(plan.prr(0).resources(plan.device()).fits(need));
  EXPECT_TRUE(plan.prr(1).resources(plan.device()).fits(need));
}

TEST(FloorplanTest, StaticRegionAccounting) {
  const Floorplan plan = makeDualPrrLayout();
  const ResourceVec staticRes = plan.staticResources();
  // Static fabric must fit the RT core + FIFOs + PR controller
  // (Table 1 static rows).
  const ResourceVec staticNeed{3372 + 418, 5503 + 432, 25 + 8, 0, 0};
  EXPECT_TRUE(staticRes.fits(staticNeed));
  EXPECT_EQ(plan.staticFrames() +
                plan.prr(0).frames(plan.device()).count +
                plan.prr(1).frames(plan.device()).count,
            plan.device().geometry().totalFrames());
}

TEST(FloorplanTest, FrameInPrrQueries) {
  const Floorplan plan = makeDualPrrLayout();
  const FrameRange r0 = plan.prr(0).frames(plan.device());
  EXPECT_TRUE(plan.frameInPrr(0, r0.first));
  EXPECT_FALSE(plan.frameInPrr(1, r0.first));
  EXPECT_FALSE(plan.frameInPrr(0, r0.end()));
}

TEST(FloorplanTest, ColumnMapShowsBothRegions) {
  const Floorplan plan = makeDualPrrLayout();
  const std::string map = plan.columnMap();
  EXPECT_EQ(map.size(), plan.device().geometry().columnCount());
  EXPECT_NE(map.find('A'), std::string::npos);
  EXPECT_NE(map.find('B'), std::string::npos);
  EXPECT_NE(map.find('.'), std::string::npos);
}

TEST(FloorplanTest, RejectsOverlappingPrrs) {
  Device dev = makeXc2vp50();
  std::vector<Region> prrs;
  prrs.emplace_back("A", RegionRole::kPrr, 2, 10);
  prrs.emplace_back("B", RegionRole::kPrr, 8, 10);
  EXPECT_THROW((Floorplan{std::move(dev), std::move(prrs), {}}),
               util::PlacementError);
}

TEST(FloorplanTest, RejectsPrrOverHardCores) {
  Device dev = makeXc2vp50();
  // Columns 65/66 are the PPC and GCLK columns.
  std::vector<Region> prrs;
  prrs.emplace_back("bad", RegionRole::kPrr, 64, 4);
  EXPECT_THROW((Floorplan{std::move(dev), std::move(prrs), {}}),
               util::PlacementError);
}

TEST(FloorplanTest, RejectsPrrBeyondDevice) {
  Device dev = makeXc2vp50();
  std::vector<Region> prrs;
  prrs.emplace_back("off", RegionRole::kPrr, 80, 10);
  EXPECT_THROW((Floorplan{std::move(dev), std::move(prrs), {}}),
               util::PlacementError);
}

TEST(FloorplanTest, RejectsMisplacedBusMacro) {
  Device dev = makeXc2vp50();
  std::vector<Region> prrs;
  prrs.emplace_back("PRR0", RegionRole::kPrr, 0, 16);
  std::vector<BusMacro> macros{
      BusMacro{"PRR0", BusMacro::Direction::kLeftToRight, 8, 5}};
  EXPECT_THROW((Floorplan{std::move(dev), std::move(prrs), std::move(macros)}),
               util::PlacementError);
}

TEST(BusMacroTest, ResourceCostIsLutPairs) {
  const BusMacro macro{"PRR0", BusMacro::Direction::kRightToLeft, 8, 16};
  EXPECT_EQ(macro.resourceCost().luts, 16u);
  EXPECT_EQ(macro.resourceCost().ffs, 0u);
}

TEST(PartialBitstreamBytesTest, FormulaMatchesEncoding) {
  const Device dev = makeXc2vp50();
  const auto& enc = dev.geometry().encoding();
  const util::Bytes one = dev.geometry().partialBitstreamBytes(1);
  EXPECT_EQ(one.count(),
            enc.partialOverheadBytes + enc.frameBytes + enc.frameAddressBytes);
}

}  // namespace
}  // namespace prtr::fabric
