// Tests for the multitasking scheduler: concurrent execution across PRRs,
// arrival handling, hit accounting, and utilization bounds.
#include <gtest/gtest.h>

#include "model/calibration.hpp"
#include "runtime/multitask.hpp"
#include "util/error.hpp"

namespace prtr::runtime {
namespace {

AppSpec makeApp(const std::string& name, const tasks::FunctionRegistry& /*registry*/,
                std::size_t calls, util::Bytes bytes, util::Time interArrival,
                std::size_t functionIndex) {
  AppSpec app;
  app.name = name;
  app.workload.name = name;
  for (std::size_t i = 0; i < calls; ++i) {
    app.workload.calls.push_back(tasks::TaskCall{functionIndex, bytes});
  }
  app.meanInterArrival = interArrival;
  return app;
}

TEST(MultitaskTest, RequiresAtLeastOneApp) {
  const auto registry = tasks::makePaperFunctions();
  EXPECT_THROW((void)runMultitask(registry, {}, MultitaskOptions{}),
               util::DomainError);
}

TEST(MultitaskTest, CompletesEveryCallAndAggregates) {
  const auto registry = tasks::makePaperFunctions();
  std::vector<AppSpec> apps{
      makeApp("a", registry, 10, util::Bytes{2'000'000},
              util::Time::milliseconds(5), 0),
      makeApp("b", registry, 15, util::Bytes{1'000'000},
              util::Time::milliseconds(3), 1),
  };
  const MultitaskReport report = runMultitask(registry, apps, {});
  EXPECT_EQ(report.calls, 25u);
  EXPECT_EQ(report.apps[0].completed, 10u);
  EXPECT_EQ(report.apps[1].completed, 15u);
  EXPECT_EQ(report.hits + report.configurations, report.calls);
  EXPECT_GT(report.makespan.toSeconds(), 0.0);
  const std::string text = report.toString();
  EXPECT_NE(text.find("latency"), std::string::npos);
}

TEST(MultitaskTest, TwoAppsOverlapOnTwoPrrs) {
  // Two single-module apps saturating the blade: with two PRRs the work
  // overlaps, so the makespan is clearly below the serial sum.
  const auto registry = tasks::makePaperFunctions();
  const util::Bytes bytes{50'000'000};  // ~0.32 s per task
  std::vector<AppSpec> apps{
      makeApp("a", registry, 8, bytes, util::Time::microseconds(1), 0),
      makeApp("b", registry, 8, bytes, util::Time::microseconds(1), 1),
  };
  const MultitaskReport report = runMultitask(registry, apps, {});
  // Each app needs one configuration; afterwards its module stays put.
  EXPECT_EQ(report.configurations, 2u);
  EXPECT_EQ(report.hits, 14u);

  // Serial execution would take roughly 16 tasks end to end; concurrent
  // execution on 2 PRRs with shared links should be much faster. The
  // compute phases overlap; the shared input link serializes transfers.
  sim::Simulator probe;
  const xd1::Node node{probe};
  const util::Time serialGuess =
      model::taskTime(node, registry.at(0), bytes) * 16;
  EXPECT_LT(report.makespan.toSeconds(),
            serialGuess.toSeconds() * 0.75 + 1.678 + 0.05);
  EXPECT_GT(report.prrUtilization(2), 0.5);
}

TEST(MultitaskTest, SameModuleAppsShareOneRegionSequentially) {
  // Both apps call the *same* module back-to-back: the scheduler may clone
  // it into the second PRR (a configuration) or serialize on one region;
  // either way every later call is a hit or a clone, never a thrash.
  const auto registry = tasks::makePaperFunctions();
  std::vector<AppSpec> apps{
      makeApp("a", registry, 10, util::Bytes{10'000'000},
              util::Time::microseconds(10), 0),
      makeApp("b", registry, 10, util::Bytes{10'000'000},
              util::Time::microseconds(10), 0),
  };
  const MultitaskReport report = runMultitask(registry, apps, {});
  EXPECT_LE(report.configurations, 2u);
  EXPECT_GE(report.hits, 18u);
}

TEST(MultitaskTest, QuadLayoutReducesQueueingUnderLoad) {
  // Four apps with distinct modules: on the dual layout they contend for
  // two regions; the quad layout gives everyone a home.
  const auto registry = tasks::makeExtendedFunctions();
  auto appsFor = [&](const char* suffix) {
    std::vector<AppSpec> apps;
    for (std::size_t a = 0; a < 4; ++a) {
      apps.push_back(makeApp("app" + std::to_string(a) + suffix, registry, 12,
                             util::Bytes{20'000'000},
                             util::Time::milliseconds(20), a));
    }
    return apps;
  };

  MultitaskOptions dual;
  dual.layout = xd1::Layout::kDualPrr;
  const MultitaskReport dualReport = runMultitask(registry, appsFor("d"), dual);

  MultitaskOptions quad;
  quad.layout = xd1::Layout::kQuadPrr;
  const MultitaskReport quadReport = runMultitask(registry, appsFor("q"), quad);

  auto meanQueueing = [](const MultitaskReport& r) {
    double total = 0.0;
    for (const AppStats& app : r.apps) total += app.queueingSeconds.mean();
    return total / static_cast<double>(r.apps.size());
  };
  EXPECT_LT(meanQueueing(quadReport), meanQueueing(dualReport));
  EXPECT_LT(quadReport.configurations, dualReport.configurations);
  EXPECT_LE(quadReport.makespan.toSeconds(), dualReport.makespan.toSeconds());
}

TEST(MultitaskTest, UtilizationWithinBounds) {
  const auto registry = tasks::makePaperFunctions();
  std::vector<AppSpec> apps{
      makeApp("a", registry, 20, util::Bytes{5'000'000},
              util::Time::milliseconds(1), 0),
  };
  const MultitaskReport report = runMultitask(registry, apps, {});
  const double util2 = report.prrUtilization(2);
  EXPECT_GT(util2, 0.0);
  EXPECT_LE(util2, 1.0);
}

TEST(MultitaskTest, DeterministicForSeed) {
  const auto registry = tasks::makePaperFunctions();
  std::vector<AppSpec> apps{
      makeApp("a", registry, 10, util::Bytes{3'000'000},
              util::Time::milliseconds(2), 0),
      makeApp("b", registry, 10, util::Bytes{3'000'000},
              util::Time::milliseconds(2), 1),
  };
  MultitaskOptions options;
  options.seed = 99;
  const MultitaskReport r1 = runMultitask(registry, apps, options);
  const MultitaskReport r2 = runMultitask(registry, apps, options);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.configurations, r2.configurations);
  EXPECT_DOUBLE_EQ(r1.apps[0].latencySeconds.mean(),
                   r2.apps[0].latencySeconds.mean());
}

}  // namespace
}  // namespace prtr::runtime
