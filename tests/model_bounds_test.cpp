// Tests for the bound analysis (Figure 5 structure, section-5 claims) with
// parameterized property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "model/bounds.hpp"
#include "model/model.hpp"
#include "util/error.hpp"

namespace prtr::model {
namespace {

TEST(RegimeTest, Classification) {
  EXPECT_EQ(classifyRegime(0.05, 0.1), Regime::kConfigDominant);
  EXPECT_EQ(classifyRegime(0.5, 0.1), Regime::kMidRange);
  EXPECT_EQ(classifyRegime(1.0, 0.1), Regime::kTaskDominant);
  EXPECT_EQ(classifyRegime(10.0, 0.1), Regime::kTaskDominant);
  EXPECT_THROW((void)classifyRegime(-1.0, 0.1), util::DomainError);
}

TEST(UpperBoundTest, NoAsymptoteExceedsIt) {
  for (double xTask = 0.001; xTask < 100.0; xTask *= 1.9) {
    const double bound = upperBoundForTask(xTask);
    for (const double xPrtr : {0.012, 0.17, 0.37, 0.9}) {
      for (double h = 0.0; h <= 1.0; h += 0.25) {
        EXPECT_LE(idealAsymptote(xTask, xPrtr, h), bound + 1e-9)
            << "xTask=" << xTask << " xPrtr=" << xPrtr << " h=" << h;
      }
    }
  }
}

TEST(UpperBoundTest, BoundIsTightAtFullHits) {
  // H = 1 attains the bound exactly.
  for (double xTask = 0.01; xTask < 50.0; xTask *= 2.3) {
    EXPECT_NEAR(idealAsymptote(xTask, 0.1, 1.0), upperBoundForTask(xTask),
                1e-12);
  }
}

TEST(PeakTest, ZeroHitPeakAtMatchPoint) {
  const Peak peak = peakSpeedup(0.0, 0.17);
  EXPECT_DOUBLE_EQ(peak.xTask, 0.17);
  EXPECT_NEAR(peak.speedup, (1.0 + 0.17) / 0.17, 1e-12);
  EXPECT_FALSE(peak.unbounded);
}

TEST(PeakTest, MeasuredDualPrrPeak) {
  const double xPrtr = 19.77 / 1678.04;
  const Peak peak = peakSpeedup(0.0, xPrtr);
  EXPECT_NEAR(peak.speedup, 85.9, 0.5);  // the paper rounds to "87x"
}

TEST(PeakTest, PerfectPrefetchIsUnbounded) {
  const Peak peak = peakSpeedup(1.0, 0.1);
  EXPECT_TRUE(peak.unbounded);
  EXPECT_TRUE(std::isinf(peak.speedup));
}

TEST(PeakTest, HighHitRatioMovesSupremumToSmallTasks) {
  // With M*X_PRTR < H the supremum 1/(M*X_PRTR) is approached as
  // X_task -> 0.
  const Peak peak = peakSpeedup(0.9, 0.1);
  EXPECT_DOUBLE_EQ(peak.xTask, 0.0);
  EXPECT_NEAR(peak.speedup, 1.0 / (0.1 * 0.1), 1e-9);
  EXPECT_FALSE(peak.unbounded);
}

TEST(PeakTest, PeakValueDominatesSampledCurve) {
  for (const double h : {0.0, 0.3, 0.6, 0.9}) {
    for (const double xPrtr : {0.05, 0.17, 0.5}) {
      const Peak peak = peakSpeedup(h, xPrtr);
      for (double xTask = 1e-4; xTask < 100.0; xTask *= 1.3) {
        EXPECT_LE(idealAsymptote(xTask, xPrtr, h), peak.speedup + 1e-9)
            << "h=" << h << " xPrtr=" << xPrtr << " xTask=" << xTask;
      }
    }
  }
}

TEST(BeneficialTest, PrtrAlwaysBeatsFrtrAtIdealOverheads) {
  // With zero control/decision overheads PRTR can only remove
  // configuration work, so S_inf > 1 everywhere.
  for (double xTask = 0.001; xTask < 100.0; xTask *= 2.7) {
    Params p;
    p.xTask = xTask;
    p.xPrtr = 0.1;
    p.hitRatio = 0.0;
    EXPECT_TRUE(prtrBeneficial(p));
  }
}

TEST(BeneficialTest, LargeControlOverheadCanKillTheGain) {
  Params p;
  p.xTask = 10.0;
  p.xPrtr = 0.5;
  p.hitRatio = 0.0;
  p.xControl = 0.0;
  EXPECT_TRUE(prtrBeneficial(p));
  // A pathological decision overhead makes PRTR lose.
  p.xDecision = 5.0;
  EXPECT_FALSE(prtrBeneficial(p));
}

TEST(RequiredHitRatioTest, NoHelpNeededAboveXPrtr) {
  // For X_task >= X_PRTR, H is irrelevant: achievable iff the universal
  // bound reaches the target.
  EXPECT_DOUBLE_EQ(requiredHitRatio(0.5, 0.1, 2.0), 0.0);
  EXPECT_GT(requiredHitRatio(1.0, 0.1, 3.0), 1.0);  // unattainable
}

TEST(RequiredHitRatioTest, SolvesForHBelowXPrtr) {
  const double xTask = 0.02;
  const double xPrtr = 0.17;
  const double target = 10.0;
  const double h = requiredHitRatio(xTask, xPrtr, target);
  ASSERT_GT(h, 0.0);
  ASSERT_LE(h, 1.0);
  EXPECT_NEAR(idealAsymptote(xTask, xPrtr, h), target, 1e-9);
}

TEST(CrossoverTest, FindsWhereTwoConfigurationsTie) {
  // A coarse-grained system with good prefetching (H=0.9, X_PRTR=0.3)
  // beats a fine-grained prefetch-less one (H=0, X_PRTR=0.05) for tiny
  // tasks and loses for mid-sized ones; the crossover is where they tie.
  const double x = crossoverTaskSize(0.9, 0.3, 0.0, 0.05, 0.01, 0.1);
  EXPECT_NEAR(idealAsymptote(x, 0.3, 0.9), idealAsymptote(x, 0.05, 0.0), 1e-6);
  EXPECT_GT(x, 0.01);
  EXPECT_LT(x, 0.1);
}

TEST(CrossoverTest, RejectsBracketsWithoutSignChange) {
  // Identical configurations never cross with a strict sign change -> the
  // difference is zero everywhere; distinct ones may simply not cross.
  EXPECT_THROW((void)crossoverTaskSize(0.0, 0.1, 0.0, 0.2, 1e-3, 0.05),
               util::DomainError);
}

TEST(DescribeBoundsTest, MentionsRegimeAndNumbers) {
  Params p;
  p.xTask = 2.0;
  p.xPrtr = 0.1;
  p.hitRatio = 0.0;
  const std::string text = describeBounds(p);
  EXPECT_NE(text.find("task-dominant"), std::string::npos);
  EXPECT_NE(text.find("cannot exceed 2x"), std::string::npos);
  EXPECT_NE(text.find("beneficial"), std::string::npos);
}

TEST(Figure5StructureTest, CurvesOrderedByHitRatioLeftOfXPrtr) {
  // Left of X_PRTR, higher H strictly helps; right of it all curves merge.
  const double xPrtr = 0.17;
  const double left = 0.02;
  EXPECT_LT(idealAsymptote(left, xPrtr, 0.0), idealAsymptote(left, xPrtr, 0.5));
  EXPECT_LT(idealAsymptote(left, xPrtr, 0.5), idealAsymptote(left, xPrtr, 1.0));
  const double right = 0.5;
  EXPECT_NEAR(idealAsymptote(right, xPrtr, 0.0),
              idealAsymptote(right, xPrtr, 1.0), 1e-12);
}

}  // namespace
}  // namespace prtr::model
