// Tests for bitstream generation, parsing, and the module- vs
// difference-based flow accounting of paper section 2.2.
#include <gtest/gtest.h>

#include "bitstream/builder.hpp"
#include "bitstream/library.hpp"
#include "bitstream/parser.hpp"
#include "fabric/floorplan.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {
namespace {

class BitstreamTest : public ::testing::Test {
 protected:
  fabric::Floorplan plan_ = fabric::makeDualPrrLayout();
  Builder builder_{plan_.device()};
};

TEST_F(BitstreamTest, FullStreamHasExactCalibratedSize) {
  const Bitstream full = builder_.buildFull(1);
  EXPECT_EQ(full.size().count(), 2'381'764u);
  EXPECT_FALSE(full.isPartial());
  EXPECT_EQ(full.header().frameCount, 2246u);
}

TEST_F(BitstreamTest, ModulePartialSizeIsFixedPerRegion) {
  const Bitstream a = builder_.buildModulePartial(plan_.prr(0), 7, 0.3);
  const Bitstream b = builder_.buildModulePartial(plan_.prr(0), 8, 0.9);
  // Module-based flow: same region => same size, regardless of occupancy.
  EXPECT_EQ(a.size().count(), b.size().count());
  EXPECT_EQ(a.size(), plan_.prr(0).partialBitstreamBytes(plan_.device()));
  EXPECT_TRUE(a.isPartial());
}

TEST_F(BitstreamTest, DifferencePartialVariesWithOccupancy) {
  const Bitstream small =
      builder_.buildDifferencePartial(plan_.prr(0), 7, 0.2, 8, 0.2);
  const Bitstream large =
      builder_.buildDifferencePartial(plan_.prr(0), 7, 0.2, 9, 0.95);
  EXPECT_LT(small.size().count(), large.size().count());
  // Difference streams never exceed the module-based fixed size by more
  // than the per-frame addressing they share.
  EXPECT_LE(large.size().count(),
            plan_.prr(0).partialBitstreamBytes(plan_.device()).count());
}

TEST_F(BitstreamTest, DifferenceOfIdenticalModulesIsEmpty) {
  const Bitstream none =
      builder_.buildDifferencePartial(plan_.prr(0), 7, 0.5, 7, 0.5);
  EXPECT_EQ(none.header().frameCount, 0u);
}

TEST_F(BitstreamTest, ParseRoundTripsFull) {
  const Bitstream full = builder_.buildFull(3);
  const ParsedStream parsed = parse(full, plan_.device());
  EXPECT_EQ(parsed.header.moduleId, 3u);
  EXPECT_EQ(parsed.writes.size(), 2246u);
  EXPECT_EQ(parsed.writes.front().frame, 0u);
  EXPECT_EQ(parsed.writes.back().frame, 2245u);
}

TEST_F(BitstreamTest, ParseRoundTripsPartialWithRegionAddresses) {
  const Bitstream part = builder_.buildModulePartial(plan_.prr(1), 5);
  const ParsedStream parsed = parse(part, plan_.device());
  const fabric::FrameRange range = plan_.prr(1).frames(plan_.device());
  EXPECT_EQ(parsed.writes.size(), range.count);
  for (const FrameWrite& w : parsed.writes) {
    EXPECT_TRUE(range.contains(w.frame));
    EXPECT_EQ(w.payload.size(),
              plan_.device().geometry().encoding().frameBytes);
  }
}

TEST_F(BitstreamTest, ParseRejectsCorruptedPayload) {
  Bitstream part = builder_.buildModulePartial(plan_.prr(0), 5);
  auto bytes = part.bytes();
  bytes[bytes.size() / 2] ^= 0xFF;
  EXPECT_THROW(parse(std::span{bytes}, plan_.device()), util::BitstreamError);
}

TEST_F(BitstreamTest, ParseRejectsWrongDevice) {
  const Bitstream part = builder_.buildModulePartial(plan_.prr(0), 5);
  const fabric::Device other = fabric::makeXc2vp30();
  EXPECT_THROW(parse(part, other), util::BitstreamError);
}

TEST_F(BitstreamTest, ParseRejectsBadMagic) {
  std::vector<std::uint8_t> junk(64, 0);
  EXPECT_THROW(parse(std::span{junk}, plan_.device()), util::BitstreamError);
  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_THROW(parse(std::span{tiny}, plan_.device()), util::BitstreamError);
}

TEST_F(BitstreamTest, PayloadsAreDeterministic) {
  const auto a = framePayload(9, 100, 50, 120, 64);
  const auto b = framePayload(9, 100, 50, 120, 64);
  EXPECT_EQ(a, b);
  const auto c = framePayload(10, 100, 50, 120, 64);
  EXPECT_NE(a, c);
}

TEST_F(BitstreamTest, UnoccupiedFramesCarryBaselineContent) {
  // Frame beyond the module footprint equals the baseline (module 0).
  const auto outside = framePayload(9, 100, 10, 115, 64);
  const auto baseline = framePayload(0, 100, 10, 115, 64);
  EXPECT_EQ(outside, baseline);
}

TEST(LibraryTest, ModuleFlowBuildsNStreamsPerRegion) {
  fabric::Floorplan plan = fabric::makeDualPrrLayout();
  std::vector<Library::ModuleSpec> specs{
      {11, "a", 0.3}, {12, "b", 0.5}, {13, "c", 0.8}};
  Library lib{plan, specs};
  const FlowStats stats = lib.buildModuleFlow();
  // Paper section 2.2: n bitstreams per region for n modules.
  EXPECT_EQ(stats.streamCount, 2u * 3u);
  EXPECT_EQ(stats.minBytes, stats.maxBytes);  // all the same size
}

TEST(LibraryTest, DifferenceFlowBuildsNTimesNMinusOne) {
  fabric::Floorplan plan = fabric::makeDualPrrLayout();
  std::vector<Library::ModuleSpec> specs{
      {11, "a", 0.3}, {12, "b", 0.5}, {13, "c", 0.8}};
  Library lib{plan, specs};
  const FlowStats stats = lib.buildDifferenceFlow();
  EXPECT_EQ(stats.streamCount, 2u * 3u * 2u);  // n(n-1) per region
  EXPECT_LT(stats.minBytes, stats.maxBytes);   // variable sizes
}

TEST(LibraryTest, FlowStreamCountFormulas) {
  EXPECT_EQ(Library::moduleFlowStreams(5), 5u);
  EXPECT_EQ(Library::differenceFlowStreams(5), 20u);
}

TEST(LibraryTest, RejectsReservedModuleId) {
  fabric::Floorplan plan = fabric::makeDualPrrLayout();
  std::vector<Library::ModuleSpec> specs{{0, "bad", 0.5}};
  EXPECT_THROW((Library{plan, specs}), util::DomainError);
}

TEST(LibraryTest, CachesStreams) {
  fabric::Floorplan plan = fabric::makeDualPrrLayout();
  std::vector<Library::ModuleSpec> specs{{11, "a", 0.3}};
  Library lib{plan, specs};
  const Bitstream& first = lib.modulePartial(0, 11);
  const Bitstream& second = lib.modulePartial(0, 11);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(&lib.full(), &lib.full());
}

}  // namespace
}  // namespace prtr::bitstream
