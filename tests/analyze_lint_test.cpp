// Tests for the prtr::analyze static-diagnostics subsystem: rule catalog
// integrity, golden text/JSON renderings, per-rule reachability for every
// documented code, delegation from the owning validators, and the
// spec-file front end used by prtr-lint.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/checks_bitstream.hpp"
#include "analyze/checks_fault.hpp"
#include "analyze/checks_fleet.hpp"
#include "analyze/checks_floorplan.hpp"
#include "analyze/checks_model.hpp"
#include "analyze/checks_scenario.hpp"
#include "analyze/diagnostic.hpp"
#include "analyze/lint.hpp"
#include "analyze/spec.hpp"
#include "bitstream/builder.hpp"
#include "bitstream/parser.hpp"
#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "model/model.hpp"
#include "model/params.hpp"
#include "runtime/cache.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/scenario.hpp"
#include "sim/trace.hpp"
#include "tasks/workload.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "verify/race.hpp"
#include "verify/request_rules.hpp"
#include "verify/schedule.hpp"
#include "verify/timeline_rules.hpp"
#include "verify/trace_load.hpp"

namespace prtr {
namespace {

using analyze::Category;
using analyze::DiagnosticSink;
using analyze::Severity;

fabric::Region prr(std::string name, std::size_t first, std::size_t count) {
  return fabric::Region{std::move(name), fabric::RegionRole::kPrr, first,
                        count};
}

fabric::BusMacro macro(std::string prrName,
                       fabric::BusMacro::Direction direction,
                       std::size_t boundary) {
  return fabric::BusMacro{std::move(prrName), direction, 8, boundary};
}

/// One balanced l2r/r2l pair pinned to `boundary` (keeps FP007/FP008 quiet).
std::vector<fabric::BusMacro> macroPair(const std::string& prrName,
                                        std::size_t boundary) {
  return {macro(prrName, fabric::BusMacro::Direction::kLeftToRight, boundary),
          macro(prrName, fabric::BusMacro::Direction::kRightToLeft, boundary)};
}

DiagnosticSink lintFloorplanParts(
    const fabric::Device& device, const std::vector<fabric::Region>& prrs,
    const std::vector<fabric::BusMacro>& macros) {
  DiagnosticSink sink;
  analyze::checkFloorplan(device, prrs, macros, sink);
  return sink;
}

void patchU32(std::vector<std::uint8_t>& bytes, std::size_t offset,
              std::uint32_t value) {
  ASSERT_LE(offset + 4, bytes.size());
  bytes[offset] = static_cast<std::uint8_t>(value & 0xFF);
  bytes[offset + 1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
  bytes[offset + 2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
  bytes[offset + 3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
}

/// Recomputes the CRC-32 trailer so only the intended defect is visible.
void fixCrc(std::vector<std::uint8_t>& bytes) {
  const std::uint32_t crc = util::Crc32::of(
      std::span<const std::uint8_t>{bytes.data(), bytes.size() - 4});
  patchU32(bytes, bytes.size() - 4, crc);
}

DiagnosticSink scanBytes(const std::vector<std::uint8_t>& bytes,
                         const fabric::Device& device) {
  DiagnosticSink sink;
  (void)analyze::scanStream(bytes, device, sink);
  return sink;
}

model::Params goodParams() {
  model::Params p;
  p.nCalls = 1000;
  p.xTask = 0.5;
  p.xPrtr = 0.4;
  p.xControl = 0.001;
  p.xDecision = 0.0;
  p.hitRatio = 0.0;
  return p;
}

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

TEST(RuleCatalog, CodesAreGroupedSortedUniqueAndPrefixConsistent) {
  const auto catalog = analyze::ruleCatalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const analyze::RuleInfo& rule = catalog[i];
    const std::string code = rule.code;
    ASSERT_EQ(code.size(), 5u) << code;
    const std::string prefix = code.substr(0, 2);
    const Category expected = prefix == "FP"   ? Category::kFloorplan
                              : prefix == "BS" ? Category::kBitstream
                              : prefix == "MD" ? Category::kModel
                              : prefix == "FT" ? Category::kFault
                              : prefix == "FL" ? Category::kFleet
                              : prefix == "TR" ? Category::kTracing
                              : prefix == "SL" ? Category::kSlo
                              : prefix == "RC" ? Category::kRace
                              : prefix == "TL" ? Category::kTimeline
                              : prefix == "RQ" ? Category::kRequest
                                               : Category::kDeterminism;
    EXPECT_TRUE(prefix == "FP" || prefix == "BS" || prefix == "MD" ||
                prefix == "FT" || prefix == "FL" || prefix == "TR" ||
                prefix == "SL" || prefix == "RC" || prefix == "TL" ||
                prefix == "RQ" || prefix == "DT")
        << code;
    EXPECT_EQ(rule.category, expected) << code;
    EXPECT_STRNE(rule.summary, "") << code;
    EXPECT_STRNE(rule.fixHint, "") << code;
    EXPECT_TRUE(seen.insert(code).second) << "duplicate code " << code;
    // Grouped by family (FP, then BS, then MD) and sorted within a family.
    if (i > 0) {
      const std::string previous = catalog[i - 1].code;
      if (previous.substr(0, 2) == prefix) {
        EXPECT_LT(previous, code);
      } else {
        EXPECT_LE(static_cast<int>(catalog[i - 1].category),
                  static_cast<int>(rule.category))
            << previous << " before " << code;
      }
    }
    EXPECT_EQ(analyze::ruleInfo(code).code, rule.code);
  }
}

TEST(RuleCatalog, HasAtLeastTwelveCodesSpanningAllThreeCategories) {
  std::size_t fp = 0;
  std::size_t bs = 0;
  std::size_t md = 0;
  std::size_t ft = 0;
  std::size_t fl = 0;
  std::size_t tr = 0;
  std::size_t sl = 0;
  std::size_t rc = 0;
  std::size_t tl = 0;
  std::size_t rq = 0;
  std::size_t dt = 0;
  for (const analyze::RuleInfo& rule : analyze::ruleCatalog()) {
    switch (rule.category) {
      case Category::kFloorplan: ++fp; break;
      case Category::kBitstream: ++bs; break;
      case Category::kModel: ++md; break;
      case Category::kFault: ++ft; break;
      case Category::kFleet: ++fl; break;
      case Category::kTracing: ++tr; break;
      case Category::kSlo: ++sl; break;
      case Category::kRace: ++rc; break;
      case Category::kTimeline: ++tl; break;
      case Category::kRequest: ++rq; break;
      case Category::kDeterminism: ++dt; break;
    }
  }
  EXPECT_EQ(fp, 10u);
  EXPECT_EQ(bs, 11u);
  EXPECT_EQ(md, 12u);
  EXPECT_EQ(ft, 10u);
  EXPECT_EQ(fl, 17u);
  EXPECT_EQ(tr, 4u);
  EXPECT_EQ(sl, 5u);
  EXPECT_EQ(rc, 4u);
  EXPECT_EQ(tl, 7u);
  EXPECT_EQ(rq, 6u);
  EXPECT_EQ(dt, 4u);
  EXPECT_GE(fp + bs + md + ft + fl + tr + sl + rc + tl + rq + dt, 12u);
}

TEST(RuleCatalog, UnknownCodeThrows) {
  EXPECT_THROW((void)analyze::ruleInfo("ZZ999"), util::DomainError);
  DiagnosticSink sink;
  EXPECT_THROW(sink.emit("ZZ999", "here", "nope"), util::DomainError);
}

TEST(RuleCatalog, MarkdownReferenceListsEveryCode) {
  const std::string reference = analyze::renderRuleReference();
  for (const analyze::RuleInfo& rule : analyze::ruleCatalog()) {
    EXPECT_NE(reference.find(rule.code), std::string::npos) << rule.code;
  }
  EXPECT_NE(reference.find("## floorplan rules"), std::string::npos);
  EXPECT_NE(reference.find("## bitstream rules"), std::string::npos);
  EXPECT_NE(reference.find("## model rules"), std::string::npos);
  EXPECT_NE(reference.find("## fault rules"), std::string::npos);
  EXPECT_NE(reference.find("## fleet rules"), std::string::npos);
  EXPECT_NE(reference.find("## race rules"), std::string::npos);
  EXPECT_NE(reference.find("## timeline rules"), std::string::npos);
  EXPECT_NE(reference.find("## determinism rules"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DiagnosticSink rendering (golden outputs)
// ---------------------------------------------------------------------------

TEST(DiagnosticSink, GoldenJson) {
  DiagnosticSink sink;
  sink.emit("FP004", "PRR 'A'", "PRRs 'A' and 'B' overlap");
  EXPECT_EQ(sink.toJson(),
            "{\"errors\":1,\"warnings\":0,\"diagnostics\":["
            "{\"code\":\"FP004\",\"severity\":\"error\","
            "\"category\":\"floorplan\",\"location\":\"PRR 'A'\","
            "\"message\":\"PRRs 'A' and 'B' overlap\","
            "\"fixHint\":\"make the PRR column ranges disjoint\"}]}");
}

TEST(DiagnosticSink, GoldenText) {
  DiagnosticSink sink;
  sink.emit("MD007", "params", "asymptotic speedup is 0.9 <= 1",
            "raise the hit ratio");
  EXPECT_EQ(sink.toText(),
            "warning[MD007] params: asymptotic speedup is 0.9 <= 1 "
            "(fix: raise the hit ratio)\n"
            "0 error(s), 1 warning(s)\n");
}

TEST(DiagnosticSink, CountsFirstErrorAndCodes) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_THROW((void)sink.firstError(), util::DomainError);
  sink.emit("MD009", "options", "cache has no effect");   // warning
  sink.emit("MD011", "options", "unknown policy");        // error
  sink.emit("MD011", "options", "unknown policy again");  // duplicate code
  EXPECT_EQ(sink.errorCount(), 2u);
  EXPECT_EQ(sink.warningCount(), 1u);
  EXPECT_TRUE(sink.hasErrors());
  EXPECT_EQ(sink.firstError().code, "MD011");
  EXPECT_TRUE(sink.has("MD009"));
  EXPECT_FALSE(sink.has("MD010"));
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"MD009", "MD011"}));
}

TEST(DiagnosticSink, JsonEscaping) {
  EXPECT_EQ(analyze::jsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(analyze::jsonEscape(std::string_view{"\x01", 1}), "\\u0001");
}

// ---------------------------------------------------------------------------
// Floorplan rules
// ---------------------------------------------------------------------------

TEST(FloorplanRules, BuiltinLayoutsLintClean) {
  for (const fabric::Floorplan& plan :
       {fabric::makeSinglePrrLayout(), fabric::makeDualPrrLayout(),
        fabric::makeQuadPrrLayout()}) {
    const DiagnosticSink sink = lintFloorplanParts(
        plan.device(), plan.prrs(), plan.busMacros());
    EXPECT_TRUE(sink.empty()) << sink.toText();
  }
}

TEST(FloorplanRules, StaticRoleInPrrListIsFP001) {
  const fabric::Device device = fabric::makeXc2vp50();
  const std::vector<fabric::Region> regions{fabric::Region{
      "S", fabric::RegionRole::kStatic, 0, 4}};
  const DiagnosticSink sink =
      lintFloorplanParts(device, regions, macroPair("S", 4));
  EXPECT_TRUE(sink.has("FP001")) << sink.toText();
}

TEST(FloorplanRules, OutOfDeviceIsFP002) {
  const fabric::Device device = fabric::makeXc2vp50();
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("P", 80, 20)}, macroPair("P", 80));
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP002"}))
      << sink.toText();
}

TEST(FloorplanRules, PpcColumnIsFP003) {
  const fabric::Device device = fabric::makeXc2vp50();
  // Columns 65/66 on the XC2VP50 are the PPC/GCLK pair.
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("P", 60, 10)}, macroPair("P", 60));
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP003"}))
      << sink.toText();
}

TEST(FloorplanRules, OverlapIsFP004) {
  const fabric::Device device = fabric::makeXc2vp50();
  std::vector<fabric::BusMacro> macros = macroPair("A", 0);
  const auto more = macroPair("B", 6);
  macros.insert(macros.end(), more.begin(), more.end());
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("A", 0, 8), prr("B", 6, 8)}, macros);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP004"}))
      << sink.toText();
}

TEST(FloorplanRules, GhostPrrMacroIsFP005) {
  const fabric::Device device = fabric::makeXc2vp50();
  std::vector<fabric::BusMacro> macros = macroPair("A", 0);
  const auto ghost = macroPair("GHOST", 12);
  macros.insert(macros.end(), ghost.begin(), ghost.end());
  const DiagnosticSink sink =
      lintFloorplanParts(device, {prr("A", 0, 8)}, macros);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP005"}))
      << sink.toText();
}

TEST(FloorplanRules, OffBoundaryMacroIsFP006) {
  const fabric::Device device = fabric::makeXc2vp50();
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("A", 0, 8)}, macroPair("A", 3));  // interior column
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP006"}))
      << sink.toText();
}

TEST(FloorplanRules, NoMacrosIsFP007Warning) {
  const fabric::Device device = fabric::makeXc2vp50();
  const DiagnosticSink sink = lintFloorplanParts(device, {prr("A", 0, 8)}, {});
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP007"}))
      << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
}

TEST(FloorplanRules, UnbalancedMacrosIsFP008Warning) {
  const fabric::Device device = fabric::makeXc2vp50();
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("A", 0, 8)},
      {macro("A", fabric::BusMacro::Direction::kLeftToRight, 8)});
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP008"}))
      << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
}

TEST(FloorplanRules, DegenerateStaticRegionIsFP009Warning) {
  const fabric::Device device = fabric::makeXc2vp50();
  // Two PRRs swallowing every CLB column of the 83-column device (only the
  // PPC/GCLK pair at 65/66 is left out) leave zero LUTs for the static
  // design.
  std::vector<fabric::BusMacro> macros = macroPair("L", 65);
  const auto right = macroPair("R", 67);
  macros.insert(macros.end(), right.begin(), right.end());
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("L", 0, 65), prr("R", 67, 16)}, macros);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FP009"}))
      << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
}

TEST(FloorplanRules, DuplicateNameIsFP010) {
  const fabric::Device device = fabric::makeXc2vp50();
  std::vector<fabric::BusMacro> macros = macroPair("A", 0);
  const DiagnosticSink sink = lintFloorplanParts(
      device, {prr("A", 0, 8), prr("A", 20, 8)}, macros);
  EXPECT_TRUE(sink.has("FP010")) << sink.toText();
}

TEST(FloorplanRules, ConstructorDelegatesWithCodeInMessage) {
  try {
    const fabric::Floorplan plan{
        fabric::makeXc2vp50(), {prr("A", 0, 8), prr("B", 6, 8)}, {}};
    FAIL() << "overlapping floorplan constructed";
  } catch (const util::PlacementError& e) {
    EXPECT_NE(std::string{e.what()}.find("FP004"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Bitstream rules
// ---------------------------------------------------------------------------

class BitstreamRules : public ::testing::Test {
 protected:
  BitstreamRules()
      : device_(fabric::makeXc2vp50()),
        plan_(fabric::makeDualPrrLayout()),
        builder_(device_) {}

  std::vector<std::uint8_t> partialBytes(std::size_t prrIndex = 0) const {
    return builder_.buildModulePartial(plan_.prr(prrIndex), 7).bytes();
  }

  fabric::Device device_;
  fabric::Floorplan plan_;
  bitstream::Builder builder_;
};

TEST_F(BitstreamRules, BuilderOutputLintsClean) {
  EXPECT_TRUE(scanBytes(builder_.buildFull(1).bytes(), device_).empty());
  EXPECT_TRUE(scanBytes(partialBytes(), device_).empty());
  EXPECT_TRUE(
      scanBytes(builder_
                    .buildDifferencePartial(plan_.prr(0), 1, 1.0, 2, 1.0)
                    .bytes(),
                device_)
          .empty());
}

TEST_F(BitstreamRules, ShortStreamIsBS001) {
  const DiagnosticSink sink =
      scanBytes(std::vector<std::uint8_t>(16, 0), device_);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"BS001"}));
}

TEST_F(BitstreamRules, BadMagicIsBS002) {
  std::vector<std::uint8_t> bytes = partialBytes();
  patchU32(bytes, 0, 0xDEADBEEF);
  fixCrc(bytes);
  EXPECT_EQ(scanBytes(bytes, device_).codes(),
            (std::vector<std::string>{"BS002"}));
}

TEST_F(BitstreamRules, UnknownTypeIsBS003) {
  std::vector<std::uint8_t> bytes = partialBytes();
  bytes[4] = 7;
  fixCrc(bytes);
  EXPECT_EQ(scanBytes(bytes, device_).codes(),
            (std::vector<std::string>{"BS003"}));
}

TEST_F(BitstreamRules, WrongDeviceTagIsBS004) {
  const DiagnosticSink sink =
      scanBytes(partialBytes(), fabric::makeXc2vp30());
  EXPECT_TRUE(sink.has("BS004")) << sink.toText();
}

TEST_F(BitstreamRules, WrongFrameBytesIsBS005) {
  std::vector<std::uint8_t> bytes = partialBytes();
  patchU32(bytes, 20, 999);
  fixCrc(bytes);
  EXPECT_EQ(scanBytes(bytes, device_).codes(),
            (std::vector<std::string>{"BS005"}));
}

TEST_F(BitstreamRules, CorruptPayloadIsBS006) {
  std::vector<std::uint8_t> bytes = partialBytes();
  bytes[bytes.size() / 2] ^= 0xFF;
  const DiagnosticSink sink = scanBytes(bytes, device_);
  EXPECT_TRUE(sink.has("BS006")) << sink.toText();
}

TEST_F(BitstreamRules, WrongFullFrameCountIsBS007) {
  std::vector<std::uint8_t> bytes = builder_.buildFull(1).bytes();
  patchU32(bytes, 16, device_.geometry().totalFrames() - 5);
  fixCrc(bytes);
  EXPECT_EQ(scanBytes(bytes, device_).codes(),
            (std::vector<std::string>{"BS007"}));
}

TEST_F(BitstreamRules, OutOfDeviceFrameAddressIsBS008) {
  std::vector<std::uint8_t> bytes = partialBytes();
  const auto& enc = device_.geometry().encoding();
  // Last frame-write's address word keeps the sequence monotone.
  const std::size_t lastAddr =
      bytes.size() - 4 - enc.frameBytes - enc.frameAddressBytes;
  patchU32(bytes, lastAddr, device_.geometry().totalFrames() + 40);
  fixCrc(bytes);
  EXPECT_EQ(scanBytes(bytes, device_).codes(),
            (std::vector<std::string>{"BS008"}));
}

TEST_F(BitstreamRules, NonMonotoneAddressesAreBS009Warning) {
  std::vector<std::uint8_t> bytes = partialBytes();
  const auto& enc = device_.geometry().encoding();
  const std::size_t first = enc.partialOverheadBytes - 4;
  const std::size_t second = first + enc.frameAddressBytes + enc.frameBytes;
  const std::uint32_t firstAddr = bytes[first] |
                                  std::uint32_t{bytes[first + 1]} << 8 |
                                  std::uint32_t{bytes[first + 2]} << 16 |
                                  std::uint32_t{bytes[first + 3]} << 24;
  const std::uint32_t secondAddr = bytes[second] |
                                   std::uint32_t{bytes[second + 1]} << 8 |
                                   std::uint32_t{bytes[second + 2]} << 16 |
                                   std::uint32_t{bytes[second + 3]} << 24;
  patchU32(bytes, first, secondAddr);
  patchU32(bytes, second, firstAddr);
  fixCrc(bytes);
  const DiagnosticSink sink = scanBytes(bytes, device_);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"BS009"}))
      << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
}

TEST_F(BitstreamRules, TrailingBytesAreBS010Warning) {
  std::vector<std::uint8_t> bytes = partialBytes();
  bytes.insert(bytes.end() - 4, {0, 0, 0, 0});
  fixCrc(bytes);
  const DiagnosticSink sink = scanBytes(bytes, device_);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"BS010"}))
      << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
}

TEST_F(BitstreamRules, StreamOutsideEveryPrrIsBS011) {
  // A persona for the dual layout's right-edge PRR cannot load into the
  // single-PRR floorplan (whose one PRR sits in the device centre).
  const std::vector<std::uint8_t> bytes = partialBytes(1);
  DiagnosticSink sink;
  const analyze::StreamScan scan = analyze::scanStream(bytes, device_, sink);
  ASSERT_TRUE(sink.empty()) << sink.toText();
  analyze::checkStreamFitsFloorplan(scan, fabric::makeSinglePrrLayout(), sink);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"BS011"}));

  DiagnosticSink fits;
  analyze::checkStreamFitsFloorplan(scan, plan_, fits);
  EXPECT_TRUE(fits.empty()) << fits.toText();
}

TEST_F(BitstreamRules, ParserDelegatesWithCodeInMessage) {
  std::vector<std::uint8_t> bytes = partialBytes();
  bytes[bytes.size() / 2] ^= 0xFF;
  try {
    (void)bitstream::parse(bytes, device_);
    FAIL() << "corrupt stream parsed";
  } catch (const util::BitstreamError& e) {
    EXPECT_NE(std::string{e.what()}.find("BS006"), std::string::npos)
        << e.what();
  }
  patchU32(bytes, 0, 0x12345678);
  try {
    (void)bitstream::peekHeader(bytes);
    FAIL() << "bad magic accepted";
  } catch (const util::BitstreamError& e) {
    EXPECT_NE(std::string{e.what()}.find("BS002"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Model and scenario rules
// ---------------------------------------------------------------------------

TEST(ModelRules, GoodParamsLintClean) {
  DiagnosticSink sink;
  analyze::checkParams(goodParams(), sink);
  EXPECT_TRUE(sink.empty()) << sink.toText();
}

TEST(ModelRules, DomainViolationsMapToCodes) {
  const std::vector<std::pair<std::function<void(model::Params&)>, std::string>>
      cases{
          {[](model::Params& p) { p.nCalls = 0; }, "MD001"},
          {[](model::Params& p) { p.xTask = 0.0; }, "MD002"},
          {[](model::Params& p) { p.xPrtr = 1.5; }, "MD003"},
          {[](model::Params& p) { p.xControl = -0.1; }, "MD004"},
          {[](model::Params& p) { p.xDecision = -0.1; }, "MD005"},
          {[](model::Params& p) { p.hitRatio = 1.1; }, "MD006"},
      };
  for (const auto& [mutate, code] : cases) {
    model::Params p = goodParams();
    mutate(p);
    DiagnosticSink sink;
    analyze::checkParams(p, sink);
    EXPECT_EQ(sink.codes(), (std::vector<std::string>{code})) << sink.toText();
    EXPECT_THROW(p.validate(), util::DomainError) << code;
  }
}

TEST(ModelRules, UnprofitableParamsAreMD007Warning) {
  model::Params p = goodParams();
  p.xDecision = 2.0;  // decision latency dwarfs the reconfiguration itself
  DiagnosticSink sink;
  analyze::checkParams(p, sink);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"MD007"}))
      << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
  // MD007 is a warning: validate() must accept these parameters, and the
  // model functions (which re-validate internally) must not recurse back
  // into the checker.
  EXPECT_NO_THROW(p.validate());
  EXPECT_LE(model::asymptoticSpeedup(p), 1.0);
}

TEST(ModelRules, UnreachableTargetIsMD008Warning) {
  model::Params p = goodParams();
  p.xTask = 4.0;  // bound (1 + 4)/4 = 1.25
  DiagnosticSink sink;
  analyze::checkParams(p, sink);
  analyze::checkSpeedupTarget(p, 3.0, sink);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"MD008"}))
      << sink.toText();

  DiagnosticSink reachable;
  analyze::checkParams(p, reachable);
  analyze::checkSpeedupTarget(p, 1.2, reachable);
  EXPECT_FALSE(reachable.has("MD008")) << reachable.toText();
}

TEST(ScenarioRules, DefaultOptionsLintClean) {
  DiagnosticSink sink;
  analyze::checkScenarioOptions(runtime::ScenarioOptions{}, sink);
  EXPECT_TRUE(sink.empty()) << sink.toText();
}

TEST(ScenarioRules, ForceMissWithNonDefaultCacheIsMD009) {
  runtime::ScenarioOptions options;
  options.forceMiss = true;
  options.cachePolicy = runtime::CachePolicy::kBelady;
  DiagnosticSink sink;
  analyze::checkScenarioOptions(options, sink);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"MD009"}))
      << sink.toText();
}

TEST(ScenarioRules, PrefetcherMismatchIsMD010) {
  runtime::ScenarioOptions ignored;
  ignored.forceMiss = false;
  ignored.prefetcherKind = runtime::PrefetcherKind::kOracle;
  ignored.prepare = runtime::PrepareSource::kQueue;
  DiagnosticSink sink;
  analyze::checkScenarioOptions(ignored, sink);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"MD010"}))
      << sink.toText();

  runtime::ScenarioOptions absent;
  absent.forceMiss = false;
  absent.prefetcherKind = runtime::PrefetcherKind::kNone;
  absent.prepare = runtime::PrepareSource::kPrefetcher;
  DiagnosticSink sink2;
  analyze::checkScenarioOptions(absent, sink2);
  EXPECT_EQ(sink2.codes(), (std::vector<std::string>{"MD010"}))
      << sink2.toText();
}

TEST(ScenarioRules, UnknownNamesAreMD011AndMD012) {
  // Typed options cannot hold an unknown name; the string boundary
  // (spec files, CLI flags) lints through checkScenarioNames instead.
  DiagnosticSink sink;
  analyze::checkScenarioNames("clock", "psychic", sink);
  EXPECT_TRUE(sink.has("MD011")) << sink.toText();
  EXPECT_TRUE(sink.has("MD012")) << sink.toText();
  EXPECT_TRUE(sink.hasErrors());

  DiagnosticSink clean;
  analyze::checkScenarioNames("lru", "none", clean);
  EXPECT_TRUE(clean.empty()) << clean.toText();
}

TEST(ScenarioRules, KnownNameListsMatchTheRuntimeFactories) {
  // The linter's accept-lists and the factories must never drift apart:
  // every advertised name parses back to an enum value that constructs,
  // and the linter accepts exactly the names fromString does.
  for (const char* policy : analyze::knownCachePolicies()) {
    const auto parsed = runtime::cachePolicyFromString(policy);
    ASSERT_TRUE(parsed.has_value()) << policy;
    EXPECT_STREQ(runtime::toString(*parsed), policy);
    EXPECT_NE(runtime::makeCache(*parsed, 2, {1, 2, 1}), nullptr) << policy;
    DiagnosticSink sink;
    analyze::checkScenarioNames(policy, "none", sink);
    EXPECT_FALSE(sink.has("MD011")) << policy;
  }
  for (const char* kind : analyze::knownPrefetcherKinds()) {
    const auto parsed = runtime::prefetcherKindFromString(kind);
    ASSERT_TRUE(parsed.has_value()) << kind;
    EXPECT_STREQ(runtime::toString(*parsed), kind);
    EXPECT_NE(runtime::makePrefetcher(*parsed, util::Time::zero(), {1, 2}),
              nullptr)
        << kind;
    DiagnosticSink sink;
    analyze::checkScenarioNames("lru", kind, sink);
    EXPECT_FALSE(sink.has("MD012")) << kind;
  }
  EXPECT_FALSE(runtime::cachePolicyFromString("clock").has_value());
  EXPECT_FALSE(runtime::prefetcherKindFromString("psychic").has_value());
  // The deprecated string factories keep their throwing contract.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_THROW((void)runtime::makeCache("clock", 2), util::DomainError);
  EXPECT_THROW((void)runtime::makePrefetcher("psychic", util::Time::zero()),
               util::DomainError);
#pragma GCC diagnostic pop
}

// ---------------------------------------------------------------------------
// Fault rules
// ---------------------------------------------------------------------------

analyze::FaultSpec parseFault(const std::string& text) {
  std::istringstream in{text};
  return analyze::parseFaultSpec(in);
}

TEST(FaultRules, ChaosSpecRoundtripsAndLintsClean) {
  const analyze::FaultSpec spec = parseFault(
      "# chaos sweep point\n"
      "seed 42\n"
      "arrival poisson\n"
      "word-flip-rate 1e-4\n"
      "abort-rate 0.01\n"
      "recovery true\n"
      "max-retries 2\n"
      "verify on-fault\n"
      "ladder true\n");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.wordFlipRate, 1e-4);
  const DiagnosticSink sink = analyze::lintFaultSpec(spec);
  EXPECT_TRUE(sink.empty()) << sink.toText();

  const auto [plan, recovery] = analyze::faultSpecToOptions(spec);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(recovery.enabled);
  EXPECT_EQ(recovery.maxRetries, 2u);
  EXPECT_EQ(recovery.verify, config::VerifyMode::kOnFault);
}

TEST(FaultRules, SyntaxErrorsCarryTheLineNumber) {
  EXPECT_THROW((void)parseFault("seed x\n"), util::DomainError);
  try {
    (void)parseFault("seed 1\n\nwobble 3\n");
    FAIL() << "unknown key parsed";
  } catch (const util::DomainError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(FaultRules, UnknownNamesAreFT004AndFT005) {
  const DiagnosticSink sink =
      analyze::lintFaultSpec(parseFault("arrival sometimes\nverify maybe\n"));
  EXPECT_TRUE(sink.has("FT004")) << sink.toText();
  EXPECT_TRUE(sink.has("FT005")) << sink.toText();
  EXPECT_TRUE(sink.hasErrors());
}

TEST(FaultRules, NoOpPlanIsFT007WarningOnlyAtTheSpecBoundary) {
  // A rate-0 plan with recovery enabled is the healthy-baseline chaos
  // configuration: the spec front end warns (a spec file that injects
  // nothing is probably a mistake) but the typed check stays silent so
  // runScenario's strict hook accepts it.
  const DiagnosticSink sink = analyze::lintFaultSpec(parseFault("recovery true\n"));
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FT007"})) << sink.toText();
  EXPECT_FALSE(sink.hasErrors());

  DiagnosticSink typed;
  analyze::checkFaultOptions(fault::Plan{}, config::RecoveryPolicy{.enabled = true},
                             typed);
  EXPECT_TRUE(typed.empty()) << typed.toText();
}

TEST(FaultRules, FaultsWithoutRecoveryAreFT008Warning) {
  fault::Plan plan;
  plan.icapAbortRate = 0.01;
  DiagnosticSink sink;
  analyze::checkFaultOptions(plan, config::RecoveryPolicy{}, sink);
  EXPECT_EQ(sink.codes(), (std::vector<std::string>{"FT008"})) << sink.toText();
  EXPECT_FALSE(sink.hasErrors());
}

TEST(FaultRules, ScenarioStrictLintRejectsBadFaultOptions) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions options;
  options.sides = runtime::ScenarioSides::kPrtrOnly;
  options.faults.icapAbortRate = 1.5;  // FT001 (error)
  options.recovery.enabled = true;
  EXPECT_THROW((void)runtime::runScenario(registry, workload, options),
               util::DomainError);
}

// ---------------------------------------------------------------------------
// Spec front end and lintAll
// ---------------------------------------------------------------------------

TEST(SpecParsing, FloorplanSpecRoundtripsAndLints) {
  std::istringstream in{
      "# comment\n"
      "device xc2vp50\n"
      "prr A 0 8\n"
      "prr B 6 8\n"
      "busmacro A l2r 8 8\n"
      "busmacro A r2l 8 8\n"};
  const analyze::FloorplanSpec spec = analyze::parseFloorplanSpec(in);
  EXPECT_EQ(spec.deviceName, "xc2vp50");
  ASSERT_EQ(spec.prrs.size(), 2u);
  EXPECT_EQ(spec.busMacros.size(), 2u);
  const DiagnosticSink sink = analyze::lintFloorplanSpec(spec);
  EXPECT_TRUE(sink.has("FP004")) << sink.toText();  // A and B overlap
  EXPECT_TRUE(sink.has("FP007")) << sink.toText();  // B has no macros
}

TEST(SpecParsing, SyntaxErrorsCarryTheLineNumber) {
  std::istringstream in{"device xc2vp50\n\nprr A zero 8\n"};
  try {
    (void)analyze::parseFloorplanSpec(in);
    FAIL() << "bad spec parsed";
  } catch (const util::DomainError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(SpecParsing, ScenarioSpecRoundtripsAndLints) {
  std::istringstream in{
      "ncalls 50\nxtask 4\nxprtr 0.2\nhit 0\n"
      "target 3\nforce-miss true\ncache belady\n"
      "prefetcher oracle\nprepare queue\n"};
  const analyze::ScenarioSpec spec = analyze::parseScenarioSpec(in);
  EXPECT_EQ(spec.params.nCalls, 50u);
  EXPECT_DOUBLE_EQ(spec.params.xTask, 4.0);
  EXPECT_DOUBLE_EQ(spec.speedupTarget, 3.0);
  const DiagnosticSink sink = analyze::lintScenarioSpec(spec);
  EXPECT_EQ(sink.codes(),
            (std::vector<std::string>{"MD008", "MD009", "MD010"}))
      << sink.toText();
}

TEST(LintAll, AggregatesEveryTargetKind) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const fabric::Device device = fabric::makeXc2vp50();
  std::vector<std::uint8_t> bytes =
      bitstream::Builder{device}.buildModulePartial(plan.prr(0), 3).bytes();
  bytes[bytes.size() / 2] ^= 0xFF;
  model::Params params = goodParams();
  params.xDecision = 2.0;
  runtime::ScenarioOptions options;
  options.forceMiss = true;
  options.cachePolicy = runtime::CachePolicy::kBelady;

  analyze::LintTargets targets;
  targets.floorplan = &plan;
  targets.streamBytes = bytes;
  targets.device = &device;
  targets.params = &params;
  targets.scenario = &options;
  const DiagnosticSink sink = analyze::lintAll(targets);
  EXPECT_TRUE(sink.has("BS006")) << sink.toText();
  EXPECT_TRUE(sink.has("MD007")) << sink.toText();
  EXPECT_TRUE(sink.has("MD009")) << sink.toText();
}

TEST(LintAll, StreamWithoutDeviceThrows) {
  const std::vector<std::uint8_t> bytes(64, 0);
  analyze::LintTargets targets;
  targets.streamBytes = bytes;
  EXPECT_THROW((void)analyze::lintAll(targets), util::DomainError);
}

TEST(LintAll, UnresolvedNamesLintThroughTargets) {
  // String-boundary callers (CLI, spec files) lint the raw names through
  // LintTargets before converting to enums — the same MD011/MD012 the
  // spec front end reports.
  const std::string cacheName = "clock";
  analyze::LintTargets targets;
  targets.cachePolicyName = &cacheName;
  const DiagnosticSink sink = analyze::lintAll(targets);
  ASSERT_TRUE(sink.hasErrors());
  EXPECT_EQ(sink.firstError().code, "MD011");
}

TEST(LintAll, RunScenarioStrictHookUsesTheSameRules) {
  // runScenario() must reject exactly what the linter flags as an error.
  // Typed options cannot express MD011 any more, so the strict hook's
  // remaining reachable findings are warnings — it must NOT throw on them.
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 4, util::Bytes{1'000'000});
  runtime::ScenarioOptions options;
  options.sides = runtime::ScenarioSides::kPrtrOnly;
  options.forceMiss = true;
  options.cachePolicy = runtime::CachePolicy::kBelady;  // MD009 (warning)
  EXPECT_NO_THROW((void)runtime::runScenario(registry, workload, options));
}

// ---------------------------------------------------------------------------
// Every documented code is reachable
// ---------------------------------------------------------------------------

TEST(RuleCoverage, EveryDocumentedCodeIsEmittableByAChecker) {
  const fabric::Device device = fabric::makeXc2vp50();
  const fabric::Floorplan dual = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{device};
  std::set<std::string> reached;
  const auto collect = [&reached](const DiagnosticSink& sink) {
    for (const auto& code : sink.codes()) reached.insert(code);
  };

  {  // Floorplan: every FP code from one deliberately broken layout.
    std::vector<fabric::Region> regions{
        fabric::Region{"S", fabric::RegionRole::kStatic, 0, 60},  // FP001
        prr("S", 60, 10),       // FP010 dup name, FP003 PPC, FP004 overlap
        prr("LATE", 80, 20),    // FP002 out of the 83-column device
        prr("WIDE", 67, 16),    // eats the remaining fabric -> FP009
        prr("BARE", 0, 2),      // FP007 no macros (overlaps S too)
    };
    std::vector<fabric::BusMacro> macros{
        macro("GHOST", fabric::BusMacro::Direction::kLeftToRight, 0),  // FP005
        macro("WIDE", fabric::BusMacro::Direction::kLeftToRight, 70),  // FP006
        macro("S", fabric::BusMacro::Direction::kLeftToRight, 60),     // FP008
    };
    collect(lintFloorplanParts(device, regions, macros));
  }
  {  // Bitstream: header defects.
    collect(scanBytes(std::vector<std::uint8_t>(8, 0), device));  // BS001
    std::vector<std::uint8_t> bad = builder.buildModulePartial(
        dual.prr(0), 1).bytes();
    patchU32(bad, 0, 0);
    collect(scanBytes(bad, device));  // BS002
    bad = builder.buildModulePartial(dual.prr(0), 1).bytes();
    bad[4] = 9;
    collect(scanBytes(bad, device));  // BS003
    collect(scanBytes(builder.buildModulePartial(dual.prr(0), 1).bytes(),
                      fabric::makeXc2vp30()));  // BS004
  }
  {  // Bitstream: body defects.
    std::vector<std::uint8_t> bytes =
        builder.buildModulePartial(dual.prr(0), 1).bytes();
    patchU32(bytes, 20, 123);
    collect(scanBytes(bytes, device));  // BS005 (+BS006: CRC left stale)
    bytes = builder.buildFull(1).bytes();
    patchU32(bytes, 16, 3);
    fixCrc(bytes);
    collect(scanBytes(bytes, device));  // BS007
    bytes = builder.buildModulePartial(dual.prr(0), 1).bytes();
    const auto& enc = device.geometry().encoding();
    const std::size_t first = enc.partialOverheadBytes - 4;
    patchU32(bytes, first, device.geometry().totalFrames() + 1);  // BS008
    patchU32(bytes, first + enc.frameAddressBytes + enc.frameBytes,
             0);  // BS009: second address below the (huge) first
    bytes.insert(bytes.end() - 4, {1, 2, 3, 4});  // BS010
    fixCrc(bytes);
    collect(scanBytes(bytes, device));
    DiagnosticSink sink;
    const analyze::StreamScan scan = analyze::scanStream(
        builder.buildModulePartial(dual.prr(1), 1).bytes(), device, sink);
    analyze::checkStreamFitsFloorplan(scan, fabric::makeSinglePrrLayout(),
                                      sink);  // BS011
    collect(sink);
  }
  {  // Model domain + feasibility.
    model::Params p;
    p.nCalls = 0;          // MD001
    p.xTask = -1.0;        // MD002
    p.xPrtr = 2.0;         // MD003
    p.xControl = -1.0;     // MD004
    p.xDecision = -1.0;    // MD005
    p.hitRatio = 2.0;      // MD006
    DiagnosticSink sink;
    analyze::checkParams(p, sink);
    collect(sink);
    model::Params warned = goodParams();
    warned.xDecision = 2.0;  // MD007
    warned.xTask = 4.0;      // keeps MD008 reachable below
    DiagnosticSink sink2;
    analyze::checkParams(warned, sink2);
    analyze::checkSpeedupTarget(warned, 100.0, sink2);  // MD008
    collect(sink2);
  }
  {  // Scenario options (typed) + the string-boundary name checks.
    runtime::ScenarioOptions options;
    options.forceMiss = true;
    options.cachePolicy = runtime::CachePolicy::kBelady;        // MD009
    options.prefetcherKind = runtime::PrefetcherKind::kOracle;  // MD010
    DiagnosticSink sink;
    analyze::checkScenarioOptions(options, sink);
    collect(sink);
    DiagnosticSink sink2;
    analyze::checkScenarioNames("clock", "psychic", sink2);  // MD011, MD012
    collect(sink2);
  }
  {  // Fault plan + recovery policy.
    fault::Plan plan;
    plan.wordFlipRate = 2.0;                  // FT001 (and > 1e-2 -> FT010)
    plan.linkStallRate = 0.5;
    plan.stallDuration = util::Time::zero();  // FT002
    plan.arrival = fault::Arrival::kFixedPeriod;
    plan.fixedPeriod = 0;                     // FT003
    DiagnosticSink sink;
    analyze::checkFaultOptions(plan, config::RecoveryPolicy{}, sink);  // FT008
    collect(sink);
    config::RecoveryPolicy dead;
    dead.enabled = true;
    dead.maxRetries = 0;
    dead.ladder = false;       // FT009
    dead.backoffFactor = 0.5;  // FT006
    DiagnosticSink sink2;
    analyze::checkFaultOptions(fault::Plan{}, dead, sink2);
    collect(sink2);
    std::istringstream bad{"arrival sometimes\nverify maybe\n"};
    collect(analyze::lintFaultSpec(
        analyze::parseFaultSpec(bad)));  // FT004, FT005, FT007
  }
  {  // Fleet: one options object violating most FL rules at once, a second
     // for the rules the first masks, and an unparseable-name spec pass.
    fleet::FleetOptions bad;
    bad.cells = 0;                                // FL001
    bad.requests = 0;                             // FL002
    bad.offeredLoad = 0.0;                        // FL003 (masks FL012)
    bad.arrival = fleet::ArrivalProcess::kTrace;  // FL006: trace is empty
    bad.retry.maxAttempts = 0;                    // FL007
    bad.retry.budgetFraction = 0.6;               // FL013
    bad.breaker.consecutiveFailures = 0;          // FL008
    bad.hedge.enabled = true;
    bad.hedge.quantile = 1.5;                     // FL009
    bad.users = 0;                                // FL010
    bad.admission.maxQueueDepth = 0;              // FL011
    bad.degradedFraction = 0.5;                   // FL014: plan inactive
    bad.rateLimit.enabled = true;                 // FL016: rate left at 0
    bad.tracing.enabled = true;
    bad.tracing.sampleRate = -0.5;                // TR001
    bad.tracing.slowQuantile = 1.5;               // TR002
    bad.slo.enabled = true;
    bad.slo.objective = 1.5;                      // SL001
    bad.slo.windowPs = 0;                         // SL002
    bad.slo.fastWindows = 0;                      // SL003
    bad.slo.fastBurn = 0.0;                       // SL004
    DiagnosticSink sink;
    analyze::checkFleetOptions(bad, sink);
    collect(sink);

    fleet::FleetOptions saturated;
    saturated.offeredLoad = 1.5;  // FL012
    saturated.requests = 1'000'000;
    saturated.degradedFraction = 0.5;
    saturated.degradedFaults.icapAbortRate = 0.3;
    saturated.breaker.enabled = false;  // FL015
    saturated.tracing.enabled = true;
    saturated.tracing.sampleRate = 0.6;      // TR004 at 1M requests
    saturated.tracing.maxSampledPerCell = 0;  // TR003
    saturated.slo.enabled = true;
    saturated.slo.objective = 0.9999999;  // SL005: budget < 10 requests
    DiagnosticSink sink2;
    analyze::checkFleetOptions(saturated, sink2);
    collect(sink2);

    fleet::BladeProfile degenerate;
    degenerate.tasks.emplace_back();  // all-zero costs
    DiagnosticSink sink3;
    analyze::checkBladeProfile(degenerate, sink3);  // FL017
    collect(sink3);

    analyze::FleetSpec spec;
    spec.routing = "psychic";    // FL004
    spec.arrival = "sometimes";  // FL005
    collect(analyze::lintFleetSpec(spec));
  }
  {  // Request lanes: one synthetic process violating every RQ rule.
    const auto ps = [](long long v) { return util::Time::picoseconds(v); };
    verify::TraceProcess process;
    process.name = "fleet/cell0";
    process.spans = {
        {"rq:a", "request ok", '#', ps(0), ps(100)},
        {"rq:a", "attempt#1", '#', ps(10), ps(120)},  // RQ001 escapes root
        {"rq:a", "execute#1", '#', ps(5), ps(60)},    // RQ003 escapes attempt
        {"rq:a", "queue#2", '#', ps(20), ps(30)},     // RQ004 no attempt#2
        {"rq:b", "attempt#1", '#', ps(0), ps(10)},    // RQ002 no root
        {"rq:c", "request shed:queue", '#', ps(0), ps(5)},
        {"rq:c", "attempt#1", '#', ps(0), ps(5)},     // RQ006 shed dispatched
    };
    process.instants = {{"rq:a", "hedge:win", ps(50)},
                        {"rq:a", "hedge:win", ps(60)}};  // RQ005 two winners
    DiagnosticSink sink;
    verify::checkRequestLanes(process, sink);
    collect(sink);
  }
  {  // Races: feed the detector an event stream with every unordered pair.
    verify::RaceDetector detector;
    detector.access(1, "exec.cache.entry", true);
    detector.access(2, "exec.cache.entry", false);
    detector.access(3, "exec.cache.entry", true);
    std::thread other{[&detector] {
      detector.access(1, "exec.cache.entry", true);   // RC001 write/write
      detector.access(2, "exec.cache.entry", true);   // RC002 read -> write
      detector.access(3, "exec.cache.entry", false);  // RC003 write -> read
      detector.acquire(99);  // RC004: sync object never released
    }};
    other.join();
    DiagnosticSink sink;
    detector.report(sink);
    collect(sink);
  }
  {  // Timelines: one span list violating every physical invariant.
    const auto us = [](long long v) { return util::Time::microseconds(v); };
    const std::vector<sim::NamedSpan> spans{
        {"CPU", "late", '#', us(10), us(12)},
        {"CPU", "early", '#', us(0), us(3)},        // TL002 out of order
        {"CPU", "overlap", '#', us(1), us(2)},      // TL003 serial overlap
        {"CPU", "backwards", '#', us(20), us(15)},  // TL001 ends first
        {"PRR0", "config(sobel)", '#', us(0), us(10)},
        {"PRR0", "config(median)", '#', us(5), us(15)},  // TL004 residency
        {"config", "sobel", '#', us(0), us(10)},
        {"config", "median", '#', us(5), us(15)},  // TL005 ICAP exclusion
        {"HT-in", "in(a)", '#', us(0), us(10)},
        {"HT-in", "in(b)", '#', us(5), us(15)},  // TL006 link occupancy
        {"recovery", "retry", '#', us(100), us(110)},  // TL007 no config
    };
    DiagnosticSink sink;
    verify::checkSpans("synthetic", spans, sink);
    collect(sink);
  }
  {  // Determinism: trace diff plus a deliberately schedule-dependent
     // workload under the explorer (DT001), asked for more schedules than
     // one width-1 run can provide (DT003).
    const auto us = [](long long v) { return util::Time::microseconds(v); };
    const std::vector<verify::TraceProcess> left{
        {"prtr", {{"CPU", "task", '#', us(0), us(1)}}}};
    const std::vector<verify::TraceProcess> right{
        {"prtr", {{"CPU", "task", '#', us(0), us(2)}}}};
    DiagnosticSink sink;
    verify::compareTraces(left, right, sink);  // DT002
    verify::ExploreOptions explore;
    explore.widths = {1};
    explore.seedsPerWidth = 1;
    explore.minDistinctSchedules = 100;  // DT003
    int run = 0;
    explore.sweep = [&run] { return std::to_string(run++); };  // DT001
    (void)verify::exploreSchedules(explore, sink);
    collect(sink);
  }

  for (const analyze::RuleInfo& rule : analyze::ruleCatalog()) {
    EXPECT_TRUE(reached.count(rule.code))
        << "documented code " << rule.code << " was never emitted";
  }
}

}  // namespace
}  // namespace prtr
