// Tests for workload generation, locality properties, and CSV round-trips.
#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "tasks/workload.hpp"

namespace prtr::tasks {
namespace {

FunctionRegistry registry() { return makeExtendedFunctions(); }

TEST(WorkloadTest, RoundRobinCyclesAllFunctions) {
  const auto reg = registry();
  const Workload w = makeRoundRobinWorkload(reg, 24, util::Bytes{100});
  EXPECT_EQ(w.callCount(), 24u);
  EXPECT_EQ(w.distinctFunctions(), reg.size());
  for (std::size_t i = 0; i < w.calls.size(); ++i) {
    EXPECT_EQ(w.calls[i].functionIndex, i % reg.size());
  }
  EXPECT_EQ(w.totalBytes().count(), 2400u);
}

TEST(WorkloadTest, UniformCoversFunctions) {
  const auto reg = registry();
  util::Rng rng{3};
  const Workload w = makeUniformWorkload(reg, 2000, util::Bytes{64}, rng);
  EXPECT_EQ(w.distinctFunctions(), reg.size());
}

TEST(WorkloadTest, MarkovSelfBiasControlsRepeatRate) {
  const auto reg = registry();
  for (const double bias : {0.0, 0.5, 0.9}) {
    util::Rng rng{11};
    const Workload w = makeMarkovWorkload(reg, 20000, util::Bytes{64}, bias, rng);
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < w.calls.size(); ++i) {
      if (w.calls[i].functionIndex == w.calls[i - 1].functionIndex) ++repeats;
    }
    const double repeatRate =
        static_cast<double>(repeats) / static_cast<double>(w.callCount() - 1);
    // Expected repeat rate: bias + (1-bias)/n.
    const double expected =
        bias + (1.0 - bias) / static_cast<double>(reg.size());
    EXPECT_NEAR(repeatRate, expected, 0.02) << "bias=" << bias;
  }
}

TEST(WorkloadTest, PhasedRestrictsWorkingSet) {
  const auto reg = registry();
  util::Rng rng{7};
  const Workload w =
      makePhasedWorkload(reg, 1000, util::Bytes{64}, 100, 2, rng);
  for (std::size_t phase = 0; phase < 10; ++phase) {
    std::set<std::size_t> used;
    for (std::size_t i = phase * 100; i < (phase + 1) * 100; ++i) {
      used.insert(w.calls[i].functionIndex);
    }
    EXPECT_LE(used.size(), 2u);
  }
}

TEST(WorkloadTest, PhasedValidatesArguments) {
  const auto reg = registry();
  util::Rng rng{7};
  EXPECT_THROW(makePhasedWorkload(reg, 10, util::Bytes{1}, 0, 2, rng),
               util::DomainError);
  EXPECT_THROW(makePhasedWorkload(reg, 10, util::Bytes{1}, 5, 99, rng),
               util::DomainError);
}

TEST(WorkloadTest, MarkovValidatesBias) {
  const auto reg = registry();
  util::Rng rng{7};
  EXPECT_THROW(makeMarkovWorkload(reg, 10, util::Bytes{1}, 1.5, rng),
               util::DomainError);
}

TEST(WorkloadTest, CsvRoundTrip) {
  const auto reg = registry();
  util::Rng rng{13};
  const Workload w = makeUniformWorkload(reg, 50, util::Bytes{4096}, rng);
  const std::string csv = toCsv(w);
  const Workload back = workloadFromCsv("restored", csv, reg);
  EXPECT_EQ(back.calls, w.calls);
  EXPECT_EQ(back.name, "restored");
}

TEST(WorkloadTest, CsvRejectsOutOfRangeFunction) {
  const auto reg = registry();
  EXPECT_THROW(
      workloadFromCsv("bad", "functionIndex,dataBytes\n99,100\n", reg),
      util::DomainError);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const auto reg = registry();
  util::Rng a{99};
  util::Rng b{99};
  const Workload wa = makeMarkovWorkload(reg, 500, util::Bytes{1}, 0.7, a);
  const Workload wb = makeMarkovWorkload(reg, 500, util::Bytes{1}, 0.7, b);
  EXPECT_EQ(wa.calls, wb.calls);
}

}  // namespace
}  // namespace prtr::tasks
