// Behavioural tests for the image kernels (the hardware-function models).
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "tasks/hwfunction.hpp"
#include "tasks/image.hpp"
#include "tasks/kernels.hpp"

namespace prtr::tasks {
namespace {

TEST(ImageTest, ConstructionAndAccess) {
  Image img{8, 4, 7};
  EXPECT_EQ(img.width(), 8u);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.pixelCount(), 32u);
  EXPECT_EQ(img.sizeBytes().count(), 32u);
  EXPECT_EQ(img.at(3, 2), 7);
  img.at(3, 2) = 99;
  EXPECT_EQ(img.at(3, 2), 99);
  EXPECT_THROW((void)img.at(8, 0), util::DomainError);
}

TEST(ImageTest, ClampedAccessReplicatesBorder) {
  Image img = makeGradientImage(10, 10);
  EXPECT_EQ(img.atClamped(-5, 3), img.at(0, 3));
  EXPECT_EQ(img.atClamped(50, 3), img.at(9, 3));
  EXPECT_EQ(img.atClamped(4, -1), img.at(4, 0));
}

TEST(ImageTest, GeneratorsProduceExpectedStatistics) {
  util::Rng rng{5};
  const Image noise = makeNoiseImage(64, 64, rng);
  EXPECT_NEAR(noise.meanIntensity(), 127.5, 5.0);
  const Image grad = makeGradientImage(256, 4);
  EXPECT_EQ(grad.at(0, 0), 0);
  EXPECT_EQ(grad.at(255, 0), 255);
  const Image checker = makeCheckerboardImage(16, 16, 4);
  EXPECT_EQ(checker.at(0, 0), 255);
  EXPECT_EQ(checker.at(4, 0), 0);
}

TEST(MedianTest, RemovesSaltAndPepperNoise) {
  util::Rng rng{17};
  const Image noisy = makeSaltPepperImage(64, 64, 128, 0.05, rng);
  const Image filtered = kernels::medianFilter3x3(noisy);
  // Sparse impulses vanish: every pixel returns to the base level.
  int clean = 0;
  for (const auto p : filtered.pixels()) {
    if (p == 128) ++clean;
  }
  EXPECT_GT(static_cast<double>(clean) /
                static_cast<double>(filtered.pixelCount()),
            0.99);
}

TEST(MedianTest, ConstantImageIsFixedPoint) {
  const Image flat{32, 32, 42};
  EXPECT_EQ(kernels::medianFilter3x3(flat), flat);
}

TEST(SobelTest, ZeroOnConstantImage) {
  const Image flat{32, 32, 200};
  const Image edges = kernels::sobelFilter(flat);
  for (const auto p : edges.pixels()) EXPECT_EQ(p, 0);
}

TEST(SobelTest, DetectsVerticalEdge) {
  Image img{32, 32, 0};
  for (std::size_t y = 0; y < 32; ++y) {
    for (std::size_t x = 16; x < 32; ++x) img.at(x, y) = 255;
  }
  const Image edges = kernels::sobelFilter(img);
  // Strong response along the edge column, none far away.
  EXPECT_GT(edges.at(16, 16), 200);
  EXPECT_EQ(edges.at(4, 16), 0);
  EXPECT_EQ(edges.at(28, 16), 0);
}

TEST(SmoothingTest, ReducesVariance) {
  util::Rng rng{23};
  const Image noise = makeNoiseImage(64, 64, rng);
  const Image smooth = kernels::smoothingFilter3x3(noise);
  EXPECT_LT(smooth.variance(), noise.variance() * 0.4);
  EXPECT_NEAR(smooth.meanIntensity(), noise.meanIntensity(), 3.0);
}

TEST(SmoothingTest, ConstantImageIsFixedPoint) {
  const Image flat{16, 16, 99};
  EXPECT_EQ(kernels::smoothingFilter3x3(flat), flat);
}

TEST(GaussianTest, PreservesMeanAndReducesVariance) {
  util::Rng rng{29};
  const Image noise = makeNoiseImage(64, 64, rng);
  const Image blurred = kernels::gaussianBlur5x5(noise);
  EXPECT_LT(blurred.variance(), noise.variance() * 0.3);
  EXPECT_NEAR(blurred.meanIntensity(), noise.meanIntensity(), 3.0);
}

TEST(ThresholdTest, Binarizes) {
  const Image grad = makeGradientImage(256, 2);
  const Image bin = kernels::threshold(grad, 128);
  for (const auto p : bin.pixels()) EXPECT_TRUE(p == 0 || p == 255);
  EXPECT_EQ(bin.at(0, 0), 0);
  EXPECT_EQ(bin.at(255, 0), 255);
}

TEST(HistogramEqualizeTest, SpreadsGradientToFullRange) {
  const Image grad = makeGradientImage(64, 64);
  const Image eq = kernels::histogramEqualize(grad);
  std::uint8_t lo = 255;
  std::uint8_t hi = 0;
  for (const auto p : eq.pixels()) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 255);
}

TEST(HistogramEqualizeTest, ConstantImageUnchanged) {
  const Image flat{16, 16, 55};
  EXPECT_EQ(kernels::histogramEqualize(flat), flat);
}

TEST(MorphologyTest, ErodeDilateDuality) {
  util::Rng rng{31};
  const Image img = makeNoiseImage(32, 32, rng);
  const Image eroded = kernels::erode3x3(img);
  const Image dilated = kernels::dilate3x3(img);
  for (std::size_t i = 0; i < img.pixels().size(); ++i) {
    EXPECT_LE(eroded.pixels()[i], img.pixels()[i]);
    EXPECT_GE(dilated.pixels()[i], img.pixels()[i]);
  }
  // Duality: erode(img) == 255 - dilate(255 - img).
  const Image dual = kernels::invert(kernels::dilate3x3(kernels::invert(img)));
  EXPECT_EQ(eroded, dual);
}

TEST(InvertTest, IsInvolution) {
  util::Rng rng{37};
  const Image img = makeNoiseImage(16, 16, rng);
  EXPECT_EQ(kernels::invert(kernels::invert(img)), img);
}

TEST(RegistryTest, PaperFunctionsMatchTable1) {
  const FunctionRegistry registry = makePaperFunctions();
  ASSERT_EQ(registry.size(), 3u);
  const HwFunction& median = registry.byName("median");
  EXPECT_EQ(median.resources.luts, 3141u);
  EXPECT_EQ(median.resources.ffs, 3270u);
  const HwFunction& sobel = registry.byName("sobel");
  EXPECT_EQ(sobel.resources.luts, 1159u);
  EXPECT_EQ(sobel.resources.ffs, 1060u);
  const HwFunction& smoothing = registry.byName("smoothing");
  EXPECT_EQ(smoothing.resources.luts, 2053u);
  EXPECT_EQ(smoothing.resources.ffs, 1601u);
  for (const HwFunction& fn : registry.all()) {
    EXPECT_NEAR(fn.fabricClock.toMegahertz(), 200.0, 1e-9);
  }
}

TEST(RegistryTest, LookupsAndErrors) {
  const FunctionRegistry registry = makeExtendedFunctions();
  EXPECT_EQ(registry.size(), 8u);
  EXPECT_EQ(registry.byId(1002).name, "sobel");
  EXPECT_EQ(registry.indexOf(1003), std::optional<std::size_t>{2});
  EXPECT_EQ(registry.indexOf(9999), std::nullopt);
  EXPECT_THROW((void)registry.byName("missing"), util::DomainError);
  EXPECT_THROW((void)registry.at(99), util::DomainError);
}

TEST(RegistryTest, ComputeTimeAtPipelineRate) {
  const FunctionRegistry registry = makePaperFunctions();
  const HwFunction& fn = registry.at(0);
  // 200 M pixels at 1 cycle/pixel and 200 MHz = 1 s.
  EXPECT_NEAR(fn.computeTime(util::Bytes{200'000'000}).toSeconds(), 1.0, 1e-9);
}

TEST(RegistryTest, OccupancyReflectsRegionPressure) {
  const FunctionRegistry registry = makePaperFunctions();
  const fabric::ResourceVec small{4000, 4000, 10, 10, 0};
  const fabric::ResourceVec large{40000, 40000, 100, 100, 0};
  const double tight = registry.occupancy(0, small);
  const double loose = registry.occupancy(0, large);
  EXPECT_GT(tight, loose);
  EXPECT_LE(tight, 1.0);
  EXPECT_GE(loose, 0.05);
}

TEST(RegistryTest, BehaviouralModelsAreWired) {
  const FunctionRegistry registry = makePaperFunctions();
  const Image flat{8, 8, 100};
  for (const HwFunction& fn : registry.all()) {
    ASSERT_TRUE(fn.behaviour);
    const Image out = fn.behaviour(flat);
    EXPECT_EQ(out.width(), flat.width());
  }
}

TEST(RegistryTest, SyntheticFunctionsForModelSweeps) {
  const FunctionRegistry registry = makeSyntheticFunctions(5, 2.0);
  EXPECT_EQ(registry.size(), 5u);
  EXPECT_NEAR(registry.at(0).computeTime(util::Bytes{100}).toSeconds(),
              200.0 / 200e6, 1e-12);
  EXPECT_FALSE(registry.at(0).behaviour);
}

}  // namespace
}  // namespace prtr::tasks
