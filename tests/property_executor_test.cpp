// Parameterized property sweeps over the executors: across bases, layouts,
// and task sizes, the simulation must (a) never beat the analytical model,
// (b) stay within a documented tolerance of it, (c) conserve its own time
// breakdown, and (d) be bit-deterministic.
#include <gtest/gtest.h>

#include <tuple>

#include "model/model.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

namespace prtr::runtime {
namespace {

using model::ConfigTimeBasis;

using SweepParam = std::tuple<ConfigTimeBasis, double /*xTask*/>;

class ExecutorSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static tasks::Workload workloadFor(const tasks::FunctionRegistry& registry,
                                     ConfigTimeBasis basis, double xTask,
                                     std::size_t calls) {
    sim::Simulator sim;
    const xd1::Node node{sim};
    const model::ConfigTimes times = model::configTimes(node);
    const util::Bytes bytes = model::bytesForTaskTime(
        node, registry.byName("median"),
        util::Time::seconds(xTask * times.full(basis).toSeconds()));
    return tasks::makeRoundRobinWorkload(registry, calls, bytes);
  }
};

TEST_P(ExecutorSweep, SimulationBoundedByAndNearModel) {
  const auto [basis, xTask] = GetParam();
  const auto registry = tasks::makePaperFunctions();
  const auto workload = workloadFor(registry, basis, xTask, 50);

  ScenarioOptions so;
  so.basis = basis;
  so.forceMiss = true;
  const ScenarioResult result = runScenario(registry, workload, so);

  // The model's overlap is an upper bound on what the dual-channel
  // hardware can implement.
  EXPECT_LE(result.speedup, result.modelSpeedup * 1.002);
  // And the simulator tracks it within the documented tolerance.
  EXPECT_LT(result.modelError, 0.13) << "basis=" << toString(basis)
                                     << " xTask=" << xTask;
  EXPECT_GE(result.speedup, 1.0);
}

TEST_P(ExecutorSweep, BreakdownConservation) {
  const auto [basis, xTask] = GetParam();
  const auto registry = tasks::makePaperFunctions();
  const auto workload = workloadFor(registry, basis, xTask, 25);

  ScenarioOptions so;
  so.sides = ScenarioSides::kPrtrOnly;
  so.basis = basis;
  so.forceMiss = true;
  const ExecutionReport report = runScenario(registry, workload, so).prtr;

  // Categories never exceed the total (some phases overlap configs).
  const double categories =
      (report.initialConfig + report.configStall + report.decisionTime +
       report.controlTime + report.inputTime + report.computeTime +
       report.outputTime)
          .toSeconds();
  EXPECT_LE(categories, report.total.toSeconds() * 1.000001);
  EXPECT_EQ(report.calls, workload.callCount());
  EXPECT_GE(report.hitRatio(), 0.0);
  EXPECT_LE(report.hitRatio(), 1.0);
}

TEST_P(ExecutorSweep, Determinism) {
  const auto [basis, xTask] = GetParam();
  const auto registry = tasks::makePaperFunctions();
  const auto workload = workloadFor(registry, basis, xTask, 20);

  ScenarioOptions so;
  so.sides = ScenarioSides::kPrtrOnly;
  so.basis = basis;
  so.forceMiss = true;
  const ExecutionReport a = runScenario(registry, workload, so).prtr;
  const ExecutionReport b = runScenario(registry, workload, so).prtr;
  EXPECT_EQ(a.total, b.total);  // exact, integer picoseconds
  EXPECT_EQ(a.configurations, b.configurations);
  EXPECT_EQ(a.configStall, b.configStall);
}

INSTANTIATE_TEST_SUITE_P(
    BasisTimesTask, ExecutorSweep,
    ::testing::Combine(::testing::Values(ConfigTimeBasis::kEstimated,
                                         ConfigTimeBasis::kMeasured),
                       ::testing::Values(0.01, 0.1, 0.5, 2.0, 10.0)),
    [](const ::testing::TestParamInfo<SweepParam>& paramInfo) {
      std::string name = std::get<0>(paramInfo.param) == ConfigTimeBasis::kEstimated
                             ? "est"
                             : "meas";
      name += "_x";
      for (const char c : std::to_string(std::get<1>(paramInfo.param))) {
        name += (c == '.') ? 'p' : c;
      }
      return name;
    });

class FrtrLinearity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrtrLinearity, TotalScalesLinearlyWithCalls) {
  // FRTR has no cross-call state: T(n) = n * T(1) exactly (modulo the
  // fixed per-run bookkeeping, which is zero here).
  const std::size_t n = GetParam();
  const auto registry = tasks::makePaperFunctions();
  tasks::Workload one{"one", {tasks::TaskCall{0, util::Bytes{5'000'000}}}};
  tasks::Workload many{"many", {}};
  for (std::size_t i = 0; i < n; ++i) many.calls.push_back(one.calls[0]);

  ScenarioOptions so;
  so.forceMiss = true;

  auto runFrtr = [&](const tasks::Workload& w) {
    sim::Simulator sim;
    xd1::Node node{sim};
    bitstream::Library library{
        node.floorplan(),
        registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};
    ExecutorOptions eo;
    eo.forceMiss = true;
    FrtrExecutor frtr{node, registry, library, eo};
    return frtr.run(w);
  };
  const auto tOne = runFrtr(one).total;
  const auto tMany = runFrtr(many).total;
  EXPECT_EQ(tMany.ps(), tOne.ps() * static_cast<std::int64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(CallCounts, FrtrLinearity,
                         ::testing::Values(2, 7, 31));

class LayoutSweep : public ::testing::TestWithParam<xd1::Layout> {};

TEST_P(LayoutSweep, PrtrBeatsFrtrOnEveryLayout) {
  const xd1::Layout layout = GetParam();
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 30, util::Bytes{20'000'000});
  ScenarioOptions so;
  so.layout = layout;
  so.forceMiss = true;
  const ScenarioResult result = runScenario(registry, workload, so);
  EXPECT_GT(result.speedup, 1.0) << toString(layout);
}

TEST_P(LayoutSweep, FinerLayoutsConfigureFaster) {
  // Partial bitstream size, and hence configuration time, shrinks with
  // the region: single > dual > quad.
  sim::Simulator sim;
  xd1::NodeConfig cfg;
  cfg.layout = GetParam();
  const xd1::Node node{sim, cfg};
  const util::Bytes partial =
      node.floorplan().prr(0).partialBitstreamBytes(node.device());
  switch (GetParam()) {
    case xd1::Layout::kSinglePrr:
      EXPECT_GT(partial.count(), 800'000u);
      break;
    case xd1::Layout::kDualPrr:
      EXPECT_GT(partial.count(), 390'000u);
      EXPECT_LT(partial.count(), 420'000u);
      break;
    case xd1::Layout::kQuadPrr:
      EXPECT_LT(partial.count(), 320'000u);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, LayoutSweep,
                         ::testing::Values(xd1::Layout::kSinglePrr,
                                           xd1::Layout::kDualPrr,
                                           xd1::Layout::kQuadPrr),
                         [](const auto& paramInfo) {
                           switch (paramInfo.param) {
                             case xd1::Layout::kSinglePrr: return "single";
                             case xd1::Layout::kDualPrr: return "dual";
                             case xd1::Layout::kQuadPrr: return "quad";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace prtr::runtime
