// Unit tests for the strongly typed quantities in util/units.hpp.
#include "util/units.hpp"

#include <gtest/gtest.h>

namespace prtr::util {
namespace {

TEST(TimeTest, ConstructionAndConversion) {
  EXPECT_EQ(Time::zero().ps(), 0);
  EXPECT_EQ(Time::nanoseconds(3).ps(), 3'000);
  EXPECT_EQ(Time::microseconds(2).ps(), 2'000'000);
  EXPECT_EQ(Time::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Time::milliseconds(36).toSeconds(), 0.036);
  EXPECT_DOUBLE_EQ(Time::milliseconds(36).toMilliseconds(), 36.0);
}

TEST(TimeTest, SecondsRoundTripIsExactToPicosecond) {
  const Time t = Time::seconds(1.6780425);
  EXPECT_NEAR(t.toSeconds(), 1.6780425, 1e-12);
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::milliseconds(10);
  const Time b = Time::milliseconds(4);
  EXPECT_EQ((a + b).ps(), Time::milliseconds(14).ps());
  EXPECT_EQ((a - b).ps(), Time::milliseconds(6).ps());
  EXPECT_EQ((a * 3).ps(), Time::milliseconds(30).ps());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  EXPECT_EQ((a * 0.5).ps(), Time::milliseconds(5).ps());
}

TEST(TimeTest, ToStringPicksSensibleUnits) {
  EXPECT_EQ(Time::seconds(2.0).toString(), "2 s");
  EXPECT_EQ(Time::milliseconds(36).toString(), "36 ms");
  EXPECT_EQ(Time::microseconds(10).toString(), "10 us");
  EXPECT_EQ(Time::nanoseconds(500).toString(), "500 ns");
  EXPECT_EQ(Time::picoseconds(7).toString(), "7 ps");
}

TEST(BytesTest, BasicsAndUnits) {
  EXPECT_EQ(Bytes::kibi(2).count(), 2048u);
  EXPECT_EQ(Bytes::mebi(4).count(), 4u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(Bytes{2'381'764}.toMegabytes(), 2.381764);
  EXPECT_EQ((Bytes{100} + Bytes{28}).count(), 128u);
  EXPECT_EQ((Bytes{100} - Bytes{28}).count(), 72u);
  EXPECT_EQ((Bytes{3} * 4).count(), 12u);
  EXPECT_LT(Bytes{1}, Bytes{2});
}

TEST(DataRateTest, TransferTimeMatchesPaperEstimates) {
  // Table 2: 2,381,764 bytes through 66 MB/s SelectMap = 36.09 ms.
  const DataRate selectMap = DataRate::megabytesPerSecond(66);
  const Time t = selectMap.transferTime(Bytes{2'381'764});
  EXPECT_NEAR(t.toMilliseconds(), 36.09, 0.01);
}

TEST(DataRateTest, ScaledEfficiency) {
  const DataRate raw = DataRate::gigabytesPerSecond(1.6);
  EXPECT_NEAR(raw.scaled(0.875).toMegabytesPerSecond(), 1400.0, 1e-9);
}

TEST(FrequencyTest, PeriodAndCycles) {
  const Frequency f = Frequency::megahertz(200);
  EXPECT_NEAR(f.period().toSeconds(), 5e-9, 1e-15);
  EXPECT_NEAR(f.cycles(200'000'000).toSeconds(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.toMegahertz(), 200.0);
}

TEST(FrequencyTest, IcapByteRate) {
  // 8-bit ICAP at 66 MHz: 66 MB/s raw.
  const Frequency icap = Frequency::megahertz(66);
  const double bytesPerSecond = icap.hertz();
  EXPECT_NEAR(bytesPerSecond, 66e6, 1.0);
}

}  // namespace
}  // namespace prtr::util
