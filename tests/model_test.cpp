// Tests for equations (1)-(7): hand-computed values, limits, and the
// paper's headline numbers (7x estimated / ~86x measured peaks, 2x cap).
#include <gtest/gtest.h>

#include "model/model.hpp"
#include "util/error.hpp"

namespace prtr::model {
namespace {

Params baseParams() {
  Params p;
  p.nCalls = 100;
  p.xTask = 0.5;
  p.xPrtr = 0.1;
  p.xControl = 0.0;
  p.xDecision = 0.0;
  p.hitRatio = 0.0;
  return p;
}

TEST(ParamsTest, ValidationRejectsBadDomains) {
  Params p = baseParams();
  p.xTask = 0.0;
  EXPECT_THROW(p.validate(), util::DomainError);
  p = baseParams();
  p.xPrtr = 1.5;  // a partial config cannot exceed the full config
  EXPECT_THROW(p.validate(), util::DomainError);
  p = baseParams();
  p.hitRatio = -0.1;
  EXPECT_THROW(p.validate(), util::DomainError);
  p = baseParams();
  p.nCalls = 0;
  EXPECT_THROW(p.validate(), util::DomainError);
  EXPECT_NO_THROW(baseParams().validate());
}

TEST(AbsoluteParamsTest, NormalizationDividesByTFrtr) {
  AbsoluteParams abs;
  abs.nCalls = 10;
  abs.tFrtr = util::Time::milliseconds(100);
  abs.tPrtr = util::Time::milliseconds(10);
  abs.tTask = util::Time::milliseconds(50);
  abs.tControl = util::Time::microseconds(100);
  abs.tDecision = util::Time::microseconds(50);
  abs.hitRatio = 0.25;
  const Params p = abs.normalized();
  EXPECT_DOUBLE_EQ(p.xPrtr, 0.1);
  EXPECT_DOUBLE_EQ(p.xTask, 0.5);
  EXPECT_DOUBLE_EQ(p.xControl, 1e-3);
  EXPECT_DOUBLE_EQ(p.xDecision, 5e-4);
  EXPECT_DOUBLE_EQ(p.missRatio(), 0.75);
}

TEST(Eq2Test, FrtrTotalHandComputed) {
  Params p = baseParams();
  p.nCalls = 100;
  p.xTask = 0.5;
  p.xControl = 0.01;
  // X_total = n (1 + Xc + Xt) = 100 * 1.51 = 151.
  EXPECT_DOUBLE_EQ(frtrTotalNormalized(p), 151.0);
}

TEST(Eq5Test, PrtrTotalHandComputedAllMisses) {
  Params p = baseParams();  // H = 0
  // X_total = 1 + 0 + 100 * (0 + 1*max(0.5, 0.1)) = 1 + 50 = 51.
  EXPECT_DOUBLE_EQ(prtrTotalNormalized(p), 51.0);
}

TEST(Eq5Test, PrtrTotalHandComputedMixed) {
  Params p = baseParams();
  p.hitRatio = 0.6;
  p.xControl = 0.01;
  p.xDecision = 0.02;
  // per call: 0.01 + 0.4*max(0.52, 0.1) + 0.6*0.52 = 0.01+0.208+0.312 = 0.53
  // total: 1 + 0.02 + 100*0.53 = 54.02
  EXPECT_NEAR(prtrTotalNormalized(p), 54.02, 1e-12);
}

TEST(Eq5Test, ConfigDominantMissesPayXPrtr) {
  Params p = baseParams();
  p.xTask = 0.05;  // below X_PRTR = 0.1
  // per call: max(0.05, 0.1) = 0.1; total = 1 + 100*0.1 = 11.
  EXPECT_DOUBLE_EQ(prtrTotalNormalized(p), 11.0);
}

TEST(Eq6Test, SpeedupRatio) {
  Params p = baseParams();
  // S = 100*1.5 / 51.
  EXPECT_NEAR(speedup(p), 150.0 / 51.0, 1e-12);
}

TEST(Eq7Test, AsymptoteIsLimitOfEq6) {
  Params p = baseParams();
  const double sInf = asymptoticSpeedup(p);
  p.nCalls = 100'000'000;
  EXPECT_NEAR(speedup(p), sInf, 1e-5);
  // And the finite-call speedup approaches it from below (the initial full
  // configuration penalizes short runs).
  p.nCalls = 10;
  EXPECT_LT(speedup(p), sInf);
}

TEST(Eq7Test, TaskDominantCapsAtTwo) {
  // Paper section 3.1: for X_task > 1, S cannot exceed 2 for any H.
  for (const double h : {0.0, 0.3, 0.7, 1.0}) {
    for (const double xTask : {1.0, 2.0, 10.0, 100.0}) {
      Params p = baseParams();
      p.xTask = xTask;
      p.hitRatio = h;
      const double s = asymptoticSpeedup(p);
      EXPECT_LE(s, 2.0 + 1e-12) << "h=" << h << " xTask=" << xTask;
      EXPECT_NEAR(s, 1.0 + 1.0 / xTask, 1e-12);
    }
  }
}

TEST(Eq7Test, PerfectHitRatioIsTaskOnly) {
  Params p = baseParams();
  p.hitRatio = 1.0;
  // S_inf = (1 + Xt) / Xt, independent of X_PRTR.
  for (const double xPrtr : {0.01, 0.1, 0.9}) {
    p.xPrtr = xPrtr;
    EXPECT_NEAR(asymptoticSpeedup(p), (1.0 + p.xTask) / p.xTask, 1e-12);
  }
}

TEST(Eq7Test, ZeroHitPeaksAtXPrtr) {
  // H = 0: the peak sits exactly at X_task = X_PRTR (paper Figure 5).
  Params p = baseParams();
  p.xPrtr = 0.17;  // estimated dual-PRR (Table 2)
  p.xTask = 0.17;
  const double peak = asymptoticSpeedup(p);
  EXPECT_NEAR(peak, (1.0 + 0.17) / 0.17, 1e-12);  // ~6.88 ("7 times")
  EXPECT_NEAR(peak, 6.88, 0.01);
  for (const double xTask : {0.05, 0.1, 0.3, 0.9}) {
    p.xTask = xTask;
    EXPECT_LT(asymptoticSpeedup(p), peak);
  }
}

TEST(Eq7Test, MeasuredDualPrrPeakNear87x) {
  // Paper section 5: "the peak performance ... can reach up to 87x".
  Params p = baseParams();
  p.xPrtr = 19.77 / 1678.04;  // measured dual-PRR normalization
  p.xTask = p.xPrtr;
  const double peak = asymptoticSpeedup(p);
  EXPECT_GT(peak, 80.0);
  EXPECT_LT(peak, 90.0);
}

TEST(Eq7Test, OverheadsReduceSpeedup) {
  // Paper: "These overheads will reduce the final performance if non-zero
  // values are considered."
  Params ideal = baseParams();
  Params withControl = ideal;
  withControl.xControl = 0.05;
  Params withDecision = ideal;
  withDecision.xDecision = 0.05;
  EXPECT_LT(asymptoticSpeedup(withControl), asymptoticSpeedup(ideal));
  EXPECT_LT(asymptoticSpeedup(withDecision), asymptoticSpeedup(ideal));
}

TEST(Eq7Test, MonotonicallyDecreasingForHighH) {
  Params p = baseParams();
  p.hitRatio = 0.99;
  double prev = 1e300;
  for (double xTask = 0.001; xTask < 100.0; xTask *= 1.5) {
    p.xTask = xTask;
    const double s = asymptoticSpeedup(p);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(AbsoluteTimesTest, ScaleBackByTFrtr) {
  AbsoluteParams abs;
  abs.nCalls = 10;
  abs.tFrtr = util::Time::milliseconds(100);
  abs.tPrtr = util::Time::milliseconds(10);
  abs.tTask = util::Time::milliseconds(50);
  const util::Time frtr = frtrTotalTime(abs);
  // 10 * (100 + 0 + 50) ms = 1.5 s.
  EXPECT_NEAR(frtr.toSeconds(), 1.5, 1e-9);
  const util::Time prtr = prtrTotalTime(abs);
  // 100 ms + 10 * max(50, 10) ms = 0.6 s.
  EXPECT_NEAR(prtr.toSeconds(), 0.6, 1e-9);
}

TEST(SpeedupMonotonicityTest, MoreHitsNeverHurt) {
  // Property: S_inf is non-decreasing in H whenever X_task < X_PRTR... and
  // exactly flat when X_task >= X_PRTR (misses already pay only the task).
  for (const double xPrtr : {0.05, 0.2, 0.6}) {
    for (double xTask = 0.01; xTask < 2.0; xTask *= 1.7) {
      double prev = -1.0;
      for (double h = 0.0; h <= 1.0; h += 0.1) {
        Params p = baseParams();
        p.xPrtr = xPrtr;
        p.xTask = xTask;
        p.hitRatio = h;
        const double s = asymptoticSpeedup(p);
        EXPECT_GE(s, prev - 1e-12);
        prev = s;
      }
    }
  }
}

}  // namespace
}  // namespace prtr::model
