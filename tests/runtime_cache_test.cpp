// Tests for the configuration cache policies (LRU/LFU/FIFO/Random/Belady).
#include <gtest/gtest.h>

#include "runtime/cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::runtime {
namespace {

/// Replays `sequence` against `cache`, installing on every miss (no
/// avoided slot), and returns the hit count.
std::uint64_t replay(ConfigCache& cache, const std::vector<ModuleId>& sequence) {
  for (const ModuleId m : sequence) {
    if (auto* belady = dynamic_cast<BeladyCache*>(&cache)) belady->advance();
    if (!cache.access(m)) {
      const auto slot = cache.chooseSlot(m, std::nullopt);
      cache.install(*slot, m);
    }
  }
  return cache.stats().hits;
}

TEST(ConfigCacheTest, BasicsAndLookup) {
  LruCache cache{2};
  EXPECT_EQ(cache.slotCount(), 2u);
  EXPECT_EQ(cache.lookup(7), std::nullopt);
  EXPECT_FALSE(cache.access(7).has_value());  // miss
  cache.install(0, 7);
  EXPECT_EQ(cache.lookup(7), std::optional<std::size_t>{0});
  EXPECT_TRUE(cache.access(7).has_value());  // hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hitRatio(), 0.5);
}

TEST(ConfigCacheTest, PrefersEmptySlots) {
  LruCache cache{3};
  cache.install(0, 1);
  const auto slot = cache.chooseSlot(2, std::nullopt);
  ASSERT_TRUE(slot.has_value());
  EXPECT_NE(*slot, 0u);  // empty slot preferred over eviction
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ConfigCacheTest, AvoidExcludesExecutingSlot) {
  LruCache cache{2};
  cache.install(0, 1);
  cache.install(1, 2);
  const auto slot = cache.chooseSlot(3, /*avoid=*/0);
  EXPECT_EQ(slot, std::optional<std::size_t>{1});
}

TEST(ConfigCacheTest, SingleSlotWithAvoidReturnsNothing) {
  LruCache cache{1};
  cache.install(0, 1);
  EXPECT_EQ(cache.chooseSlot(2, 0), std::nullopt);
}

TEST(ConfigCacheTest, InvalidateAllEmptiesSlots) {
  LruCache cache{2};
  cache.install(0, 1);
  cache.install(1, 2);
  cache.invalidateAll();
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  EXPECT_EQ(cache.slotContent(0), std::nullopt);
}

TEST(LruTest, EvictsLeastRecentlyUsed) {
  LruCache cache{2};
  (void)cache.access(1);
  cache.install(0, 1);
  (void)cache.access(2);
  cache.install(1, 2);
  (void)cache.access(1);  // touch module 1; module 2 becomes LRU
  const auto victim = cache.chooseSlot(3, std::nullopt);
  EXPECT_EQ(victim, std::optional<std::size_t>{1});
}

TEST(LfuTest, EvictsLeastFrequentlyUsed) {
  LfuCache cache{2};
  (void)cache.access(1);
  cache.install(0, 1);
  (void)cache.access(2);
  cache.install(1, 2);
  (void)cache.access(1);
  (void)cache.access(1);
  (void)cache.access(2);
  const auto victim = cache.chooseSlot(3, std::nullopt);
  EXPECT_EQ(victim, std::optional<std::size_t>{1});  // module 2 used less
}

TEST(FifoTest, EvictsOldestInstall) {
  FifoCache cache{2};
  (void)cache.access(1);
  cache.install(0, 1);
  (void)cache.access(2);
  cache.install(1, 2);
  // Touching module 1 does not rescue it under FIFO.
  (void)cache.access(1);
  (void)cache.access(1);
  const auto victim = cache.chooseSlot(3, std::nullopt);
  EXPECT_EQ(victim, std::optional<std::size_t>{0});
}

TEST(RandomTest, DeterministicForSeed) {
  RandomCache a{4, 99};
  RandomCache b{4, 99};
  for (ModuleId m = 1; m <= 4; ++m) {
    a.install(static_cast<std::size_t>(m - 1), m);
    b.install(static_cast<std::size_t>(m - 1), m);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.chooseSlot(100, std::nullopt), b.chooseSlot(100, std::nullopt));
  }
}

TEST(BeladyTest, BeatsOrMatchesEveryOnlinePolicyOnLoopingSequence) {
  // Cyclic access over 3 modules with 2 slots: the adversarial case where
  // LRU degenerates; Belady must dominate.
  std::vector<ModuleId> seq;
  for (std::uint64_t i = 0; i < 300; ++i) seq.push_back(1 + (i % 3));

  BeladyCache belady{2, seq};
  LruCache lru{2};
  LfuCache lfu{2};
  FifoCache fifo{2};
  const auto beladyHits = replay(belady, seq);
  EXPECT_GE(beladyHits, replay(lru, seq));
  EXPECT_GE(beladyHits, replay(lfu, seq));
  EXPECT_GE(beladyHits, replay(fifo, seq));
  // LRU on a 3-cycle with capacity 2 hits never; Belady hits ~half.
  EXPECT_EQ(lru.stats().hits, 0u);
  EXPECT_GT(beladyHits, 100u);
}

TEST(BeladyTest, DominatesOnSkewedWorkload) {
  util::Rng rng{44};
  std::vector<ModuleId> seq;
  for (int i = 0; i < 2000; ++i) {
    // 60% module 1, rest spread over 2..5.
    seq.push_back(rng.chance(0.6) ? 1 : 2 + rng.below(4));
  }
  BeladyCache belady{2, seq};
  LruCache lru{2};
  EXPECT_GE(replay(belady, seq), replay(lru, seq));
}

TEST(CacheFactoryTest, BuildsEveryPolicy) {
  for (const CachePolicy policy : allCachePolicies()) {
    const auto cache = makeCache(policy, 2, {1, 2, 3});
    EXPECT_EQ(cache->slotCount(), 2u);
  }
}

TEST(CacheFactoryTest, PolicyNames) {
  EXPECT_EQ(makeCache(CachePolicy::kLru, 2)->policyName(), "LRU");
  EXPECT_EQ(makeCache(CachePolicy::kBelady, 2)->policyName(), "Belady");
}

TEST(CacheFactoryTest, DeprecatedStringFactoryStillWorks) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(makeCache("lru", 2)->policyName(), "LRU");
  EXPECT_THROW(makeCache("clock", 2), util::DomainError);
#pragma GCC diagnostic pop
}

TEST(ConfigCacheTest, RejectsZeroSlots) {
  EXPECT_THROW(LruCache{0}, util::DomainError);
}

}  // namespace
}  // namespace prtr::runtime
